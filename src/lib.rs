//! # nvdimmc — umbrella crate for the NVDIMM-C reproduction
//!
//! This crate re-exports the whole workspace so applications can depend on a
//! single crate. See the individual crates for details:
//!
//! - [`sim`] — discrete-event simulation engine
//! - [`ddr`] — DDR4 command/timing substrate
//! - [`nand`] — Z-NAND media, ECC and flash translation layer
//! - [`host`] — host-side substrate (CPU cache, page tables, WPQ, DAX)
//! - [`core`] — the NVDIMM-C device, driver and baseline
//! - [`workloads`] — FIO-like, file-copy, TPC-H and mixed-load generators
//! - [`check`] — trace-based protocol verifier, race detector and lint pass
//!
//! # Example
//!
//! ```
//! use nvdimmc::core::{BlockDevice, NvdimmCConfig, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = System::new(NvdimmCConfig::small_for_tests())?;
//! let page = vec![0xA5u8; 4096];
//! system.write_at(0, &page)?;
//! let mut out = vec![0u8; 4096];
//! system.read_at(0, &mut out)?;
//! assert_eq!(page, out);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nvdimmc_check as check;
pub use nvdimmc_core as core;
pub use nvdimmc_ddr as ddr;
pub use nvdimmc_host as host;
pub use nvdimmc_nand as nand;
pub use nvdimmc_sim as sim;
pub use nvdimmc_workloads as workloads;
