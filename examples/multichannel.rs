//! Multi-channel scaling: the §VII-A sketch ("capacity and bandwidth
//! scale with the number of modules") made measurable.
//!
//! Builds the same NVDIMM-C channel 1, 2 and 4 times behind the
//! interleaved front-end, drives each configuration with the concurrent
//! fio workload (8 closed-loop threads, shards served by the batched
//! executor), then verifies every shard's bus trace with the full
//! `nvdimmc-check` pass and the scheduler's request-conservation
//! invariant.
//!
//! ```text
//! cargo run --release --example multichannel
//! ```

use nvdimmc::check::{assert_config_clean, check_conservation, check_shards};
use nvdimmc::core::{
    BlockDevice, MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, PAGE_BYTES,
};
use nvdimmc::workloads::{ConcurrentFio, FioJob};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shard_cfg = NvdimmCConfig::small_for_tests();
    assert_config_clean(&shard_cfg);
    println!("channels  capacity  cached 4K rand read, 8 threads      verification");
    let mut base = None;
    for channels in [1u32, 2, 4] {
        let cfg = MultiChannelConfig::new(shard_cfg.clone(), channels);
        let mut sys = MultiChannelSystem::new(cfg)?;
        // A working set inside each shard's DRAM cache: the cached
        // (DRAM-speed) path is what scales with the channel count.
        let span = (8 << 20) * u64::from(channels);
        for page in 0..span / PAGE_BYTES {
            sys.prefault(page)?;
        }
        sys.set_trace_capture(true);
        let report = ConcurrentFio {
            job: FioJob::rand_read_4k(span, 2_000),
            threads: 8,
        }
        .run_multichannel(&mut sys)?;
        let traces = sys
            .set_trace_capture(false)
            .expect("disabling capture drains the traces");
        let diagnostics: usize = check_shards(&traces, &sys.shards()[0].config().timing)
            .iter()
            .map(|r| r.diagnostics().len())
            .sum();
        let conserved = check_conservation(&report.conservation).is_clean();
        let bw = report.mb_per_s();
        let ratio = bw / *base.get_or_insert(bw);
        println!(
            "{channels:>8}  {:>5} MB  {:>6.0} KIOPS / {:>6.0} MB/s ({ratio:.2}x)  {diagnostics} diagnostics, {}",
            sys.capacity_bytes() >> 20,
            report.kiops(),
            bw,
            if conserved { "conserved" } else { "NOT conserved" },
        );
    }
    Ok(())
}
