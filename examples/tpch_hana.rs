//! The paper's Figure 11 scenario: TPC-H-shaped query traffic on
//! NVDIMM-C versus the emulated-pmem baseline.
//!
//! ```text
//! cargo run --release --example tpch_hana            # headline queries
//! cargo run --release --example tpch_hana -- --all   # all 22
//! ```

use nvdimmc::core::{EmulatedPmem, NvdimmCConfig, PerfParams, System, PAGE_BYTES};
use nvdimmc::ddr::{SpeedBin, TimingParams};
use nvdimmc::workloads::tpch::{queries, TpchRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let all = std::env::args().any(|a| a == "--all");
    let cache = 8u64 << 20;
    let runner = TpchRunner::new(cache);
    let qs = queries();
    let selected: Vec<_> = if all {
        qs.iter().collect()
    } else {
        // The two queries the paper quotes, plus a middle-of-the-pack one.
        qs.iter().filter(|q| [1, 9, 20].contains(&q.id)).collect()
    };

    println!("query  baseline    nvdimm-c    slowdown   (paper: Q1 3.3x, Q20 78x)");
    for q in selected {
        let mut cfg = NvdimmCConfig::figure_scale();
        cfg.cache_slots = cache / PAGE_BYTES;
        nvdimmc::check::assert_config_clean(&cfg);
        let mut sys = System::new(cfg)?;
        let nv = runner.run_query(&mut sys, q)?;
        let mut pm = EmulatedPmem::new(
            256 << 20,
            TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
            PerfParams::poc(),
        )?;
        let base = runner.run_query(&mut pm, q)?;
        println!(
            "Q{:<4}  {:>9}  {:>9}  {:>7.1}x   hit rate {:.1}%",
            q.id,
            format!("{}", base.elapsed),
            format!("{}", nv.elapsed),
            nv.elapsed.as_secs_f64() / base.elapsed.as_secs_f64(),
            sys.cache_stats().hit_rate() * 100.0,
        );
    }
    Ok(())
}
