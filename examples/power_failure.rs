//! The paper's §V-C persistence-domain story, end to end:
//!
//! 1. data the application persisted (`clflush` + `sfence`, the libpmem
//!    contract) survives power failure via the FPGA's battery-backed dump
//!    of dirty DRAM-cache slots to Z-NAND;
//! 2. stores still sitting in the volatile CPU cache are lost when ADR is
//!    absent — the "weak persistence domain".
//!
//! ```text
//! cargo run --release --example power_failure
//! ```

use nvdimmc::core::{BlockDevice, NvdimmCConfig, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = System::new(NvdimmCConfig::small_for_tests())?;

    // A "database commit record" the application persists properly...
    sys.write_at(0, b"committed transaction #42")?;
    sys.persist(0, 25)?;
    // ...and a record it never flushed.
    sys.write_at(8192, b"unflushed scribble")?;

    println!("power fails (no ADR: the weak persistence domain of Sec. V-C)...");
    let report = sys.power_fail(false)?;
    println!(
        "  FPGA dumped {} dirty slots ({} KB) to Z-NAND on battery power",
        report.slots_flushed,
        report.bytes_flushed >> 10
    );

    println!("rebooting (volatile state gone, Z-NAND intact)...");
    let mut sys = sys.into_recovered()?;

    let mut committed = [0u8; 25];
    sys.read_at(0, &mut committed)?;
    let mut scribble = [0u8; 18];
    sys.read_at(8192, &mut scribble)?;

    println!(
        "  persisted record: {:?} -> {}",
        std::str::from_utf8(&committed)?,
        if &committed == b"committed transaction #42" {
            "SURVIVED"
        } else {
            "LOST"
        }
    );
    println!(
        "  unflushed record: {} (expected on the weak domain)",
        if &scribble == b"unflushed scribble" {
            "survived (was evicted to DRAM in time)"
        } else {
            "LOST"
        }
    );
    assert_eq!(&committed, b"committed transaction #42");
    Ok(())
}
