//! The paper's §V-C persistence-domain story, end to end:
//!
//! 1. data the application persisted (`clflush` + `sfence`, the libpmem
//!    contract) survives power failure via the FPGA's battery-backed dump
//!    of dirty DRAM-cache slots to Z-NAND;
//! 2. stores still sitting in the volatile CPU cache are lost when ADR is
//!    absent — the "weak persistence domain".
//!
//! ```text
//! cargo run --release --example power_failure
//! ```

use nvdimmc::core::{BlockDevice, NvdimmCConfig, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NvdimmCConfig::small_for_tests();
    nvdimmc::check::assert_config_clean(&cfg);
    let mut sys = System::new(cfg)?;
    // Record the CPU-cache persistence journal so nvdimmc-check can audit
    // the flush/fence ordering behind the durability claim below.
    sys.set_persist_journal(true);

    // A "database commit record" the application persists properly...
    sys.write_at(0, b"committed transaction #42")?;
    sys.persist(0, 25)?;
    // ...and a record it never flushed.
    sys.write_at(8192, b"unflushed scribble")?;

    // Audit the journal: the committed record must be flush+fence ordered;
    // the unclaimed scribble is intentionally lost and must not be flagged.
    let persist_diags = nvdimmc::check::check_persistence(&sys.take_persist_journal());
    assert!(persist_diags.is_empty(), "{persist_diags:?}");
    println!("persistence-ordering check: clean (libpmem contract held)");

    println!("power fails (no ADR: the weak persistence domain of Sec. V-C)...");
    let report = sys.power_fail(false)?;
    println!(
        "  FPGA dumped {} dirty slots ({} KB) to Z-NAND on battery power",
        report.slots_flushed,
        report.bytes_flushed >> 10
    );

    println!("rebooting (volatile state gone, Z-NAND intact)...");
    let mut sys = sys.into_recovered()?;

    let mut committed = [0u8; 25];
    sys.read_at(0, &mut committed)?;
    let mut scribble = [0u8; 18];
    sys.read_at(8192, &mut scribble)?;

    println!(
        "  persisted record: {:?} -> {}",
        std::str::from_utf8(&committed)?,
        if &committed == b"committed transaction #42" {
            "SURVIVED"
        } else {
            "LOST"
        }
    );
    println!(
        "  unflushed record: {} (expected on the weak domain)",
        if &scribble == b"unflushed scribble" {
            "survived (was evicted to DRAM in time)"
        } else {
            "LOST"
        }
    );
    assert_eq!(&committed, b"committed transaction #42");
    Ok(())
}
