//! The paper's §V-C persistence-domain story, end to end:
//!
//! 1. data the application persisted (`clflush` + `sfence`, the libpmem
//!    contract) survives power failure via the FPGA's battery-backed dump
//!    of dirty DRAM-cache slots to Z-NAND;
//! 2. stores still sitting in the volatile CPU cache are lost when ADR is
//!    absent — the "weak persistence domain";
//! 3. a power failure injected *mid-operation* (the fault-injection
//!    subsystem's `PowerFail` class) interrupts the in-flight write with
//!    a typed error, and the dump + rebuild path brings the device back
//!    with everything previously persisted intact.
//!
//! ```text
//! cargo run --release --example power_failure
//! ```

use nvdimmc::core::{BlockDevice, CoreError, FaultKind, NvdimmCConfig, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NvdimmCConfig::small_for_tests();
    nvdimmc::check::assert_config_clean(&cfg);
    let mut sys = System::new(cfg)?;
    // Record the CPU-cache persistence journal so nvdimmc-check can audit
    // the flush/fence ordering behind the durability claim below.
    sys.set_persist_journal(true);

    // A "database commit record" the application persists properly...
    sys.write_at(0, b"committed transaction #42")?;
    sys.persist(0, 25)?;
    // ...and a record it never flushed.
    sys.write_at(8192, b"unflushed scribble")?;

    // Audit the journal: the committed record must be flush+fence ordered;
    // the unclaimed scribble is intentionally lost and must not be flagged.
    let persist_diags = nvdimmc::check::check_persistence(&sys.take_persist_journal());
    assert!(persist_diags.is_empty(), "{persist_diags:?}");
    println!("persistence-ordering check: clean (libpmem contract held)");

    println!("power fails (no ADR: the weak persistence domain of Sec. V-C)...");
    let report = sys.power_fail(false)?;
    println!(
        "  FPGA dumped {} dirty slots ({} KB) to Z-NAND on battery power",
        report.slots_flushed,
        report.bytes_flushed >> 10
    );

    println!("rebooting (volatile state gone, Z-NAND intact)...");
    let mut sys = sys.into_recovered()?;

    let mut committed = [0u8; 25];
    sys.read_at(0, &mut committed)?;
    let mut scribble = [0u8; 18];
    sys.read_at(8192, &mut scribble)?;

    println!(
        "  persisted record: {:?} -> {}",
        std::str::from_utf8(&committed)?,
        if &committed == b"committed transaction #42" {
            "SURVIVED"
        } else {
            "LOST"
        }
    );
    println!(
        "  unflushed record: {} (expected on the weak domain)",
        if &scribble == b"unflushed scribble" {
            "survived (was evicted to DRAM in time)"
        } else {
            "LOST"
        }
    );
    assert_eq!(&committed, b"committed transaction #42");

    // --- Act 3: power fails in the middle of a transfer -----------------
    // Arm a mid-operation power failure via the fault injector: the next
    // operation is cut off with a typed `PowerInterrupted` before its
    // data lands anywhere — no torn page, no partial NVMC program.
    println!("\ninjecting a mid-operation power failure...");
    assert!(sys.inject_fault(FaultKind::PowerFail));
    match sys.write_at(4096, b"never lands") {
        Err(CoreError::PowerInterrupted) => {
            println!("  in-flight write interrupted (typed, not torn)");
        }
        other => panic!("expected PowerInterrupted, got {other:?}"),
    }

    // This host has ADR: the CPU write-pending queues drain, then the
    // FPGA dumps every dirty slot on battery power.
    let report = sys.power_fail(true)?;
    println!(
        "  ADR flush + FPGA dump: {} dirty slots ({} KB) to Z-NAND",
        report.slots_flushed,
        report.bytes_flushed >> 10
    );
    let mut sys = sys.into_recovered()?;

    // The committed record still survives; the interrupted write shows
    // no trace — the page reads back as if the op never started.
    sys.read_at(0, &mut committed)?;
    assert_eq!(&committed, b"committed transaction #42");
    let mut hole = [0u8; 11];
    sys.read_at(4096, &mut hole)?;
    assert_ne!(&hole, b"never lands", "interrupted write partially landed");
    println!("  persisted record survived; interrupted write left no trace");

    let s = sys.recovery_stats();
    assert_eq!(s.power_fails_fired, 1);
    assert_eq!(s.power_fails_recovered, 1);
    println!(
        "recovery ledger: {} power failure fired, {} recovered",
        s.power_fails_fired, s.power_fails_recovered
    );
    Ok(())
}
