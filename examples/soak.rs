//! SLO soak: sustained mixed load while dead-mailbox waves rotate over
//! every channel, each degradation repaired online through the
//! front-end failover policy.
//!
//! Prints the SLO view — availability, latency percentiles split by the
//! serving shard's health, rebuild counts — then audits the run with
//! the independent health/recovery checkers.
//!
//! ```text
//! cargo run --release --example soak
//! ```

use nvdimmc::check::{check_recovery, check_system_health};
use nvdimmc::workloads::SoakConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ch  waves  avail    healthy p50/p99      impaired p50/p99       rebuilds (ok/fail)");
    for channels in [1u32, 2, 4] {
        let cfg = SoakConfig::dead_mailbox(channels);
        let (r, sys) = cfg.run_full()?;
        let health_diags = check_system_health(&sys);
        let ledger_diags = check_recovery(&r.recovery);
        println!(
            "{channels:>2}  {:>5}  {:>6.2}%  {} / {}  {} / {}  {}/{}  {}",
            r.waves,
            100.0 * r.availability(),
            r.healthy.p50,
            r.healthy.p99,
            r.impaired.p50,
            r.impaired.p99,
            r.recovery.rebuilds_completed,
            r.recovery.rebuilds_failed,
            if health_diags.is_empty() && ledger_diags.is_empty() {
                "audits clean"
            } else {
                "AUDIT FAILED"
            },
        );
        assert!(health_diags.is_empty(), "{health_diags:?}");
        assert!(ledger_diags.is_empty(), "{ledger_diags:?}");
        assert_eq!(r.degraded_at_end, 0, "a shard ended the soak degraded");
        assert_eq!(r.oracle_mismatches, 0, "silent corruption");
        assert_eq!(r.rejected_write_leaks, 0, "a rejected write applied");
    }
    Ok(())
}
