//! Scale-out request path at 256 channels: the batched executor driving
//! a mixed fio load (70% reads), with the per-shard utilisation ledger
//! the executor keeps while it serves.
//!
//! Each channel gets a cached working-set slice and four closed-loop
//! threads; requests fan out through the interleave map onto per-shard
//! SPSC rings, coalesce, and are served by the worker pool in
//! discrete-event order. The run is deterministic for any worker count.
//!
//! ```text
//! cargo run --release --example scaleout
//! ```

use nvdimmc::core::{MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, PAGE_BYTES};
use nvdimmc::workloads::{ConcurrentFio, FioJob, RwMode};

const CHANNELS: u32 = 256;
const THREADS: u32 = 4 * CHANNELS;
const PAGES_PER_CHANNEL: u64 = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), CHANNELS);
    let mut sys = MultiChannelSystem::new(cfg)?;
    let span = PAGES_PER_CHANNEL * PAGE_BYTES * u64::from(CHANNELS);
    println!("prefaulting {} MB over {CHANNELS} channels...", span >> 20);
    for page in 0..span / PAGE_BYTES {
        sys.prefault(page)?;
    }

    let job = FioJob {
        mode: RwMode::RandRw { read_fraction: 0.7 },
        ..FioJob::rand_read_4k(span, u64::from(THREADS) * 16)
    };
    println!(
        "mixed 4K load (70% reads), {THREADS} threads, {} ops...\n",
        job.ops
    );
    let report = ConcurrentFio {
        job,
        threads: THREADS,
    }
    .run_multichannel(&mut sys)?;

    println!(
        "{:>12.0} ops/s   p50 {:.2} us   p99 {:.2} us   mean {:.2} us",
        report.kiops() * 1e3,
        report.latency_percentile(50.0).as_us_f64(),
        report.latency_percentile(99.0).as_us_f64(),
        report.mean_latency().as_us_f64(),
    );
    println!(
        "executor: {} accepted, {} served, {} DMAs ({} requests rode a coalesced DMA), {} ring bounces\n",
        report.exec.accepted,
        report.exec.served,
        report.exec.dmas,
        report.exec.coalesced_reqs,
        report.exec.rejected_ring_full,
    );

    // Utilisation table: 16 columns x 16 rows of per-shard busy
    // fractions, plus the distribution's corners.
    println!("per-shard utilisation (row = 16 consecutive shards):");
    for row in report.utilisation.chunks(16) {
        let cells: Vec<String> = row.iter().map(|u| format!("{:>4.0}%", u * 100.0)).collect();
        println!("  {}", cells.join(" "));
    }
    let (mut lo, mut hi, mut sum) = (f64::MAX, f64::MIN, 0.0);
    for &u in &report.utilisation {
        lo = lo.min(u);
        hi = hi.max(u);
        sum += u;
    }
    println!(
        "\nutilisation min {:.1}% / mean {:.1}% / max {:.1}% over {} shards",
        lo * 100.0,
        sum / report.utilisation.len() as f64 * 100.0,
        hi * 100.0,
        report.utilisation.len()
    );
    let conserved = report.conservation.iter().all(|&(enq, done)| enq == done);
    println!(
        "conservation: every shard completed what it accepted — {}",
        if conserved { "yes" } else { "NO" }
    );
    Ok(())
}
