//! The paper's §VII-D tradeoff explorer: the refresh interval (tREFI)
//! simultaneously sets how often the FPGA gets a window (miss bandwidth
//! up) and how much bus time refresh steals from the host (hit bandwidth
//! down). Sweep it and find the balance point for a given miss latency.
//!
//! ```text
//! cargo run --release --example tune_refresh
//! ```

use nvdimmc::core::{NvdimmCConfig, System, PAGE_BYTES};
use nvdimmc::sim::SimDuration;
use nvdimmc::workloads::FioJob;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("tREFI    cached (host-side)    uncached (miss delay = tREFI)");
    for trefi_us in [7.8, 3.9, 1.95] {
        // Host side: cached 4 KB random reads (Figure 13).
        let cfg = NvdimmCConfig::figure_scale().with_trefi(SimDuration::from_us(trefi_us));
        nvdimmc::check::assert_config_clean(&cfg);
        let span = cfg.cache_slots * PAGE_BYTES / 2;
        let mut sys = System::new(cfg)?;
        for p in 0..span / PAGE_BYTES {
            sys.prefault(p)?;
        }
        let cached = FioJob::rand_read_4k(span, 2_000).run(&mut sys)?;

        // Device side: the paper's hypothetical device, where the miss
        // delay tD tracks the refresh interval — a faster refresh rate
        // gives the FPGA windows sooner (Figure 12: tD = tREFI/tREFI2/
        // tREFI4 -> 451/681/914 MB/s).
        let cfg = NvdimmCConfig::figure_scale()
            .with_trefi(SimDuration::from_us(trefi_us))
            .with_hypothetical(SimDuration::from_us(trefi_us));
        nvdimmc::check::assert_config_clean(&cfg);
        let span = NvdimmCConfig::figure_scale().cache_slots * PAGE_BYTES * 2;
        let mut sys = System::new(cfg)?;
        let uncached = FioJob::rand_read_4k(span, 1_500).run(&mut sys)?;

        println!(
            "{trefi_us:>5.2}us  {:>8.0} MB/s          {:>8.0} MB/s",
            cached.mb_per_s(),
            uncached.mb_per_s()
        );
    }
    println!(
        "\npaper's conclusion: with <= 1.85us NVM media, a faster refresh rate\n\
         buys miss bandwidth (~914 MB/s) while keeping most host bandwidth —\n\
         'a balanced performance for the purpose of storage-class memory'."
    );
    Ok(())
}
