//! Quickstart: build an NVDIMM-C system, do byte-addressable I/O through
//! the DRAM cache, and inspect what the machinery did underneath.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nvdimmc::check::assert_config_clean;
use nvdimmc::core::{BlockDevice, NvdimmCConfig, System, PAGE_BYTES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down module: 12 MB of DRAM-cache slots over 32 MB Z-NAND.
    // `NvdimmCConfig::poc()` is the paper's full 16 GB / 128 GB device.
    let cfg = NvdimmCConfig::small_for_tests();
    assert_config_clean(&cfg);
    let mut sys = System::new(cfg)?;
    println!(
        "device: {} MB exported, {} cache slots, tRFC {} ns / tREFI {:.1} us",
        sys.capacity_bytes() >> 20,
        sys.config().cache_slots,
        sys.config().timing.trfc_total.as_ns(),
        sys.config().timing.trefi.as_us_f64(),
    );

    // Byte-addressable writes land in the DRAM cache at DRAM speed.
    let hit = sys.write_at(4096 + 17, b"hello, NVDIMM-C")?;
    println!("cached write latency: {hit}");

    // Force the cache to spill to Z-NAND: write more pages than slots.
    let slots = sys.config().cache_slots;
    let page = vec![0xC3u8; PAGE_BYTES as usize];
    for i in 1..=slots + 8 {
        sys.write_at((i + 1) * PAGE_BYTES, &page)?;
    }

    // Reading the original bytes back now misses: the driver sends a
    // cachefill through the CP mailbox and the FPGA serves it inside
    // refresh windows.
    let mut buf = [0u8; 15];
    let miss = sys.read_at(4096 + 17, &mut buf)?;
    assert_eq!(&buf, b"hello, NVDIMM-C");
    println!("uncached read latency: {miss} (data back from Z-NAND)");

    let s = sys.stats();
    let f = sys.fpga_stats();
    let d = sys.detector_stats();
    println!("\nwhat happened underneath:");
    println!("  faults: {}, zero-fills: {}", s.faults, s.zero_fills);
    println!(
        "  cachefills: {}, writebacks: {}",
        s.cachefills, s.writebacks
    );
    println!(
        "  refreshes detected: {}, FPGA windows used: {}",
        d.detections, f.windows_used
    );
    println!(
        "  bus violations: {} (the tRFC discipline held)",
        sys.bus_stats().violations_rejected
    );
    println!(
        "  cache hit rate: {:.1}%",
        sys.cache_stats().hit_rate() * 100.0
    );
    Ok(())
}
