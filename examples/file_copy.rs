//! The paper's Figure 7 scenario: copy a large file from a rate-capped
//! SSD onto NVDIMM-C and watch throughput collapse at the cache boundary.
//!
//! ```text
//! cargo run --release --example file_copy
//! ```

use nvdimmc::core::{NvdimmCConfig, System, PAGE_BYTES};
use nvdimmc::sim::SimDuration;
use nvdimmc::workloads::FileCopy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = NvdimmCConfig::figure_scale();
    cfg.cache_slots = (32 << 20) / PAGE_BYTES; // 32 MB cache
    let cache_bytes = cfg.cache_slots * PAGE_BYTES;
    nvdimmc::check::assert_config_clean(&cfg);
    let mut sys = System::new(cfg)?;

    let job = FileCopy {
        file_bytes: cache_bytes * 3, // 96 MB file vs 32 MB cache
        chunk_bytes: 64 << 10,
        source_bytes_per_s: 520e6, // Table I's PM863 SATA SSD
        bin: SimDuration::from_ms(20.0),
        seed: 1,
    };
    println!(
        "copying {} MB from a 520 MB/s SSD onto a {} MB-cache NVDIMM-C...",
        job.file_bytes >> 20,
        cache_bytes >> 20
    );
    let report = job.run(&mut sys)?;

    println!(
        "\nthroughput over time (each bin {:?}):",
        report.series.bin_width()
    );
    let bins = report.series.bins_mb_per_s();
    let max = bins.iter().copied().fold(1.0_f64, f64::max);
    let step = (bins.len() / 24).max(1);
    for (i, chunk) in bins.chunks(step).enumerate() {
        let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let bar = "#".repeat(((avg / max) * 50.0).round() as usize);
        println!("{:>4} | {bar:<50} {avg:>6.0} MB/s", i * step);
    }
    println!(
        "\npeak {:.0} MB/s (paper: 518, SSD-bound) -> sustained {:.0} MB/s (paper: 68)",
        report.peak_mb_per_s(),
        report.tail_mb_per_s()
    );
    println!(
        "copied {} MB in {}; corrupted chunks: {}",
        report.bytes >> 20,
        report.elapsed,
        report.corrupted_chunks
    );
    Ok(())
}
