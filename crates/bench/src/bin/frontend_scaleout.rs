//! Records (or gates on) the executor's channel-scaling trajectory in
//! both refresh modes.
//!
//! ```text
//! # regenerate the committed baseline (1/4/16/64/256 channels):
//! cargo run --release -p nvdimmc-bench --bin frontend_scaleout -- --out BENCH_frontend.json
//!
//! # CI smoke: re-measure a subset and gate against the baseline:
//! cargo run --release -p nvdimmc-bench --bin frontend_scaleout -- \
//!     --check BENCH_frontend.json --channels 1,16,64
//! ```
//!
//! The workload is the paper's cached 4 KB random read (§VI) at
//! `4 × channels` closed-loop threads, swept once under rank-level
//! refresh (the legacy trajectory) and once under per-bank windows. The
//! clock is simulated, so every number is bit-deterministic and
//! machine-independent; `--check` fails if any re-measured channel count
//! in either mode loses more than 10% ops/s against the committed file,
//! if per-bank stops beating rank-level at 16+ channels, if the per-bank
//! legality smoke trace picks up any checker diagnostic, or if the file
//! does not parse against the `nvdimmc-frontend-scaleout-v2` schema.

use nvdimmc_bench::scaleout::{
    check_per_bank_speedup, check_regression, parse_doc, per_bank_checker_smoke, run_point_mode,
    to_json, ScaleoutPoint, CHANNEL_SWEEP,
};
use nvdimmc_ddr::RefreshMode;

fn parse_channels(spec: &str) -> Result<Vec<u32>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map_err(|e| format!("bad channel count {s:?}: {e}"))
        })
        .collect()
}

fn mode_tag(mode: RefreshMode) -> &'static str {
    match mode {
        RefreshMode::RankLevel => "rank",
        RefreshMode::PerBank => "per-bank",
    }
}

fn measure(channels: &[u32], mode: RefreshMode) -> Vec<ScaleoutPoint> {
    channels
        .iter()
        .map(|&c| {
            let t0 = std::time::Instant::now();
            let p = run_point_mode(c, mode);
            eprintln!(
                "  [{}] {c:>3} ch / {:>4} threads: {:>9.0} ops/s, p50 {:.2} us, p99 {:.2} us, \
                 util {:.2} [{:.1}s]",
                mode_tag(mode),
                p.threads,
                p.ops_per_sec,
                p.p50_us,
                p.p99_us,
                p.util_mean(),
                t0.elapsed().as_secs_f64()
            );
            p
        })
        .collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("frontend_scaleout: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut channels: Option<Vec<u32>> = None;
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[*i - 1])))
                .clone()
        };
        match args[i].as_str() {
            "--out" => out = Some(take_value(&mut i)),
            "--check" => check = Some(take_value(&mut i)),
            "--channels" => {
                channels = Some(parse_channels(&take_value(&mut i)).unwrap_or_else(|e| fail(&e)));
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {baseline_path}: {e}")));
        let baseline = parse_doc(&text)
            .unwrap_or_else(|e| fail(&format!("{baseline_path} failed validation: {e}")));
        println!(
            "baseline {baseline_path}: schema ok, {} rank + {} per-bank points",
            baseline.rank.len(),
            baseline.per_bank.len()
        );
        let subset = channels.unwrap_or_else(|| vec![1, 16, 64]);
        println!("re-measuring {subset:?} channels in both refresh modes...");
        let fresh_rank = measure(&subset, RefreshMode::RankLevel);
        let fresh_pb = measure(&subset, RefreshMode::PerBank);
        check_regression(&baseline.rank, &fresh_rank, 0.10)
            .unwrap_or_else(|e| fail(&format!("rank-level regression gate: {e}")));
        check_regression(&baseline.per_bank, &fresh_pb, 0.10)
            .unwrap_or_else(|e| fail(&format!("per-bank regression gate: {e}")));
        check_per_bank_speedup(&fresh_rank, &fresh_pb, 16)
            .unwrap_or_else(|e| fail(&format!("parallelism gate: {e}")));
        per_bank_checker_smoke().unwrap_or_else(|e| fail(&format!("per-bank legality smoke: {e}")));
        println!(
            "regression gate passed (>10% ops/s loss in either mode, a lost per-bank \
             speedup at 16+ channels, or a dirty per-bank trace would fail)."
        );
        return;
    }

    let sweep = channels.unwrap_or_else(|| CHANNEL_SWEEP.to_vec());
    println!("frontend scale-out sweep: {sweep:?} channels, both refresh modes");
    let rank_points = measure(&sweep, RefreshMode::RankLevel);
    let pb_points = measure(&sweep, RefreshMode::PerBank);
    if let (Some(x4), Some(x64)) = (
        rank_points.iter().find(|p| p.channels == 4),
        rank_points.iter().find(|p| p.channels == 64),
    ) {
        let ratio = x64.ops_per_sec / x4.ops_per_sec;
        println!("64ch / 4ch ops/s ratio: {ratio:.1}x");
        if ratio < 8.0 {
            fail(&format!(
                "64-channel scaling fell below 8x the 4-channel figure ({ratio:.1}x)"
            ));
        }
    }
    check_per_bank_speedup(&rank_points, &pb_points, 16)
        .unwrap_or_else(|e| fail(&format!("parallelism gate: {e}")));
    for p in &pb_points {
        if let Some(r) = rank_points.iter().find(|r| r.channels == p.channels) {
            println!(
                "  per-bank speedup at {:>3} ch: {:.3}x",
                p.channels,
                p.ops_per_sec / r.ops_per_sec
            );
        }
    }
    let json = to_json(&rank_points, &pb_points);
    match out {
        Some(path) => {
            std::fs::write(&path, &json)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
