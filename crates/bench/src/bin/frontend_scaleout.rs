//! Records (or gates on) the executor's channel-scaling trajectory.
//!
//! ```text
//! # regenerate the committed baseline (1/4/16/64/256 channels):
//! cargo run --release -p nvdimmc-bench --bin frontend_scaleout -- --out BENCH_frontend.json
//!
//! # CI smoke: re-measure a subset and gate against the baseline:
//! cargo run --release -p nvdimmc-bench --bin frontend_scaleout -- \
//!     --check BENCH_frontend.json --channels 1,16,64
//! ```
//!
//! The workload is the paper's cached 4 KB random read (§VI) at
//! `4 × channels` closed-loop threads. The clock is simulated, so every
//! number is bit-deterministic and machine-independent; `--check` fails
//! if any re-measured channel count loses more than 10% ops/s against
//! the committed file, or if the file does not parse against the
//! `nvdimmc-frontend-scaleout-v1` schema.

use nvdimmc_bench::scaleout::{
    check_regression, parse_points, run_point, to_json, ScaleoutPoint, CHANNEL_SWEEP,
};

fn parse_channels(spec: &str) -> Result<Vec<u32>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map_err(|e| format!("bad channel count {s:?}: {e}"))
        })
        .collect()
}

fn measure(channels: &[u32]) -> Vec<ScaleoutPoint> {
    channels
        .iter()
        .map(|&c| {
            let t0 = std::time::Instant::now();
            let p = run_point(c);
            eprintln!(
                "  {c:>3} ch / {:>4} threads: {:>9.0} ops/s, p50 {:.2} us, p99 {:.2} us, \
                 util {:.2} [{:.1}s]",
                p.threads,
                p.ops_per_sec,
                p.p50_us,
                p.p99_us,
                p.util_mean(),
                t0.elapsed().as_secs_f64()
            );
            p
        })
        .collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("frontend_scaleout: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut channels: Option<Vec<u32>> = None;
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[*i - 1])))
                .clone()
        };
        match args[i].as_str() {
            "--out" => out = Some(take_value(&mut i)),
            "--check" => check = Some(take_value(&mut i)),
            "--channels" => {
                channels = Some(parse_channels(&take_value(&mut i)).unwrap_or_else(|e| fail(&e)));
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {baseline_path}: {e}")));
        let baseline = parse_points(&text)
            .unwrap_or_else(|e| fail(&format!("{baseline_path} failed validation: {e}")));
        println!(
            "baseline {baseline_path}: schema ok, {} points",
            baseline.len()
        );
        let subset = channels.unwrap_or_else(|| vec![1, 16, 64]);
        println!("re-measuring {subset:?} channels...");
        let fresh = measure(&subset);
        check_regression(&baseline, &fresh, 0.10)
            .unwrap_or_else(|e| fail(&format!("regression gate: {e}")));
        println!("regression gate passed (>10% ops/s loss would fail).");
        return;
    }

    let sweep = channels.unwrap_or_else(|| CHANNEL_SWEEP.to_vec());
    println!("frontend scale-out sweep: {sweep:?} channels");
    let points = measure(&sweep);
    if let (Some(x4), Some(x64)) = (
        points.iter().find(|p| p.channels == 4),
        points.iter().find(|p| p.channels == 64),
    ) {
        let ratio = x64.ops_per_sec / x4.ops_per_sec;
        println!("64ch / 4ch ops/s ratio: {ratio:.1}x");
        if ratio < 8.0 {
            fail(&format!(
                "64-channel scaling fell below 8x the 4-channel figure ({ratio:.1}x)"
            ));
        }
    }
    let json = to_json(&points);
    match out {
        Some(path) => {
            std::fs::write(&path, &json)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
