//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p nvdimmc-bench --bin figures            # everything
//! cargo run --release -p nvdimmc-bench --bin figures -- fig8    # one figure
//! cargo run --release -p nvdimmc-bench --bin figures -- --list  # list ids
//! ```

use nvdimmc_bench::experiments;
use nvdimmc_bench::Figure;

type Entry = (&'static str, fn() -> Figure);

fn registry() -> Vec<Entry> {
    vec![
        ("table1", experiments::table1 as fn() -> Figure),
        ("table2", experiments::table2),
        ("validation", experiments::validation),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("fig9_multichannel", experiments::fig9_multichannel),
        ("fig10", experiments::fig10),
        ("fig11", experiments::fig11),
        ("fig12", experiments::fig12),
        ("fig13", experiments::fig13),
        ("mixedload", experiments::mixedload_validation),
        ("ablations", experiments::ablations),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in &reg {
            println!("{name}");
        }
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let args: Vec<String> = args.into_iter().filter(|a| a != "--json").collect();
    let selected: Vec<&Entry> = if args.is_empty() {
        reg.iter().collect()
    } else {
        reg.iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("unknown figure id(s): {args:?}; use --list");
        std::process::exit(2);
    }
    if json {
        let figures: Vec<String> = selected.iter().map(|(_, run)| run().to_json()).collect();
        println!("[{}]", figures.join(","));
        return;
    }
    println!("NVDIMM-C (HPCA 2020) reproduction — figure harness");
    println!("system: NvdimmCConfig::figure_scale() (Table I at 1:256 capacity)\n");
    for (name, run) in selected {
        let t0 = std::time::Instant::now();
        let fig = run();
        println!("{}", fig.render());
        println!(
            "[{name} regenerated in {:.1}s]\n",
            t0.elapsed().as_secs_f64()
        );
    }
}
