//! Report formatting for the figure harness.

use serde::Serialize;

/// One row of a reproduced table/figure.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label (e.g. "4K randread, Cached").
    pub label: String,
    /// What the paper reports (free text, may be "—").
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Optional note (deviation explanations, scaling).
    pub note: String,
}

impl Row {
    /// Creates a row.
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        Row {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
            note: String::new(),
        }
    }

    /// Attaches a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }
}

/// A reproduced table or figure.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Identifier, e.g. "Figure 8".
    pub id: String,
    /// Title from the paper.
    pub title: String,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Figure {
    /// Creates an empty figure report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let w_label = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(["metric".len()])
            .max()
            .unwrap_or(8);
        let w_paper = self
            .rows
            .iter()
            .map(|r| r.paper.len())
            .chain(["paper".len()])
            .max()
            .unwrap_or(8);
        let w_meas = self
            .rows
            .iter()
            .map(|r| r.measured.len())
            .chain(["measured".len()])
            .max()
            .unwrap_or(8);
        out.push_str(&format!(
            "{:<w_label$}  {:>w_paper$}  {:>w_meas$}  note\n",
            "metric", "paper", "measured"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<w_label$}  {:>w_paper$}  {:>w_meas$}  {}\n",
                r.label, r.paper, r.measured, r.note
            ));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Figure {
    /// Renders the figure as a JSON object (hand-rolled: the workspace
    /// deliberately avoids a JSON dependency).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"label\":\"{}\",\"paper\":\"{}\",\"measured\":\"{}\",\"note\":\"{}\"}}",
                    json_escape(&r.label),
                    json_escape(&r.paper),
                    json_escape(&r.measured),
                    json_escape(&r.note)
                )
            })
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"rows\":[{}]}}",
            json_escape(&self.id),
            json_escape(&self.title),
            rows.join(",")
        )
    }
}

/// Formats a bandwidth in MB/s.
pub fn mbs(v: f64) -> String {
    format!("{v:.0} MB/s")
}

/// Formats a KIOPS value.
pub fn kiops(v: f64) -> String {
    format!("{v:.0} KIOPS")
}

/// Formats a ratio like "3.3x".
pub fn ratio(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut f = Figure::new("Figure 0", "smoke");
        f.push(Row::new("short", "1", "2"));
        f.push(Row::new("a much longer label", "100 MB/s", "99 MB/s").with_note("ok"));
        let text = f.render();
        assert!(text.contains("Figure 0"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn json_output_is_escaped() {
        let mut f = Figure::new("Figure \"X\"", "smoke");
        f.push(Row::new("a\nb", "1", "2"));
        let j = f.to_json();
        assert!(j.contains("\\\"X\\\""));
        assert!(j.contains("a\\nb"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn formatters() {
        assert_eq!(mbs(517.6), "518 MB/s");
        assert_eq!(kiops(646.4), "646 KIOPS");
        assert_eq!(ratio(3.28), "3.3x");
    }
}
