//! # nvdimmc-bench — the table/figure reproduction harness
//!
//! One function per table/figure of the paper's evaluation (§VI–§VII),
//! each returning a [`report::Figure`] whose rows pair the paper's
//! published value with the value measured on the simulated system. The
//! `figures` binary prints them; the Criterion benches under `benches/`
//! wrap the same functions for regression tracking.
//!
//! Figure runs use [`NvdimmCConfig::figure_scale`]: capacities scaled
//! 1:256 from Table I (64 MB DRAM cache over 512 MB Z-NAND) with every
//! timing parameter and mechanism at PoC fidelity. Absolute bandwidths
//! are therefore comparable to the paper's where the bottleneck is
//! per-operation (latency, windows); time-series x-axes scale with
//! capacity.
//!
//! [`NvdimmCConfig::figure_scale`]: nvdimmc_core::NvdimmCConfig::figure_scale

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod scaleout;

pub use report::{Figure, Row};
