//! One function per table/figure of the paper's evaluation.
//!
//! All runs use [`NvdimmCConfig::figure_scale`] (64 MB DRAM cache over
//! 512 MB Z-NAND — Table I at 1:256 capacity) unless noted. Per-operation
//! quantities (latency, IOPS, MB/s) are directly comparable to the
//! paper's because the bottlenecks are per-op; capacity-axis quantities
//! (Figure 7's x-axis) scale with the capacities.

use crate::report::{kiops, mbs, ratio, Figure, Row};
use nvdimmc_core::{
    BlockDevice, EmulatedPmem, EvictionPolicyKind, MultiChannelConfig, MultiChannelSystem,
    NvdimmCConfig, PerfParams, System, PAGE_BYTES,
};
use nvdimmc_ddr::{SpeedBin, TimingParams};
use nvdimmc_sim::SimDuration;
use nvdimmc_workloads::{
    tpch, ConcurrentFio, FileCopy, FioJob, MixedLoad, RwMode, StreamValidator, TpchRunner,
};

fn paper_timing() -> TimingParams {
    TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
}

fn figure_system() -> System {
    checked_system(NvdimmCConfig::figure_scale())
}

/// Lints `cfg` with nvdimmc-check before construction so a bad
/// experiment configuration dies loudly instead of producing a figure.
fn checked_system(cfg: NvdimmCConfig) -> System {
    nvdimmc_check::assert_config_clean(&cfg);
    System::new(cfg).expect("config is valid")
}

fn figure_pmem() -> EmulatedPmem {
    EmulatedPmem::new(256 << 20, paper_timing(), PerfParams::poc()).expect("pmem config")
}

/// Cache capacity of the figure-scale system in bytes.
fn cache_bytes() -> u64 {
    NvdimmCConfig::figure_scale().cache_slots * PAGE_BYTES
}

/// Puts the system into the paper's "Uncached" regime: the cache is full
/// of dirty pages and the target span lives on Z-NAND, so every access
/// pays a writeback + cachefill pair (§VII-B2).
fn make_uncached(sys: &mut System, span: u64) {
    let slots = sys.config().cache_slots;
    let page = vec![0x5Au8; PAGE_BYTES as usize];
    // Write the measurement span so it reaches NAND...
    for p in 0..span / PAGE_BYTES {
        sys.write_at(p * PAGE_BYTES, &page).expect("setup write");
    }
    // ...then dirty the cache with a disjoint region, evicting the span.
    let base = span;
    for i in 0..slots {
        sys.write_at(base + i * PAGE_BYTES, &page)
            .expect("setup write");
    }
}

/// Table I: test-system configuration.
pub fn table1() -> Figure {
    let cfg = NvdimmCConfig::figure_scale();
    let poc = NvdimmCConfig::poc();
    let mut f = Figure::new("Table I", "Test system configuration");
    f.push(Row::new(
        "DIMM speed",
        "DDR4 @ 1600 Mbps",
        format!("DDR4 @ {} Mbps", cfg.timing.speed.mt_per_s()),
    ));
    f.push(Row::new(
        "tRFC (programmed)",
        "1250 ns",
        format!("{} ns", cfg.timing.trfc_total.as_ns()),
    ));
    f.push(Row::new(
        "tRFC (device)",
        "350 ns",
        format!("{} ns", cfg.timing.trfc_base.as_ns()),
    ));
    f.push(Row::new(
        "tREFI",
        "7.8 us",
        format!("{:.1} us", cfg.timing.trefi.as_us_f64()),
    ));
    f.push(
        Row::new(
            "NVDIMM-C DRAM cache",
            "16 GB (15 GB slots)",
            format!("{} MB slots", (cfg.cache_slots * PAGE_BYTES) >> 20),
        )
        .with_note("1:256 scale; full-scale config available as NvdimmCConfig::poc()"),
    );
    f.push(
        Row::new(
            "Z-NAND",
            "2 x 64 GB (120 GB exported)",
            format!(
                "{} MB raw, {} MB exported",
                cfg.nvmc.ftl.geometry.raw_bytes() >> 20,
                (cfg.nvmc.ftl.geometry.raw_bytes() as f64 * cfg.nvmc.ftl.export_fraction) as u64
                    >> 20
            ),
        )
        .with_note(format!(
            "poc(): {} GB raw",
            poc.nvmc.ftl.geometry.raw_bytes() >> 30
        )),
    );
    f.push(Row::new(
        "Baseline",
        "128 GB RDIMM as /dev/pmem0",
        "EmulatedPmem (DRAM-backed, same tRFC)",
    ));
    f
}

/// Table II: benchmarks and metrics.
pub fn table2() -> Figure {
    let mut f = Figure::new("Table II", "Benchmarks and metrics");
    f.push(Row::new(
        "FIO v3.10",
        "latency, bandwidth",
        "workloads::fio (latency, bandwidth)",
    ));
    f.push(Row::new(
        "TPC-H on SAP HANA",
        "query transaction time",
        "workloads::tpch (22 synthetic profiles)",
    ));
    f.push(Row::new(
        "In-house mixed-load IMDB",
        "concurrent users, validation",
        "workloads::mixedload (CRC-validated)",
    ));
    f.push(Row::new(
        "STREAM (modified)",
        "refresh-detection aging",
        "workloads::stream (oracle-checked)",
    ));
    f
}

/// §VII-A: refresh-detection accuracy / aging validation.
pub fn validation() -> Figure {
    // Undersize the cache so the STREAM arrays evict continuously: the
    // FPGA then shares the bus in every refresh window while the host
    // hammers the same DRAM — the paper's worst-case aging scenario.
    let mut cfg = NvdimmCConfig::figure_scale();
    cfg.cache_slots = 64 * 1024 * 8 / PAGE_BYTES; // half of one array
    let mut sys = checked_system(cfg);
    let v = StreamValidator {
        elements: 64 * 1024, // 3 x 512 KB arrays
        iterations: 4,
        scalar: 3.0,
    };
    let report = v.run(&mut sys).expect("stream run");
    let det = sys.detector_stats();
    let fpga = sys.fpga_stats();
    let bus = sys.bus_stats();
    let mut f = Figure::new(
        "Sec. VII-A",
        "Refresh-detection validation (STREAM aging test)",
    );
    f.push(Row::new(
        "result mismatches",
        "none observed",
        format!("{}", report.mismatches),
    ));
    f.push(Row::new(
        "memory errors / faults",
        "none observed",
        format!("{} bus violations", bus.violations_rejected),
    ));
    f.push(Row::new(
        "refreshes detected",
        "every REFRESH",
        format!("{}", det.detections),
    ));
    f.push(Row::new(
        "FPGA windows exercised",
        "all",
        format!("{} seen, {} used", fpga.windows_seen, fpga.windows_used),
    ));
    f.push(Row::new(
        "kernels verified",
        "every iteration",
        format!("{}", report.kernels_run),
    ));
    f
}

/// Figure 7: file-copy throughput over time.
pub fn fig7() -> Figure {
    let mut sys = figure_system();
    let cache = cache_bytes();
    let job = FileCopy {
        file_bytes: cache * 3, // paper: 20 GB file vs 15 GB of slots
        chunk_bytes: 64 << 10,
        source_bytes_per_s: 520e6,
        bin: SimDuration::from_ms(20.0),
        seed: 7,
    };
    let report = job.run(&mut sys).expect("copy run");
    let mut f = Figure::new("Figure 7", "File-copy throughput vs. data written");
    f.push(Row::new(
        "cached-phase peak",
        "518 MB/s (SSD-bound)",
        mbs(report.peak_mb_per_s()),
    ));
    f.push(Row::new(
        "sustained (cache full)",
        "68 MB/s",
        mbs(report.tail_mb_per_s()),
    ));
    f.push(
        Row::new(
            "collapse point",
            "15 GB (slot count)",
            format!("{} MB", cache >> 20),
        )
        .with_note("x-axis scales with capacity (1:256)"),
    );
    f.push(Row::new(
        "verified chunks corrupted",
        "0",
        format!("{}", report.corrupted_chunks),
    ));
    // Attach a short throughput series for plotting.
    let bins = report.series.bins_mb_per_s();
    let step = (bins.len() / 12).max(1);
    for (i, chunk) in bins.chunks(step).enumerate() {
        let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
        f.push(Row::new(format!("series[{i}]"), "—", mbs(avg)));
    }
    f
}

/// Figure 8: 4 KB random read/write, 1 thread — baseline vs Cached vs
/// Uncached.
pub fn fig8() -> Figure {
    let mut f = Figure::new(
        "Figure 8",
        "4KB random read/write performance (1 thread, qd1)",
    );
    let ops = 4_000;

    let mut pm = figure_pmem();
    let br = FioJob::rand_read_4k(128 << 20, ops)
        .run(&mut pm)
        .expect("fio");
    let bw = FioJob::rand_write_4k(128 << 20, ops)
        .run(&mut pm)
        .expect("fio");
    f.push(Row::new(
        "Baseline randread",
        "646 KIOPS / 2606 MB/s",
        format!("{} / {}", kiops(br.kiops()), mbs(br.mb_per_s())),
    ));
    f.push(Row::new(
        "Baseline randwrite",
        "576 KIOPS / 2360 MB/s",
        format!("{} / {}", kiops(bw.kiops()), mbs(bw.mb_per_s())),
    ));

    let span_cached = cache_bytes() / 2;
    let mut sys = figure_system();
    for p in 0..span_cached / PAGE_BYTES {
        sys.prefault(p).expect("prefault");
    }
    let cr = FioJob::rand_read_4k(span_cached, ops)
        .run(&mut sys)
        .expect("fio");
    let cw = FioJob::rand_write_4k(span_cached, ops)
        .run(&mut sys)
        .expect("fio");
    f.push(Row::new(
        "NVDC-Cached randread",
        "448 KIOPS / 1835 MB/s",
        format!("{} / {}", kiops(cr.kiops()), mbs(cr.mb_per_s())),
    ));
    f.push(Row::new(
        "NVDC-Cached randwrite",
        "438 KIOPS / 1796 MB/s",
        format!("{} / {}", kiops(cw.kiops()), mbs(cw.mb_per_s())),
    ));

    let mut sys = figure_system();
    let span_unc = cache_bytes(); // distinct span, all on NAND
    make_uncached(&mut sys, span_unc);
    let uops = 600;
    let ur = FioJob::rand_read_4k(span_unc, uops)
        .run(&mut sys)
        .expect("fio");
    let mut sys = figure_system();
    make_uncached(&mut sys, span_unc);
    let uw = FioJob::rand_write_4k(span_unc, uops)
        .run(&mut sys)
        .expect("fio");
    f.push(Row::new(
        "NVDC-Uncached randread",
        "13 KIOPS / 57.3 MB/s",
        format!("{:.1} KIOPS / {}", ur.kiops(), mbs(ur.mb_per_s())),
    ));
    f.push(Row::new(
        "NVDC-Uncached randwrite",
        "14.2 KIOPS / 58.3 MB/s",
        format!("{:.1} KIOPS / {}", uw.kiops(), mbs(uw.mb_per_s())),
    ));
    f.push(Row::new(
        "Uncached 4K latency",
        "69.8 us (8.9x tREFI)",
        format!("{:.1} us", ur.mean_latency().as_us_f64()),
    ));
    f
}

/// A prefaulted single-channel cached system behind the multi-channel
/// front-end (fig9 runs the cached mode through the real scheduler).
fn cached_front(span: u64) -> MultiChannelSystem {
    nvdimmc_check::assert_config_clean(&NvdimmCConfig::figure_scale());
    let mut sys =
        MultiChannelSystem::new(MultiChannelConfig::single(NvdimmCConfig::figure_scale()))
            .expect("config is valid");
    for p in 0..span / PAGE_BYTES {
        sys.prefault(p).expect("prefault");
    }
    sys
}

/// Figure 9: thread-count scaling, *measured* by request-level concurrent
/// simulation: one closed-loop worker per simulated thread, device phases
/// queued through the front-end scheduler, each shard served on its own
/// OS thread. (Earlier revisions projected this figure from an analytic
/// closed-loop model; every row below is now a real run.)
pub fn fig9() -> Figure {
    let mut f = Figure::new(
        "Figure 9",
        "4KB random performance vs. thread count (measured, concurrent driver)",
    );
    let threads = [1u32, 2, 4, 8, 16];
    let span = cache_bytes() / 2;

    for &n in &threads {
        let mut pm = figure_pmem();
        let r = ConcurrentFio {
            job: FioJob::rand_read_4k(128 << 20, 1_200 * u64::from(n).min(4)),
            threads: n,
        }
        .run_baseline(&mut pm)
        .expect("fio");
        f.push(Row::new(
            format!("Baseline read, {n}t"),
            match n {
                1 => "646 KIOPS",
                8 => "2123 KIOPS (peak)",
                _ => "—",
            },
            kiops(r.kiops()),
        ));
    }
    for &n in &threads {
        let mut sys = cached_front(span);
        let r = ConcurrentFio {
            job: FioJob::rand_read_4k(span, 800 * u64::from(n).min(4)),
            threads: n,
        }
        .run_multichannel(&mut sys)
        .expect("fio");
        f.push(Row::new(
            format!("NVDC-Cached read, {n}t"),
            match n {
                1 => "448 KIOPS",
                8 => "1060 KIOPS (peak)",
                _ => "—",
            },
            kiops(r.kiops()),
        ));
    }
    for &n in &threads {
        let mut sys =
            MultiChannelSystem::new(MultiChannelConfig::single(NvdimmCConfig::figure_scale()))
                .expect("config is valid");
        make_uncached(&mut sys.shards_mut()[0], cache_bytes());
        let r = ConcurrentFio {
            job: FioJob::rand_read_4k(cache_bytes(), 100 * u64::from(n).min(3)),
            threads: n,
        }
        .run_multichannel(&mut sys)
        .expect("fio");
        f.push(Row::new(
            format!("NVDC-Uncached read, {n}t"),
            match n {
                1 => "~14 KIOPS",
                4 => "24.3 KIOPS (saturated)",
                _ => "—",
            },
            format!("{:.1} KIOPS", r.kiops()),
        ));
    }
    // Write series (the paper quotes the 16-thread cached-write peak).
    let mut pm = figure_pmem();
    let bw = ConcurrentFio {
        job: FioJob::rand_write_4k(128 << 20, 4_000),
        threads: 8,
    }
    .run_baseline(&mut pm)
    .expect("fio");
    f.push(Row::new("Baseline write, 8t", "—", kiops(bw.kiops())));
    let mut sys = cached_front(span);
    let cw = ConcurrentFio {
        job: FioJob::rand_write_4k(span, 4_000),
        threads: 16,
    }
    .run_multichannel(&mut sys)
    .expect("fio");
    f.push(Row::new(
        "NVDC-Cached write, 16t",
        "1127 KIOPS / 4615 MB/s",
        format!("{} / {}", kiops(cw.kiops()), mbs(cw.mb_per_s())),
    ));
    f
}

/// Figure 9-MC (beyond the paper): capacity and cached bandwidth scaling
/// at 1/2/4 channels — the multi-module deployment §VII-A sketches.
/// Every shard's bus trace from the measured run is verified with the
/// full `nvdimmc-check` pass, and the scheduler's request-conservation
/// invariant is checked across shards.
pub fn fig9_multichannel() -> Figure {
    let mut f = Figure::new(
        "Figure 9-MC",
        "Cached 4KB random reads, 8 threads vs. channel count (measured; shard traces verified)",
    );
    let timing = paper_timing();
    let mut base_bw = 0.0;
    for &ch in &[1u32, 2, 4] {
        let cfg = MultiChannelConfig::new(NvdimmCConfig::figure_scale(), ch);
        nvdimmc_check::assert_config_clean(&cfg.shard);
        let mut sys = MultiChannelSystem::new(cfg).expect("config is valid");
        let span = (cache_bytes() / 2) * u64::from(ch);
        for p in 0..span / PAGE_BYTES {
            sys.prefault(p).expect("prefault");
        }
        let capacity = sys.capacity_bytes();
        sys.set_trace_capture(true);
        let r = ConcurrentFio {
            job: FioJob::rand_read_4k(span, 2_400),
            threads: 8,
        }
        .run_multichannel(&mut sys)
        .expect("fio");
        let traces = sys.set_trace_capture(false).expect("capture was on");
        let diagnostics: usize = nvdimmc_check::check_shards(&traces, &timing)
            .iter()
            .map(|rep| rep.diagnostics().len())
            .sum();
        let conservation = nvdimmc_check::check_conservation(&r.conservation);
        if ch == 1 {
            base_bw = r.mb_per_s();
        }
        f.push(Row::new(
            format!("{ch} ch: capacity"),
            "scales linearly (§VII-A)",
            format!("{} MB exported", capacity >> 20),
        ));
        f.push(Row::new(
            format!("{ch} ch: cached randread, 8t"),
            if ch == 1 {
                "1060 KIOPS (Fig. 9)"
            } else {
                "—"
            },
            format!(
                "{} / {} ({:.2}x)",
                kiops(r.kiops()),
                mbs(r.mb_per_s()),
                r.mb_per_s() / base_bw
            ),
        ));
        f.push(Row::new(
            format!("{ch} ch: verification"),
            "0 diagnostics, conserved",
            format!(
                "{diagnostics} diagnostics, {}",
                if conservation.is_clean() {
                    "conserved"
                } else {
                    "NOT conserved"
                }
            ),
        ));
    }
    f
}

/// Figure 10: access-granularity sweep (Cached vs baseline).
pub fn fig10() -> Figure {
    let mut f = Figure::new(
        "Figure 10",
        "4KB random reads/writes vs. access granularity (1 thread)",
    );
    let sizes: [u64; 7] = [128, 256, 512, 1024, 4096, 16384, 65536];
    let span = cache_bytes() / 2;

    let mut sys = figure_system();
    for p in 0..span / PAGE_BYTES {
        sys.prefault(p).expect("prefault");
    }
    let mut pm = figure_pmem();

    for &bs in &sizes {
        let ops = (2_000_000 / bs).clamp(200, 4_000);
        let job = FioJob {
            mode: RwMode::RandRead,
            block_size: bs,
            span,
            offset: 0,
            ops,
            seed: 11,
            zipf_theta: None,
        };
        let base = job.run(&mut pm).expect("fio");
        let nv = job.run(&mut sys).expect("fio");
        let paper = match bs {
            128 => "NVDC 2147 KIOPS (1.15x baseline)",
            4096 => "NVDC 448 KIOPS / 1835 MB/s",
            65536 => "NVDC 3050 MB/s",
            _ => "—",
        };
        f.push(Row::new(
            format!("bs={bs}B read"),
            paper,
            format!(
                "base {} / NVDC {} ({})",
                kiops(base.kiops()),
                kiops(nv.kiops()),
                mbs(nv.mb_per_s())
            ),
        ));
        let wjob = FioJob {
            mode: RwMode::RandWrite,
            ..job
        };
        let basew = wjob.run(&mut pm).expect("fio");
        let nvw = wjob.run(&mut sys).expect("fio");
        f.push(Row::new(
            format!("bs={bs}B write"),
            "—",
            format!(
                "base {} / NVDC {} ({})",
                kiops(basew.kiops()),
                kiops(nvw.kiops()),
                mbs(nvw.mb_per_s())
            ),
        ));
    }
    f
}

/// Figure 11: TPC-H query time on NVDIMM-C normalised to baseline, plus
/// the replacement-policy hit-rate study.
pub fn fig11() -> Figure {
    let mut f = Figure::new(
        "Figure 11",
        "TPC-H query time normalised to baseline (22 queries)",
    );
    // A smaller cache keeps the 22-query sweep quick; footprints scale
    // with it.
    let cache = 16u64 << 20;
    let runner = TpchRunner::new(cache);
    for q in tpch::queries() {
        let mut cfg = NvdimmCConfig::figure_scale();
        cfg.cache_slots = cache / PAGE_BYTES;
        let mut sys = checked_system(cfg);
        let nv = runner.run_query(&mut sys, &q).expect("query");
        let mut pm = figure_pmem();
        let base = runner.run_query(&mut pm, &q).expect("query");
        let r = nv.elapsed.as_secs_f64() / base.elapsed.as_secs_f64();
        let paper = match q.id {
            1 => "3.3x",
            20 => "78x",
            _ => "—",
        };
        f.push(Row::new(format!("Q{}", q.id), paper, ratio(r)));
    }
    // Replacement-policy study (paper: LRU reaches 78.7–99.3% from 1 GB
    // to 16 GB of cache; here 1/16..16/16 of the aggregate footprint).
    let agg = tpch::aggregate_profile();
    let foot_pages = 16 * 1024;
    for frac in [1u64, 2, 4, 8, 16] {
        let cache_pages = foot_pages * frac / 16;
        let hr = tpch::hit_rate_study(&agg, cache_pages, EvictionPolicyKind::Lru, foot_pages, 5);
        let paper = match frac {
            1 => "78.7% (1 GB)",
            16 => "99.3% (16 GB)",
            _ => "—",
        };
        f.push(Row::new(
            format!("LRU hit rate, cache {frac}/16 of footprint"),
            paper,
            format!("{:.1}%", hr * 100.0),
        ));
    }
    f
}

/// Figure 12: hypothetical-device Uncached bandwidth vs. tD.
pub fn fig12() -> Figure {
    let mut f = Figure::new(
        "Figure 12",
        "Uncached 4KB randread bandwidth vs. NVM latency tD (hypothetical device)",
    );
    let span = cache_bytes() * 2;
    for (td_us, paper) in [
        (0.0, "1503 MB/s"),
        (1.85, "914 MB/s"),
        (3.9, "681 MB/s"),
        (7.8, "451 MB/s"),
    ] {
        let cfg = NvdimmCConfig::figure_scale().with_hypothetical(SimDuration::from_us(td_us));
        let mut sys = checked_system(cfg);
        let report = FioJob::rand_read_4k(span, 2_000)
            .run(&mut sys)
            .expect("fio");
        f.push(
            Row::new(format!("tD = {td_us} us"), paper, mbs(report.mb_per_s())).with_note(
                if td_us == 0.0 {
                    "mapping-management overhead only".into()
                } else {
                    String::new()
                },
            ),
        );
    }
    f.push(
        Row::new("Cached reference", "1835 MB/s", "see Figure 8").with_note(
            "paper text prescribes 3 waits/miss but its own data fits ~1 tD/miss; \
             we model the measured behaviour (see EXPERIMENTS.md)",
        ),
    );
    f
}

/// Figure 13: host-side Cached bandwidth vs. refresh interval.
pub fn fig13() -> Figure {
    let mut f = Figure::new(
        "Figure 13",
        "Cached 4KB randread bandwidth vs. tREFI (host side)",
    );
    let span = cache_bytes() / 2;
    for (trefi_us, paper) in [
        (7.8, "1835 MB/s"),
        (3.9, "1691 MB/s (-8%)"),
        (1.95, "1530 MB/s (-17%)"),
    ] {
        let cfg = NvdimmCConfig::figure_scale().with_trefi(SimDuration::from_us(trefi_us));
        let mut sys = checked_system(cfg);
        for p in 0..span / PAGE_BYTES {
            sys.prefault(p).expect("prefault");
        }
        let report = FioJob::rand_read_4k(span, 3_000)
            .run(&mut sys)
            .expect("fio");
        f.push(Row::new(
            format!("tREFI = {trefi_us} us"),
            paper,
            mbs(report.mb_per_s()),
        ));
    }
    f
}

/// §VII-B5: mixed-load IMDB validation at 500 concurrent users.
pub fn mixedload_validation() -> Figure {
    let mut sys = figure_system();
    let report = MixedLoad::paper_users().run(&mut sys).expect("mixed load");
    let mut f = Figure::new("Sec. VII-B5", "Mixed-load IMDB validation");
    f.push(Row::new(
        "concurrent users",
        "500",
        format!("{}", report.users),
    ));
    f.push(Row::new(
        "data corruption",
        "none",
        format!("{} validation errors", report.validation_errors),
    ));
    f.push(Row::new(
        "transactions",
        "—",
        format!("{}", report.transactions),
    ));
    f
}

/// Design-choice ablations called out in DESIGN.md.
pub fn ablations() -> Figure {
    let mut f = Figure::new(
        "Ablations",
        "Design-choice studies (beyond the paper's data)",
    );
    let span = cache_bytes();
    let uncached_bw = |mutate: &dyn Fn(&mut NvdimmCConfig)| {
        let mut cfg = NvdimmCConfig::figure_scale();
        mutate(&mut cfg);
        let mut sys = checked_system(cfg);
        make_uncached(&mut sys, span);
        FioJob::rand_read_4k(span, 300)
            .run(&mut sys)
            .expect("fio")
            .mb_per_s()
    };

    let poc = uncached_bw(&|_| {});
    f.push(Row::new(
        "Uncached, PoC FSM (split WB+CF)",
        "57.3 MB/s",
        mbs(poc),
    ));
    let merged = uncached_bw(&|c| c.merge_wb_cf = true);
    f.push(
        Row::new("Uncached, merged WB+CF command", "—", mbs(merged))
            .with_note("paper §VII-C optimisation 4"),
    );
    let asic = uncached_bw(&|c| c.perf = PerfParams::asic());
    f.push(
        Row::new("Uncached, ASIC-class FSM", "—", mbs(asic))
            .with_note("paper §VII-C: no CPU in the data path"),
    );
    let asic_merged = uncached_bw(&|c| {
        c.perf = PerfParams::asic();
        c.merge_wb_cf = true;
        c.window_xfer_bytes = 8192;
    });
    f.push(
        Row::new(
            "Uncached, ASIC + merged + 8KB windows",
            "—",
            mbs(asic_merged),
        )
        .with_note("paper §VII-C optimisations 1+3+4 combined"),
    );

    // Eviction policies on a reuse-heavy trace (hit rate).
    let reuse = tpch::QueryProfile {
        id: 13,
        footprint_of_cache: 2.0,
        cold_footprint_of_cache: 2.0,
        scan_passes: 0.1,
        rand_ops_per_mb: 400.0,
        rand_bytes: 4096,
        zipf_theta: 0.8,
        write_fraction: 0.0,
    };
    for policy in [
        EvictionPolicyKind::Lrc,
        EvictionPolicyKind::Clock,
        EvictionPolicyKind::Lru,
    ] {
        let hr = tpch::hit_rate_study(&reuse, 2048, policy, 8192, 3);
        f.push(Row::new(
            format!("hit rate, {policy:?} policy"),
            if policy == EvictionPolicyKind::Lrc {
                "paper's PoC policy"
            } else {
                "—"
            },
            format!("{:.1}%", hr * 100.0),
        ));
    }

    f
}

/// Runs everything, in paper order.
pub fn all() -> Vec<Figure> {
    vec![
        table1(),
        table2(),
        validation(),
        fig7(),
        fig8(),
        fig9(),
        fig9_multichannel(),
        fig10(),
        fig11(),
        fig12(),
        fig13(),
        mixedload_validation(),
        ablations(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        assert!(table1().render().contains("1250 ns"));
        assert!(table2().render().contains("FIO"));
    }

    #[test]
    fn fig13_shape_monotone() {
        let f = fig13();
        let vals: Vec<f64> = f
            .rows
            .iter()
            .map(|r| {
                r.measured
                    .trim_end_matches(" MB/s")
                    .parse::<f64>()
                    .expect("MB/s value")
            })
            .collect();
        assert!(
            vals[0] > vals[1] && vals[1] > vals[2],
            "host bandwidth must fall as tREFI shrinks: {vals:?}"
        );
    }

    #[test]
    fn fig12_shape_monotone() {
        let f = fig12();
        let vals: Vec<f64> = f
            .rows
            .iter()
            .take(4)
            .map(|r| {
                r.measured
                    .trim_end_matches(" MB/s")
                    .parse::<f64>()
                    .expect("MB/s value")
            })
            .collect();
        assert!(
            vals.windows(2).all(|w| w[0] > w[1]),
            "bandwidth must fall with tD: {vals:?}"
        );
        // The paper's headline: ~900 MB/s at 1.85us.
        assert!(
            (600.0..1200.0).contains(&vals[1]),
            "tD=1.85us gives {} MB/s",
            vals[1]
        );
    }
}
