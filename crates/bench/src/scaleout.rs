//! Frontend scale-out benchmark: the executor's throughput trajectory
//! over channel count, recorded to `BENCH_frontend.json`.
//!
//! Each point drives a cached 4 KB random-read fio load (the paper's
//! workhorse, §VI) through [`ConcurrentFio::run_multichannel`] — i.e.
//! through the batched [`ShardExecutor`] request path — at
//! `4 × channels` closed-loop threads, and records ops/s, p50/p99
//! latency and per-shard utilisation. Because the clock is simulated,
//! every figure is bit-deterministic and machine-independent, so the
//! committed baseline doubles as a CI regression gate.
//!
//! The JSON codec is hand-rolled (the workspace deliberately carries no
//! JSON dependency): [`to_json`] writes the file, [`parse_points`] reads
//! it back for `--check`.
//!
//! [`ShardExecutor`]: nvdimmc_core::ShardExecutor

use nvdimmc_core::{MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, PAGE_BYTES};
use nvdimmc_ddr::RefreshMode;
use nvdimmc_workloads::{ConcurrentFio, FioJob};

/// Schema tag stamped into (and demanded from) `BENCH_frontend.json`.
/// v2 adds the per-bank refresh-mode trajectory and its delta section.
pub const SCHEMA: &str = "nvdimmc-frontend-scaleout-v2";

/// Closed-loop threads driven per channel.
pub const THREADS_PER_CHANNEL: u32 = 4;

/// Operations issued per thread (total ops = threads × this).
pub const OPS_PER_THREAD: u64 = 128;

/// Cached span per channel: fits the 12 MB `small_for_tests` DRAM cache
/// with room to spare, so the sweep measures the request path, not the
/// media.
pub const SPAN_PER_CHANNEL: u64 = 4 << 20;

/// The recorded channel counts.
pub const CHANNEL_SWEEP: [u32; 5] = [1, 4, 16, 64, 256];

/// One measured point of the scaling trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleoutPoint {
    /// Channels (= shards) behind the executor.
    pub channels: u32,
    /// Closed-loop threads driven.
    pub threads: u32,
    /// Total operations issued.
    pub ops: u64,
    /// Throughput in operations per second (simulated clock).
    pub ops_per_sec: f64,
    /// Median per-op latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-op latency in microseconds.
    pub p99_us: f64,
    /// Mean per-op latency in microseconds.
    pub mean_us: f64,
    /// Requests merged into a larger DMA by the coalescer.
    pub coalesced_reqs: u64,
    /// Device DMAs issued (≤ requests served when coalescing bites).
    pub dmas: u64,
    /// Per-shard device-busy fraction of the elapsed window.
    pub utilisation: Vec<f64>,
}

impl ScaleoutPoint {
    /// Mean of the per-shard utilisation fractions.
    pub fn util_mean(&self) -> f64 {
        if self.utilisation.is_empty() {
            return 0.0;
        }
        self.utilisation.iter().sum::<f64>() / self.utilisation.len() as f64
    }
}

/// Runs one point of the sweep: `channels` shards, `4 × channels`
/// threads, cached random reads, rank-level refresh.
///
/// # Panics
///
/// Panics if the simulated system rejects the configuration — a bug,
/// not an operational error, for these fixed shapes.
pub fn run_point(channels: u32) -> ScaleoutPoint {
    run_point_mode(channels, RefreshMode::RankLevel)
}

/// Runs one point of the sweep under the given refresh mode. Rank-level
/// stalls the whole rank for tRFC each tREFI; per-bank blocks only the
/// refreshing bank, so the same workload measures the refresh–access
/// parallelism win directly.
///
/// # Panics
///
/// Panics if the simulated system rejects the configuration — a bug,
/// not an operational error, for these fixed shapes.
pub fn run_point_mode(channels: u32, mode: RefreshMode) -> ScaleoutPoint {
    let cfg = MultiChannelConfig::new(
        NvdimmCConfig::small_for_tests().with_refresh_mode(mode),
        channels,
    );
    let mut sys = MultiChannelSystem::new(cfg).expect("bench config must construct");
    let span = SPAN_PER_CHANNEL * u64::from(channels);
    for page in 0..span / PAGE_BYTES {
        sys.prefault(page).expect("prefault within exported span");
    }
    let threads = THREADS_PER_CHANNEL * channels;
    let fio = ConcurrentFio {
        job: FioJob::rand_read_4k(span, u64::from(threads) * OPS_PER_THREAD),
        threads,
    };
    let report = fio
        .run_multichannel(&mut sys)
        .expect("cached sweep must serve");
    ScaleoutPoint {
        channels,
        threads,
        ops: u64::from(threads) * OPS_PER_THREAD,
        ops_per_sec: report.kiops() * 1e3,
        p50_us: report.latency_percentile(50.0).as_us_f64(),
        p99_us: report.latency_percentile(99.0).as_us_f64(),
        mean_us: report.mean_latency().as_us_f64(),
        coalesced_reqs: report.exec.coalesced_reqs,
        dmas: report.exec.dmas,
        utilisation: report.utilisation.clone(),
    }
}

fn rows_json(points: &[ScaleoutPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let util: Vec<String> = p.utilisation.iter().map(|u| format!("{u:.6}")).collect();
            format!(
                concat!(
                    "    {{\"channels\":{},\"threads\":{},\"ops\":{},",
                    "\"ops_per_sec\":{:.3},\"p50_us\":{:.4},\"p99_us\":{:.4},",
                    "\"mean_us\":{:.4},\"coalesced_reqs\":{},\"dmas\":{},",
                    "\"utilisation\":[{}]}}"
                ),
                p.channels,
                p.threads,
                p.ops,
                p.ops_per_sec,
                p.p50_us,
                p.p99_us,
                p.mean_us,
                p.coalesced_reqs,
                p.dmas,
                util.join(",")
            )
        })
        .collect();
    rows.join(",\n")
}

/// Renders both trajectories as the committed `BENCH_frontend.json`
/// document: `results` is the rank-level sweep (the legacy trajectory),
/// `results_per_bank` the per-bank one, and `per_bank_delta` records the
/// measured ops/s speedup at every channel count both sweeps share.
pub fn to_json(rank: &[ScaleoutPoint], per_bank: &[ScaleoutPoint]) -> String {
    let deltas: Vec<String> = per_bank
        .iter()
        .filter_map(|p| {
            rank.iter().find(|r| r.channels == p.channels).map(|r| {
                format!(
                    concat!(
                        "    {{\"channels\":{},\"rank_ops_per_sec\":{:.3},",
                        "\"per_bank_ops_per_sec\":{:.3},\"speedup\":{:.4}}}"
                    ),
                    p.channels,
                    r.ops_per_sec,
                    p.ops_per_sec,
                    p.ops_per_sec / r.ops_per_sec
                )
            })
        })
        .collect();
    format!(
        concat!(
            "{{\n  \"schema\":\"{}\",\n  \"workload\":\"cached 4K randread\",\n",
            "  \"threads_per_channel\":{},\n  \"ops_per_thread\":{},\n",
            "  \"span_per_channel\":{},\n  \"results\":[\n{}\n  ],\n",
            "  \"results_per_bank\":[\n{}\n  ],\n",
            "  \"per_bank_delta\":[\n{}\n  ]\n}}\n"
        ),
        SCHEMA,
        THREADS_PER_CHANNEL,
        OPS_PER_THREAD,
        SPAN_PER_CHANNEL,
        rows_json(rank),
        rows_json(per_bank),
        deltas.join(",\n")
    )
}

// ----- minimal JSON reader (enough for the schema above) ---------------

/// A parsed JSON value (minimal reader for `--check`; the workspace
/// carries no JSON dependency).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(c), self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            out.push(hex);
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .b
                        .get(self.i..self.i + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {}", self.i))?;
                    out.push_str(chunk);
                    self.i += len;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a position-tagged message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut r = Reader {
        b: text.as_bytes(),
        i: 0,
    };
    let v = r.value()?;
    r.skip_ws();
    if r.i != r.b.len() {
        return Err(format!("trailing garbage at byte {}", r.i));
    }
    Ok(v)
}

fn num_field(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field \"{key}\""))
}

/// Both trajectories parsed out of a `BENCH_frontend.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleoutDoc {
    /// Rank-level refresh sweep (the legacy trajectory).
    pub rank: Vec<ScaleoutPoint>,
    /// Per-bank refresh sweep.
    pub per_bank: Vec<ScaleoutPoint>,
}

/// Parses and schema-validates a `BENCH_frontend.json` document into
/// both trajectories.
///
/// # Errors
///
/// Fails on malformed JSON, a schema-tag mismatch, or any result row
/// missing a required field.
pub fn parse_doc(text: &str) -> Result<ScaleoutDoc, String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"schema\" tag".to_owned())?;
    if schema != SCHEMA {
        return Err(format!("schema mismatch: {schema:?} (want {SCHEMA:?})"));
    }
    Ok(ScaleoutDoc {
        rank: rows_from(&doc, "results")?,
        per_bank: rows_from(&doc, "results_per_bank")?,
    })
}

/// Parses the rank-level trajectory only (convenience for callers that
/// predate the per-bank section).
///
/// # Errors
///
/// Same failure modes as [`parse_doc`].
pub fn parse_points(text: &str) -> Result<Vec<ScaleoutPoint>, String> {
    parse_doc(text).map(|d| d.rank)
}

fn rows_from(doc: &Json, key: &str) -> Result<Vec<ScaleoutPoint>, String> {
    let results = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing \"{key}\" array"))?;
    let mut points = Vec::with_capacity(results.len());
    for row in results {
        let utilisation = row
            .get("utilisation")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing \"utilisation\" array".to_owned())?
            .iter()
            .map(|u| {
                u.as_num()
                    .ok_or_else(|| "non-numeric utilisation".to_owned())
            })
            .collect::<Result<Vec<f64>, String>>()?;
        points.push(ScaleoutPoint {
            channels: num_field(row, "channels")? as u32,
            threads: num_field(row, "threads")? as u32,
            ops: num_field(row, "ops")? as u64,
            ops_per_sec: num_field(row, "ops_per_sec")?,
            p50_us: num_field(row, "p50_us")?,
            p99_us: num_field(row, "p99_us")?,
            mean_us: num_field(row, "mean_us")?,
            coalesced_reqs: num_field(row, "coalesced_reqs")? as u64,
            dmas: num_field(row, "dmas")? as u64,
            utilisation,
        });
    }
    if points.is_empty() {
        return Err(format!("empty \"{key}\" array"));
    }
    Ok(points)
}

/// Requires per-bank to beat rank-level on ops/s at every shared channel
/// count of at least `min_channels` — the refresh–access parallelism win
/// the mode exists for.
///
/// # Errors
///
/// Returns the first channel count where per-bank failed to win.
pub fn check_per_bank_speedup(
    rank: &[ScaleoutPoint],
    per_bank: &[ScaleoutPoint],
    min_channels: u32,
) -> Result<(), String> {
    for p in per_bank.iter().filter(|p| p.channels >= min_channels) {
        let Some(r) = rank.iter().find(|r| r.channels == p.channels) else {
            continue;
        };
        if p.ops_per_sec <= r.ops_per_sec {
            return Err(format!(
                "per-bank mode lost refresh–access parallelism at {} channels: \
                 {:.0} ops/s vs rank-level {:.0}",
                p.channels, p.ops_per_sec, r.ops_per_sec
            ));
        }
    }
    Ok(())
}

/// Smoke-checks per-bank window legality end to end: drives a short
/// mixed workload through a per-bank single-channel system with trace
/// capture on and runs every `nvdimmc-check` pass over the result.
///
/// # Errors
///
/// Returns the checker's findings if the trace is not clean, or the
/// device error that aborted the run.
pub fn per_bank_checker_smoke() -> Result<(), String> {
    use nvdimmc_core::BlockDevice;
    let cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(RefreshMode::PerBank);
    let timing = cfg.timing;
    let mut sys = nvdimmc_core::System::new(cfg).map_err(|e| e.to_string())?;
    sys.set_trace_capture(true);
    let mut buf = vec![0u8; PAGE_BYTES as usize];
    for i in 0..48u64 {
        sys.write_at(i * PAGE_BYTES, &buf)
            .map_err(|e| e.to_string())?;
        sys.read_at((i / 2) * PAGE_BYTES, &mut buf)
            .map_err(|e| e.to_string())?;
    }
    let trace = sys.set_trace_capture(false).unwrap_or_default();
    let report = nvdimmc_check::check_trace(&trace, &timing);
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "per-bank smoke trace has {} diagnostic(s): {:?}",
            report.len(),
            report.diagnostics().first()
        ))
    }
}

/// Compares freshly measured points against the committed baseline:
/// every overlapping channel count must reach at least
/// `1 - tolerance` of the baseline's ops/s.
///
/// # Errors
///
/// Returns the first regressed point, or a complaint if the baseline
/// lacks a fresh point's channel count.
pub fn check_regression(
    baseline: &[ScaleoutPoint],
    fresh: &[ScaleoutPoint],
    tolerance: f64,
) -> Result<(), String> {
    for f in fresh {
        let b = baseline
            .iter()
            .find(|b| b.channels == f.channels)
            .ok_or_else(|| format!("baseline has no {}-channel point", f.channels))?;
        let floor = b.ops_per_sec * (1.0 - tolerance);
        if f.ops_per_sec < floor {
            return Err(format!(
                "{}-channel ops/s regressed: measured {:.0}, baseline {:.0} (floor {:.0})",
                f.channels, f.ops_per_sec, b.ops_per_sec, floor
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(channels: u32, ops_per_sec: f64) -> ScaleoutPoint {
        ScaleoutPoint {
            channels,
            threads: channels * THREADS_PER_CHANNEL,
            ops: 100,
            ops_per_sec,
            p50_us: 2.0,
            p99_us: 4.0,
            mean_us: 2.5,
            coalesced_reqs: 0,
            dmas: 100,
            utilisation: vec![0.5; channels as usize],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_point() {
        let pts = vec![point(1, 450_000.0), point(4, 1_700_000.0)];
        let pb = vec![point(1, 500_000.0), point(4, 1_900_000.0)];
        let doc = parse_doc(&to_json(&pts, &pb)).unwrap();
        assert_eq!(doc.rank.len(), 2);
        assert_eq!(doc.rank[0].channels, 1);
        assert_eq!(doc.rank[1].threads, 16);
        assert!((doc.rank[1].ops_per_sec - 1_700_000.0).abs() < 1.0);
        assert_eq!(doc.rank[0].utilisation.len(), 1);
        assert_eq!(doc.rank[1].utilisation.len(), 4);
        assert_eq!(doc.per_bank.len(), 2);
        assert!((doc.per_bank[1].ops_per_sec - 1_900_000.0).abs() < 1.0);
    }

    #[test]
    fn delta_section_records_speedups() {
        let pts = vec![point(16, 1_000_000.0)];
        let pb = vec![point(16, 1_200_000.0)];
        let json = to_json(&pts, &pb);
        assert!(json.contains("\"per_bank_delta\""), "{json}");
        assert!(json.contains("\"speedup\":1.2000"), "{json}");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let doc = to_json(&[point(1, 1.0)], &[point(1, 1.0)]).replace(SCHEMA, "some-other-schema");
        let err = parse_points(&doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn missing_field_is_rejected() {
        let doc = to_json(&[point(1, 1.0)], &[point(1, 1.0)]).replacen(
            "\"p99_us\"",
            "\"p99_renamed\"",
            1,
        );
        let err = parse_points(&doc).unwrap_err();
        assert!(err.contains("p99_us"), "{err}");
    }

    #[test]
    fn per_bank_speedup_gate_trips_on_a_loss() {
        let rank = vec![point(4, 100.0), point(16, 100.0)];
        let win = vec![point(4, 90.0), point(16, 110.0)];
        let lose = vec![point(16, 95.0)];
        // Sub-threshold channel counts are not gated.
        assert!(check_per_bank_speedup(&rank, &win, 16).is_ok());
        let err = check_per_bank_speedup(&rank, &lose, 16).unwrap_err();
        assert!(err.contains("16 channels"), "{err}");
    }

    #[test]
    fn per_bank_smoke_trace_is_clean() {
        per_bank_checker_smoke().unwrap();
    }

    #[test]
    fn regression_gate_trips_past_tolerance() {
        let base = vec![point(64, 1_000_000.0)];
        let good = vec![point(64, 950_000.0)];
        let bad = vec![point(64, 850_000.0)];
        assert!(check_regression(&base, &good, 0.10).is_ok());
        let err = check_regression(&base, &bad, 0.10).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json("{\"a\": [1, 2.5, \"x\\n\\u0041\"], \"b\": {\"c\": true}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\nA")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
    }

    #[test]
    fn one_channel_point_measures_sanely() {
        let p = run_point(1);
        assert_eq!(p.channels, 1);
        assert_eq!(p.threads, THREADS_PER_CHANNEL);
        assert!(p.ops_per_sec > 0.0);
        assert!(p.p50_us > 0.0 && p.p99_us >= p.p50_us);
        assert_eq!(p.utilisation.len(), 1);
        assert!(p.utilisation[0] > 0.0 && p.utilisation[0] <= 1.0);
    }
}
