//! Microbenchmarks of the substrate hot paths: the components every
//! figure run leans on. Regressions here slow the whole harness.

use criterion::{criterion_group, criterion_main, Criterion};
use nvdimmc_core::refresh::RefreshDetector;
use nvdimmc_ddr::{
    BankAddr, BusMaster, CaPins, Command, DramDevice, Imc, ImcConfig, SharedBus, SpeedBin,
    TimingParams,
};
use nvdimmc_nand::ecc::{crc32, Ecc};
use nvdimmc_nand::{Nvmc, NvmcConfig, PageCodec};
use nvdimmc_sim::SimTime;

fn bench_ecc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc");
    g.bench_function("secded_encode_word", |b| {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        b.iter(|| {
            x = x.rotate_left(1);
            Ecc::encode(x)
        });
    });
    g.bench_function("page_codec_roundtrip_4k", |b| {
        let codec = PageCodec::new(4096);
        let page = vec![0xA7u8; 4096];
        b.iter(|| {
            let stored = codec.encode(&page).unwrap();
            codec.decode(&stored).unwrap()
        });
    });
    g.bench_function("crc32_4k", |b| {
        let page = vec![0x5Cu8; 4096];
        b.iter(|| crc32(&page));
    });
    g.finish();
}

fn bench_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("refresh_detector");
    let refresh = CaPins::encode(&Command::Refresh);
    let other = CaPins::encode(&Command::PrechargeAll);
    g.bench_function("feed_command_stream", |b| {
        let mut det = RefreshDetector::new();
        b.iter(|| {
            det.feed_command(&other);
            det.feed_command(&refresh)
        });
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_substrate");
    g.bench_function("imc_4k_read", |b| {
        let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let mut bus = SharedBus::new(DramDevice::new(timing, 1 << 24));
        let mut imc = Imc::new(ImcConfig::from_timing(&timing));
        let mut buf = vec![0u8; 4096];
        let mut t = SimTime::from_ns(100);
        let mut addr = 0u64;
        b.iter(|| {
            t = imc.read_bytes(&mut bus, t, addr, &mut buf).unwrap();
            addr = (addr + 4096) % (1 << 23);
            t
        });
    });
    g.bench_function("bus_issue_act_rd_pre", |b| {
        let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let mut bus = SharedBus::new(DramDevice::new(timing, 1 << 24));
        let bank = BankAddr::new(0, 0);
        let mut t = SimTime::from_ns(100);
        b.iter(|| {
            let rw = bus
                .issue(BusMaster::HostImc, t, Command::Activate { bank, row: 1 })
                .unwrap();
            bus.issue(
                BusMaster::HostImc,
                rw,
                Command::Read {
                    bank,
                    col: 0,
                    auto_precharge: false,
                },
            )
            .unwrap();
            let pre = rw + timing.tras;
            bus.issue(BusMaster::HostImc, pre, Command::Precharge { bank })
                .unwrap();
            t = pre + timing.trp;
            t
        });
    });
    g.finish();
}

fn bench_nand(c: &mut Criterion) {
    let mut g = c.benchmark_group("nand_substrate");
    g.sample_size(20);
    g.bench_function("nvmc_write_read_page", |b| {
        let mut nvmc = Nvmc::new(NvmcConfig::small_for_tests()).unwrap();
        let page = vec![0x3Du8; 4096];
        let mut t = SimTime::ZERO;
        let mut lpn = 0u64;
        b.iter(|| {
            t = nvmc.write_page(lpn % 512, &page, t).unwrap();
            let (data, t2) = nvmc.read_page(lpn % 512, t).unwrap();
            t = t2;
            lpn += 1;
            data
        });
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_ecc,
    bench_detector,
    bench_dram,
    bench_nand
);
criterion_main!(substrates);
