//! Criterion wrappers over the per-figure workloads: one benchmark per
//! table/figure of the paper, sized down so the whole suite stays quick.
//! The `figures` binary produces the full paper-scale numbers; these
//! benches exist for regression tracking of the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use nvdimmc_core::{BlockDevice, EmulatedPmem, NvdimmCConfig, PerfParams, System, PAGE_BYTES};
use nvdimmc_ddr::{SpeedBin, TimingParams};
use nvdimmc_sim::SimDuration;
use nvdimmc_workloads::{FileCopy, FioJob, MixedLoad, StreamValidator, TpchRunner};

fn small_system() -> System {
    System::new(NvdimmCConfig::small_for_tests()).expect("config")
}

fn pmem() -> EmulatedPmem {
    EmulatedPmem::new(
        32 << 20,
        TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
        PerfParams::poc(),
    )
    .expect("pmem")
}

/// Figure 8 core loop: baseline and cached 4 KB random reads.
fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_random_rw");
    g.sample_size(10);
    g.bench_function("baseline_randread_4k", |b| {
        b.iter(|| {
            let mut dev = pmem();
            FioJob::rand_read_4k(16 << 20, 300).run(&mut dev).unwrap()
        });
    });
    g.bench_function("nvdc_cached_randread_4k", |b| {
        b.iter(|| {
            let mut sys = small_system();
            for p in 0..512 {
                sys.prefault(p).unwrap();
            }
            FioJob::rand_read_4k(512 * PAGE_BYTES, 300)
                .run(&mut sys)
                .unwrap()
        });
    });
    g.bench_function("nvdc_uncached_randread_4k", |b| {
        b.iter(|| {
            let mut cfg = NvdimmCConfig::small_for_tests();
            cfg.cache_slots = 32;
            let mut sys = System::new(cfg).unwrap();
            let page = vec![1u8; 4096];
            for i in 0..64u64 {
                sys.write_at(i * PAGE_BYTES, &page).unwrap();
            }
            FioJob::rand_read_4k(32 * PAGE_BYTES, 40)
                .run(&mut sys)
                .unwrap()
        });
    });
    g.finish();
}

/// Figure 7 core loop: the file copy across the cache boundary.
fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_file_copy");
    g.sample_size(10);
    g.bench_function("copy_past_cache_boundary", |b| {
        b.iter(|| {
            let mut cfg = NvdimmCConfig::small_for_tests();
            cfg.cache_slots = (2 << 20) / PAGE_BYTES;
            let mut sys = System::new(cfg).unwrap();
            FileCopy {
                file_bytes: 6 << 20,
                chunk_bytes: 64 << 10,
                source_bytes_per_s: 520e6,
                bin: SimDuration::from_ms(5.0),
                seed: 3,
            }
            .run(&mut sys)
            .unwrap()
        });
    });
    g.finish();
}

/// Figure 10 core loop: granularity sweep on the cached device.
fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_granularity");
    g.sample_size(10);
    for bs in [128u64, 4096, 65536] {
        g.bench_function(format!("cached_randread_{bs}B"), |b| {
            b.iter(|| {
                let mut sys = small_system();
                for p in 0..512 {
                    sys.prefault(p).unwrap();
                }
                FioJob {
                    block_size: bs,
                    ..FioJob::rand_read_4k(512 * PAGE_BYTES, 200)
                }
                .run(&mut sys)
                .unwrap()
            });
        });
    }
    g.finish();
}

/// Figure 11 core loop: one warm and one cold TPC-H profile.
fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_tpch");
    g.sample_size(10);
    let runner = TpchRunner::new(2 << 20);
    for (name, idx) in [("q1_scan", 0usize), ("q20_small_random", 19)] {
        let q = nvdimmc_workloads::tpch::queries()[idx];
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = NvdimmCConfig::small_for_tests();
                cfg.cache_slots = (2 << 20) / PAGE_BYTES;
                let mut sys = System::new(cfg).unwrap();
                runner.run_query(&mut sys, &q).unwrap()
            });
        });
    }
    g.finish();
}

/// Figures 12/13 core loops: the sensitivity sweeps.
fn bench_fig12_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_fig13_sweeps");
    g.sample_size(10);
    g.bench_function("hypothetical_td_1850ns", |b| {
        b.iter(|| {
            let cfg =
                NvdimmCConfig::small_for_tests().with_hypothetical(SimDuration::from_us(1.85));
            let mut sys = System::new(cfg).unwrap();
            FioJob::rand_read_4k(24 << 20, 300).run(&mut sys).unwrap()
        });
    });
    g.bench_function("cached_trefi4", |b| {
        b.iter(|| {
            let cfg = NvdimmCConfig::small_for_tests().with_trefi(SimDuration::from_us(1.95));
            let mut sys = System::new(cfg).unwrap();
            for p in 0..256 {
                sys.prefault(p).unwrap();
            }
            FioJob::rand_read_4k(256 * PAGE_BYTES, 300)
                .run(&mut sys)
                .unwrap()
        });
    });
    g.finish();
}

/// §VII-A / §VII-B5: the validation workloads.
fn bench_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("validation_workloads");
    g.sample_size(10);
    g.bench_function("stream_aging", |b| {
        b.iter(|| {
            let mut sys = small_system();
            let report = StreamValidator::small().run(&mut sys).unwrap();
            assert_eq!(report.mismatches, 0);
            report
        });
    });
    g.bench_function("mixed_load_50_users", |b| {
        b.iter(|| {
            let mut sys = small_system();
            let report = MixedLoad::small().run(&mut sys).unwrap();
            assert_eq!(report.validation_errors, 0);
            report
        });
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig7,
    bench_fig8,
    bench_fig10,
    bench_fig11,
    bench_fig12_13,
    bench_validation
);
criterion_main!(figures);
