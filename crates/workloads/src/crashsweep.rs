//! Crash-point sweep: exhaustive power-cut torture with a persistence
//! oracle, schedule shrinking, and a replayable crash corpus.
//!
//! CrashMonkey/ALICE for the NVDIMM-C stack. One deterministic workload
//! (generation-stamped multi-sector records: write / persist / read /
//! maintenance slots) is run three ways:
//!
//! 1. **Rehearse** — one fault-free pass with every shard in
//!    crash-enumerate mode records each crash boundary the run crosses:
//!    bus operations (per page of every read/write and per `clflush` of
//!    a persist), CP mailbox transitions (each ack-poll window), NVMC
//!    burst edges (each serviced refresh window, rank-level *and*
//!    per-bank), and maintenance slots (scrub / FTL housekeeping steps).
//! 2. **Sweep** — for each selected boundary `k`, replay the identical
//!    schedule with shard `s` armed to cut power exactly at `k`
//!    (determinism makes the boundary sequence bit-identical), dump the
//!    battery-backed state per the ADR policy, reboot through the
//!    persistent-state snapshot APIs ([`into_crash_recovered`]), and run
//!    the [`check_crash`] persistence oracle over the read-back:
//!    acked-persisted generations survive, no invented generations, no
//!    torn multi-sector record (in-flight writes leave a clean prefix),
//!    recovery ledgers balance. Small runs sweep exhaustively;
//!    [`Sampling::Stratified`] keeps every boundary *class* covered at
//!    scale and bisects from a failing sample toward the earliest
//!    failing boundary of its stratum.
//! 3. **Shrink** — a failing point is delta-debugged to a 1-minimal op
//!    schedule (greedy single-op elimination after truncating past the
//!    crash) that still reproduces the violated rule class, then
//!    serialized as a `# nvdimmc-crash schedule v1` artifact for
//!    `tests/crash_corpus/` — the same replay-from-text shape as the
//!    model checker's counterexample corpus.
//!
//! [`into_crash_recovered`]: MultiChannelSystem::into_crash_recovered
//! [`check_crash`]: nvdimmc_check::check_crash

use nvdimmc_check::{check_crash, CrashObservation, Diagnostic, RecordExpectation, SectorView};
use nvdimmc_core::{
    BlockDevice, CoreError, CrashPoint, CrashPointKind, MultiChannelConfig, MultiChannelSystem,
    NvdimmCConfig, PAGE_BYTES,
};
use nvdimmc_ddr::RefreshMode;
use nvdimmc_nand::ecc::crc32;
use nvdimmc_sim::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Magic prefix of every sector stamp.
const STAMP_MAGIC: u64 = 0x4E56_4443_5245_C0DE;
/// FNV offset/prime pair used for the fold digests (same constants as
/// the fault campaign, so digests are comparable across harnesses).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One operation of the crash schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashOp {
    /// Write the next generation of record `r` (all sectors, in order).
    Write(u64),
    /// `clflush`+`sfence` record `r`'s byte range; on ack the current
    /// written generation becomes the persisted generation.
    Persist(u64),
    /// Read record `r` back (drives eviction traffic; no ledger change).
    Read(u64),
    /// One maintenance slot: a bounded scrub step and an FTL
    /// housekeeping step on every shard, with crash boundaries between.
    Maintenance,
}

/// How much of the boundary space a sweep visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sampling {
    /// Every boundary of every shard — the bounded-exhaustive mode.
    Exhaustive,
    /// Every `stride`-th boundary *per boundary class* (plus each
    /// class's first and last), so no class is starved at scale. A
    /// failing sample is bisected toward the earliest failing boundary
    /// between it and the previous sampled point of its class.
    Stratified {
        /// Keep one in `stride` boundaries of each class (min 1).
        stride: u64,
    },
}

/// A reproducing crash point: `(shard, boundary, kind, violated rules)`.
type Witness = (usize, u64, CrashPointKind, Vec<String>);

/// Crash-sweep configuration: the workload shape and the cut policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSweep {
    /// Channels (= shards) behind the front-end; records interleave
    /// across all of them, so multi-channel runs cover cross-shard
    /// record tears.
    pub channels: u32,
    /// Records in the working set.
    pub records: u64,
    /// Sectors (4 KB pages) per record; `> 1` makes torn-record states
    /// observable.
    pub sectors_per_record: u64,
    /// Scheduled operations generated from the seed.
    pub ops: u64,
    /// Seed for the op generator and the sector payloads.
    pub seed: u64,
    /// Refresh scheduling mode under test (rank-level or per-bank).
    pub refresh_mode: RefreshMode,
    /// Insert a [`CrashOp::Maintenance`] slot every this many ops
    /// (0 = never).
    pub maintenance_every: u64,
    /// Whether ADR holds at the cut. `true` is the strong-domain
    /// contract the oracle enforces; `false` reproduces the §V-C
    /// weak-domain tear (expected findings, kept as corpus artifacts).
    pub adr_works: bool,
    /// Boundary selection policy.
    pub sampling: Sampling,
}

impl CrashSweep {
    /// A bounded-exhaustive configuration small enough to sweep every
    /// boundary in a test run. The record count scales with the channel
    /// count so every shard's slice of the page-interleaved footprint
    /// overflows its deliberately tiny two-slot DRAM cache — without
    /// that pressure the sweep would never cross a CP-window or
    /// NVMC-burst boundary.
    pub fn small(channels: u32) -> Self {
        CrashSweep {
            channels,
            records: 4 * u64::from(channels),
            sectors_per_record: 2,
            ops: 4 + 4 * u64::from(channels),
            seed: 0x00C4_A54E_5EED,
            refresh_mode: RefreshMode::RankLevel,
            maintenance_every: 3,
            adr_works: true,
            sampling: Sampling::Exhaustive,
        }
    }

    /// The bounded-exhaustive configuration for per-bank refresh
    /// windows. Per-bank mode services one NVMC burst per *bank* window
    /// instead of one per rank window, which multiplies the crash
    /// boundary density roughly tenfold for the same op schedule — and
    /// an exhaustive sweep pays O(boundaries · replay) for it. This
    /// preset trims the op schedule and working set so that sweeping
    /// *every* boundary stays tractable while still crossing all four
    /// boundary classes on every shard.
    pub fn small_per_bank(channels: u32) -> Self {
        CrashSweep {
            records: 2 * u64::from(channels.max(2)),
            ops: 4 + 2 * u64::from(channels.min(2)),
            refresh_mode: RefreshMode::PerBank,
            ..CrashSweep::small(channels)
        }
    }

    /// Replaces the refresh mode.
    #[must_use]
    pub fn with_refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.refresh_mode = mode;
        self
    }

    /// Replaces the sampling policy.
    #[must_use]
    pub fn with_sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Replaces the ADR policy.
    #[must_use]
    pub fn with_adr(mut self, adr_works: bool) -> Self {
        self.adr_works = adr_works;
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn record_bytes(&self) -> u64 {
        self.sectors_per_record * PAGE_BYTES
    }

    fn record_offset(&self, record: u64) -> u64 {
        record * self.record_bytes()
    }

    fn config(&self) -> MultiChannelConfig {
        let mut shard = NvdimmCConfig::small_for_tests();
        // A deliberately tiny cache: near-constant eviction keeps
        // CP/NVMC traffic — and with it CP-window and NVMC-burst crash
        // boundaries — alive for the whole schedule on every shard.
        shard.cache_slots = 2;
        shard = shard.with_refresh_mode(self.refresh_mode);
        MultiChannelConfig::new(shard, self.channels)
    }

    fn boot(&self) -> Result<MultiChannelSystem, CoreError> {
        let mut sys = MultiChannelSystem::new(self.config())?;
        if self.maintenance_every > 0 {
            // Arm CRC tracking so the maintenance slots' scrub steps do
            // real verification work between crash boundaries.
            for s in sys.shards_mut() {
                s.enable_scrub();
            }
        }
        Ok(sys)
    }

    /// The deterministic op schedule this configuration generates.
    ///
    /// # Panics
    ///
    /// Panics on an empty configuration (no records or sectors).
    pub fn make_ops(&self) -> Vec<CrashOp> {
        assert!(
            self.records > 0 && self.sectors_per_record > 0,
            "empty crash sweep"
        );
        let mut rng = DeterministicRng::new(self.seed).fork(0x5EE1);
        let mut ops = Vec::new();
        for i in 0..self.ops {
            if self.maintenance_every > 0 && i > 0 && i % self.maintenance_every == 0 {
                ops.push(CrashOp::Maintenance);
            }
            let r = rng.gen_range(0..self.records);
            // Write-heavy: tears need in-flight data to bite on.
            ops.push(match rng.gen_range(0..10u64) {
                0..=4 => CrashOp::Write(r),
                5..=7 => CrashOp::Persist(r),
                _ => CrashOp::Read(r),
            });
        }
        ops
    }

    /// Fills `buf` (one sector) with the generation stamp.
    fn fill_sector(&self, buf: &mut [u8], record: u64, sector: u64, gen: u64) {
        let n = buf.len();
        buf[0..8].copy_from_slice(&STAMP_MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&record.to_le_bytes());
        buf[16..24].copy_from_slice(&sector.to_le_bytes());
        buf[24..32].copy_from_slice(&gen.to_le_bytes());
        buf[32..40].copy_from_slice(&self.seed.to_le_bytes());
        let mut payload = DeterministicRng::new(
            self.seed
                ^ record.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ gen.wrapping_mul(0xD134_2543_DE82_EF95)
                ^ sector,
        );
        payload.fill_bytes(&mut buf[40..n - 4]);
        let crc = crc32(&buf[..n - 4]);
        buf[n - 4..].copy_from_slice(&crc.to_le_bytes());
    }

    /// Parses one read-back sector into the oracle's view of it.
    fn parse_sector(buf: &[u8]) -> SectorView {
        if buf.iter().all(|&b| b == 0) {
            return SectorView::Zero;
        }
        let n = buf.len();
        let stored = u32::from_le_bytes([buf[n - 4], buf[n - 3], buf[n - 2], buf[n - 1]]);
        if crc32(&buf[..n - 4]) != stored {
            return SectorView::Garbage;
        }
        let word = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[at..at + 8]);
            u64::from_le_bytes(b)
        };
        if word(0) != STAMP_MAGIC {
            return SectorView::Garbage;
        }
        SectorView::Valid {
            record: word(8),
            sector: word(16),
            gen: word(24),
        }
    }

    /// Executes `ops` against `sys`, maintaining the expectation ledger.
    /// Returns the index of the op a power cut interrupted, or `None`
    /// when the schedule completed.
    fn run_ops(
        &self,
        sys: &mut MultiChannelSystem,
        ops: &[CrashOp],
        ledger: &mut Ledger,
    ) -> Result<Option<usize>, CoreError> {
        let mut buf = vec![0u8; self.record_bytes() as usize];
        for (i, &op) in ops.iter().enumerate() {
            let res = match op {
                CrashOp::Write(r) => {
                    let gen = ledger.written[r as usize] + 1;
                    let sector = PAGE_BYTES as usize;
                    for s in 0..self.sectors_per_record {
                        let at = s as usize * sector;
                        self.fill_sector(&mut buf[at..at + sector], r, s, gen);
                    }
                    // The device sees the sectors page by page in page
                    // order ([`split_range`] walks the address space
                    // forward), so a cut leaves a clean new-gen prefix.
                    ledger.in_flight = Some((r, gen));
                    let res = sys.write_at(self.record_offset(r), &buf).map(|_| ());
                    if res.is_ok() {
                        ledger.written[r as usize] = gen;
                        ledger.in_flight = None;
                    }
                    res
                }
                CrashOp::Persist(r) => {
                    let res = sys.persist(self.record_offset(r), self.record_bytes());
                    if res.is_ok() {
                        ledger.persisted[r as usize] = ledger.written[r as usize];
                    }
                    res
                }
                CrashOp::Read(r) => sys.read_at(self.record_offset(r), &mut buf).map(|_| ()),
                CrashOp::Maintenance => Self::maintenance_slot(sys),
            };
            match res {
                Ok(()) => {}
                Err(CoreError::PowerInterrupted) => return Ok(Some(i)),
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// One maintenance slot: crash boundaries bracket each shard's
    /// scrub step and FTL housekeeping step.
    fn maintenance_slot(sys: &mut MultiChannelSystem) -> Result<(), CoreError> {
        for s in sys.shards_mut() {
            s.crash_tick_maintenance()?;
            let _ = s.scrub_step(2);
            s.crash_tick_maintenance()?;
            let _ = s.ftl_housekeeping();
        }
        Ok(())
    }

    /// Rehearses `ops` once, fault-free, and returns every crash
    /// boundary each shard crossed.
    ///
    /// # Errors
    ///
    /// Propagates device errors (none expected in a fault-free pass).
    pub fn rehearse(&self, ops: &[CrashOp]) -> Result<Vec<Vec<CrashPoint>>, CoreError> {
        let mut sys = self.boot()?;
        sys.crash_enumerate_begin();
        let mut ledger = Ledger::new(self.records);
        let fired = self.run_ops(&mut sys, ops, &mut ledger)?;
        debug_assert!(fired.is_none(), "enumeration must not cut power");
        Ok(sys.crash_enumerate_take())
    }

    /// Replays `ops` with shard `shard` armed to cut power at boundary
    /// `boundary`, recovers, and runs the persistence oracle.
    ///
    /// # Errors
    ///
    /// Propagates device errors outside the modelled power cut.
    pub fn run_trial(
        &self,
        ops: &[CrashOp],
        shard: usize,
        boundary: u64,
    ) -> Result<TrialReport, CoreError> {
        let mut sys = self.boot()?;
        sys.crash_arm(shard, boundary);
        let mut ledger = Ledger::new(self.records);
        let fired_at_op = self.run_ops(&mut sys, ops, &mut ledger)?;
        let fired = fired_at_op.is_some();
        if fired {
            sys.power_fail(self.adr_works)?;
            sys = sys.into_crash_recovered()?;
        } else {
            // The armed boundary was past the end of the run; disarm
            // and audit the completed state (no cut, so no in-flight).
            sys.crash_disarm();
            ledger.in_flight = None;
        }
        let mut expectations = Vec::with_capacity(self.records as usize);
        let mut observations = Vec::with_capacity(self.records as usize);
        let mut digest = FNV_OFFSET;
        let mut buf = vec![0u8; self.record_bytes() as usize];
        for r in 0..self.records {
            let in_flight = match ledger.in_flight {
                Some((rec, gen)) if rec == r => Some(gen),
                _ => None,
            };
            expectations.push(RecordExpectation {
                id: r,
                written_gen: ledger.written[r as usize],
                persisted_gen: ledger.persisted[r as usize],
                in_flight,
            });
            sys.read_at(self.record_offset(r), &mut buf)?;
            let sector = PAGE_BYTES as usize;
            let sectors = (0..self.sectors_per_record)
                .map(|s| {
                    let bytes = &buf[s as usize * sector..(s as usize + 1) * sector];
                    digest = digest
                        .wrapping_mul(FNV_PRIME)
                        .wrapping_add(u64::from(crc32(bytes)));
                    Self::parse_sector(bytes)
                })
                .collect();
            observations.push(CrashObservation { record: r, sectors });
        }
        let stats = sys.recovery_stats();
        let violations = check_crash(&expectations, &observations, &stats);
        Ok(TrialReport {
            fired,
            fired_at_op,
            violations,
            digest,
        })
    }

    /// Selects the boundaries to probe on one shard per the sampling
    /// policy. Points come back in ascending boundary order.
    fn select(&self, points: &[CrashPoint]) -> Vec<(u64, CrashPointKind)> {
        match self.sampling {
            Sampling::Exhaustive => points.iter().map(|p| (p.index, p.kind)).collect(),
            Sampling::Stratified { stride } => {
                let stride = stride.max(1) as usize;
                let mut picked = Vec::new();
                for kind in KINDS {
                    let of_kind: Vec<&CrashPoint> =
                        points.iter().filter(|p| p.kind == kind).collect();
                    for (pos, p) in of_kind.iter().enumerate() {
                        if pos % stride == 0 || pos + 1 == of_kind.len() {
                            picked.push((p.index, p.kind));
                        }
                    }
                }
                picked.sort_unstable_by_key(|&(idx, _)| idx);
                picked.dedup_by_key(|&mut (idx, _)| idx);
                picked
            }
        }
    }

    /// Runs the full sweep: rehearse, probe every selected boundary of
    /// every shard, and (in stratified mode) bisect each failure toward
    /// the earliest failing boundary of its stratum.
    ///
    /// # Errors
    ///
    /// Propagates device errors outside the modelled power cuts.
    pub fn sweep(&self) -> Result<SweepReport, CoreError> {
        let ops = self.make_ops();
        self.sweep_ops(&ops)
    }

    /// [`CrashSweep::sweep`] over an explicit op schedule.
    ///
    /// # Errors
    ///
    /// Propagates device errors outside the modelled power cuts.
    pub fn sweep_ops(&self, ops: &[CrashOp]) -> Result<SweepReport, CoreError> {
        let boundaries = self.rehearse(ops)?;
        let mut report = SweepReport {
            channels: self.channels,
            boundaries_per_shard: boundaries.iter().map(|b| b.len() as u64).collect(),
            per_kind: [0; 4],
            trials: 0,
            failures: Vec::new(),
            digest: FNV_OFFSET,
        };
        for points in &boundaries {
            for p in points {
                report.per_kind[kind_index(p.kind)] += 1;
            }
        }
        for (shard, points) in boundaries.iter().enumerate() {
            // Last *passing* probed boundary, per kind: the bisection
            // floor for a stratified failure.
            let mut last_pass: [Option<u64>; 4] = [None; 4];
            for (k, kind) in self.select(points) {
                let trial = self.run_trial(ops, shard, k)?;
                report.trials += 1;
                report.digest = report
                    .digest
                    .wrapping_mul(FNV_PRIME)
                    .wrapping_add(trial.digest);
                if trial.violations.is_empty() {
                    last_pass[kind_index(kind)] = Some(k);
                    continue;
                }
                let (boundary, rules) = if matches!(self.sampling, Sampling::Stratified { .. }) {
                    let lo = last_pass[kind_index(kind)];
                    self.bisect(ops, shard, lo, k, &trial)?
                } else {
                    (k, rule_names(&trial.violations))
                };
                report.failures.push(FailingPoint {
                    shard,
                    boundary,
                    kind,
                    rules,
                });
            }
        }
        Ok(report)
    }

    /// Bisects between a passing floor `lo` and a failing boundary `hi`
    /// toward the earliest failing boundary of the gap (failure is
    /// treated as locally monotone within a stratum — a heuristic that
    /// converges on *a* minimal failing point, which the shrinker then
    /// reduces further).
    fn bisect(
        &self,
        ops: &[CrashOp],
        shard: usize,
        lo: Option<u64>,
        hi: u64,
        at_hi: &TrialReport,
    ) -> Result<(u64, Vec<String>), CoreError> {
        let mut lo = lo.unwrap_or(0);
        let mut hi = hi;
        let mut rules = rule_names(&at_hi.violations);
        while hi > lo + 1 {
            let mid = lo + (hi - lo) / 2;
            let t = self.run_trial(ops, shard, mid)?;
            if t.violations.is_empty() {
                lo = mid;
            } else {
                hi = mid;
                rules = rule_names(&t.violations);
            }
        }
        Ok((hi, rules))
    }

    /// Delta-debugs a failing point to a 1-minimal crash schedule that
    /// still reproduces at least one of its violated rules: truncate
    /// everything after the interrupted op, then greedily drop single
    /// ops (re-enumerating boundaries each time) until no further op can
    /// go. Returns the shrunk schedule with a boundary that reproduces.
    ///
    /// # Errors
    ///
    /// Propagates device errors outside the modelled power cuts.
    ///
    /// # Panics
    ///
    /// Panics if `failing` does not actually fail under `ops` — shrink
    /// only what the sweep reported.
    pub fn shrink_failure(
        &self,
        ops: &[CrashOp],
        failing: &FailingPoint,
    ) -> Result<ShrunkCrash, CoreError> {
        let first = self.run_trial(ops, failing.shard, failing.boundary)?;
        assert!(
            !first.violations.is_empty(),
            "shrink target does not reproduce"
        );
        let target: Vec<String> = rule_names(&first.violations);
        // Truncate: ops after the interrupted one never ran.
        let cut = first.fired_at_op.map_or(ops.len(), |i| i + 1);
        let mut ops: Vec<CrashOp> = ops[..cut].to_vec();
        let mut witness = self.reproduces(&ops, &target)?.unwrap_or((
            failing.shard,
            failing.boundary,
            failing.kind,
            target.clone(),
        ));
        // Greedy 1-minimal elimination: drop any single op whose removal
        // still reproduces a target rule, until no op can go.
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = ops.len();
            while i > 0 {
                i -= 1;
                let mut candidate = ops.clone();
                candidate.remove(i);
                if candidate.is_empty() {
                    continue;
                }
                if let Some(w) = self.reproduces(&candidate, &target)? {
                    ops = candidate;
                    witness = w;
                    changed = true;
                }
            }
        }
        let (shard, boundary, kind, rules) = witness;
        Ok(ShrunkCrash {
            ops,
            shard,
            boundary,
            kind,
            rules,
        })
    }

    /// Whether any boundary of `ops` reproduces one of the target
    /// rules; returns the first witnessing point.
    fn reproduces(&self, ops: &[CrashOp], target: &[String]) -> Result<Option<Witness>, CoreError> {
        let boundaries = self.rehearse(ops)?;
        for (shard, points) in boundaries.iter().enumerate() {
            for p in points {
                let t = self.run_trial(ops, shard, p.index)?;
                let rules = rule_names(&t.violations);
                if rules.iter().any(|r| target.contains(r)) {
                    return Ok(Some((shard, p.index, p.kind, rules)));
                }
            }
        }
        Ok(None)
    }

    /// Serializes a crash schedule as a `# nvdimmc-crash schedule v1`
    /// corpus artifact.
    pub fn to_schedule(
        &self,
        ops: &[CrashOp],
        shard: usize,
        boundary: u64,
        kind: CrashPointKind,
        expect: &[String],
    ) -> String {
        let mut out = String::from("# nvdimmc-crash schedule v1\n");
        out.push_str(&format!(
            "# params channels={} records={} sectors={} seed={:#x} refresh={} maintenance_every={} adr={}\n",
            self.channels,
            self.records,
            self.sectors_per_record,
            self.seed,
            refresh_name(self.refresh_mode),
            self.maintenance_every,
            u8::from(self.adr_works),
        ));
        out.push_str(&format!(
            "# crash shard={shard} boundary={boundary} kind={}\n",
            kind.name()
        ));
        for rule in expect {
            out.push_str(&format!("# expect {rule}\n"));
        }
        for op in ops {
            out.push_str(&match *op {
                CrashOp::Write(r) => format!("w {r}\n"),
                CrashOp::Persist(r) => format!("p {r}\n"),
                CrashOp::Read(r) => format!("r {r}\n"),
                CrashOp::Maintenance => "m\n".to_string(),
            });
        }
        out
    }

    /// Parses a corpus artifact back into a replayable schedule.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn parse_schedule(text: &str) -> Result<ParsedSchedule, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("# nvdimmc-crash schedule v1") {
            return Err("missing `# nvdimmc-crash schedule v1` header".into());
        }
        let mut sweep = CrashSweep::small(1);
        let mut crash: Option<(usize, u64, CrashPointKind)> = None;
        let mut expect = Vec::new();
        let mut ops = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(params) = line.strip_prefix("# params ") {
                for kv in params.split_whitespace() {
                    let (key, val) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("malformed param `{kv}`"))?;
                    parse_param(&mut sweep, key, val)?;
                }
            } else if let Some(spec) = line.strip_prefix("# crash ") {
                let mut shard = None;
                let mut boundary = None;
                let mut kind = None;
                for kv in spec.split_whitespace() {
                    let (key, val) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("malformed crash spec `{kv}`"))?;
                    match key {
                        "shard" => shard = val.parse::<usize>().ok(),
                        "boundary" => boundary = val.parse::<u64>().ok(),
                        "kind" => kind = CrashPointKind::from_name(val),
                        _ => return Err(format!("unknown crash key `{key}`")),
                    }
                }
                crash = Some((
                    shard.ok_or("crash spec missing shard")?,
                    boundary.ok_or("crash spec missing boundary")?,
                    kind.ok_or("crash spec missing/unknown kind")?,
                ));
            } else if let Some(rule) = line.strip_prefix("# expect ") {
                expect.push(rule.trim().to_string());
            } else if line.starts_with('#') {
                // Free-form commentary.
            } else {
                let mut parts = line.split_whitespace();
                let op = parts.next().unwrap_or_default();
                ops.push(match op {
                    "m" => CrashOp::Maintenance,
                    "w" | "p" | "r" => {
                        let rec: u64 = parts
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("op `{line}` missing record"))?;
                        match op {
                            "w" => CrashOp::Write(rec),
                            "p" => CrashOp::Persist(rec),
                            _ => CrashOp::Read(rec),
                        }
                    }
                    _ => return Err(format!("unknown op line `{line}`")),
                });
            }
        }
        let (shard, boundary, kind) = crash.ok_or("missing `# crash` line")?;
        sweep.ops = ops.len() as u64;
        Ok(ParsedSchedule {
            sweep,
            ops,
            shard,
            boundary,
            kind,
            expect,
        })
    }

    /// Replays a corpus artifact: runs its trial and checks the outcome
    /// against the artifact's `# expect` lines (none = must be clean).
    ///
    /// # Errors
    ///
    /// Returns a message for parse failures, device errors, or an
    /// outcome that contradicts the artifact.
    pub fn replay_schedule(text: &str) -> Result<TrialReport, String> {
        let parsed = Self::parse_schedule(text)?;
        let trial = parsed
            .sweep
            .run_trial(&parsed.ops, parsed.shard, parsed.boundary)
            .map_err(|e| format!("replay failed: {e}"))?;
        let rules = rule_names(&trial.violations);
        if parsed.expect.is_empty() {
            if !rules.is_empty() {
                return Err(format!("expected a clean replay, found {rules:?}"));
            }
        } else {
            for want in &parsed.expect {
                if !rules.contains(want) {
                    return Err(format!(
                        "expected rule `{want}` to reproduce, found {rules:?}"
                    ));
                }
            }
        }
        Ok(trial)
    }
}

/// The four boundary classes, in ledger order.
const KINDS: [CrashPointKind; 4] = [
    CrashPointKind::BusOp,
    CrashPointKind::CpWindow,
    CrashPointKind::NvmcBurst,
    CrashPointKind::Maintenance,
];

fn kind_index(kind: CrashPointKind) -> usize {
    match kind {
        CrashPointKind::BusOp => 0,
        CrashPointKind::CpWindow => 1,
        CrashPointKind::NvmcBurst => 2,
        CrashPointKind::Maintenance => 3,
    }
}

fn refresh_name(mode: RefreshMode) -> &'static str {
    match mode {
        RefreshMode::RankLevel => "rank",
        RefreshMode::PerBank => "per-bank",
    }
}

fn rule_names(diags: &[Diagnostic]) -> Vec<String> {
    let mut rules: Vec<String> = diags.iter().map(|d| d.rule.to_string()).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

fn parse_param(sweep: &mut CrashSweep, key: &str, val: &str) -> Result<(), String> {
    let num = |v: &str| -> Result<u64, String> {
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            v.parse()
        };
        parsed.map_err(|_| format!("malformed number `{v}` for `{key}`"))
    };
    match key {
        "channels" => sweep.channels = u32::try_from(num(val)?).map_err(|e| e.to_string())?,
        "records" => sweep.records = num(val)?,
        "sectors" => sweep.sectors_per_record = num(val)?,
        "seed" => sweep.seed = num(val)?,
        "maintenance_every" => sweep.maintenance_every = num(val)?,
        "adr" => sweep.adr_works = num(val)? != 0,
        "refresh" => {
            sweep.refresh_mode = match val {
                "rank" => RefreshMode::RankLevel,
                "per-bank" => RefreshMode::PerBank,
                _ => return Err(format!("unknown refresh mode `{val}`")),
            };
        }
        _ => return Err(format!("unknown param `{key}`")),
    }
    Ok(())
}

/// Host-side expectation ledger maintained while the schedule runs.
struct Ledger {
    /// Generation of the last completed write, per record.
    written: Vec<u64>,
    /// Generation covered by the last acked persist, per record.
    persisted: Vec<u64>,
    /// The write the cut interrupted, if any: `(record, new_gen)`.
    in_flight: Option<(u64, u64)>,
}

impl Ledger {
    fn new(records: u64) -> Self {
        Ledger {
            written: vec![0; records as usize],
            persisted: vec![0; records as usize],
            in_flight: None,
        }
    }
}

/// Outcome of one crash trial.
#[derive(Debug, Clone)]
pub struct TrialReport {
    /// Whether the armed boundary actually fired.
    pub fired: bool,
    /// Index of the op the cut interrupted.
    pub fired_at_op: Option<usize>,
    /// Persistence-oracle findings (empty = the trial passed).
    pub violations: Vec<Diagnostic>,
    /// FNV-folded CRC digest of the post-recovery read-back
    /// (bit-identity probe across reruns).
    pub digest: u64,
}

/// One boundary whose trial violated the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailingPoint {
    /// Shard the cut was armed on.
    pub shard: usize,
    /// Boundary index within that shard's rehearsal sequence.
    pub boundary: u64,
    /// Boundary class.
    pub kind: CrashPointKind,
    /// Violated rules (sorted, deduplicated).
    pub rules: Vec<String>,
}

/// Aggregate sweep outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Channels the sweep ran on.
    pub channels: u32,
    /// Crash boundaries each shard's rehearsal crossed.
    pub boundaries_per_shard: Vec<u64>,
    /// Boundary counts per class (bus-op, cp-window, nvmc-burst,
    /// maintenance).
    pub per_kind: [u64; 4],
    /// Trials actually run (= boundaries probed).
    pub trials: u64,
    /// Boundaries whose trial violated the oracle.
    pub failures: Vec<FailingPoint>,
    /// FNV fold of every trial digest (bit-identity probe).
    pub digest: u64,
}

impl SweepReport {
    /// Whether every probed boundary passed the persistence oracle.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total boundaries across all shards.
    pub fn boundaries_total(&self) -> u64 {
        self.boundaries_per_shard.iter().sum()
    }
}

/// A parsed corpus artifact.
#[derive(Debug, Clone)]
pub struct ParsedSchedule {
    /// The sweep configuration the artifact encodes.
    pub sweep: CrashSweep,
    /// The op schedule.
    pub ops: Vec<CrashOp>,
    /// Armed shard.
    pub shard: usize,
    /// Armed boundary index.
    pub boundary: u64,
    /// Boundary class recorded for the artifact.
    pub kind: CrashPointKind,
    /// Rules the replay must reproduce (empty = must be clean).
    pub expect: Vec<String>,
}

/// A shrunk, 1-minimal failing crash schedule.
#[derive(Debug, Clone)]
pub struct ShrunkCrash {
    /// The minimal op schedule.
    pub ops: Vec<CrashOp>,
    /// Witnessing shard.
    pub shard: usize,
    /// Witnessing boundary index.
    pub boundary: u64,
    /// Witnessing boundary class.
    pub kind: CrashPointKind,
    /// Rules the witness reproduces.
    pub rules: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rehearsal_is_deterministic() {
        let sweep = CrashSweep::small(1);
        let ops = sweep.make_ops();
        let a = sweep.rehearse(&ops).unwrap();
        let b = sweep.rehearse(&ops).unwrap();
        assert_eq!(a, b);
        assert!(!a[0].is_empty());
    }

    #[test]
    fn small_exhaustive_sweep_is_clean_and_reproducible() {
        let sweep = CrashSweep::small(1);
        let a = sweep.sweep().unwrap();
        assert!(a.is_clean(), "{:?}", a.failures);
        assert_eq!(a.trials, a.boundaries_total());
        // Every boundary class the schedule can cross is covered.
        assert!(a.per_kind[0] > 0, "bus-op boundaries");
        assert!(a.per_kind[1] > 0, "cp-window boundaries");
        assert!(a.per_kind[2] > 0, "nvmc-burst boundaries");
        assert!(a.per_kind[3] > 0, "maintenance boundaries");
        let b = sweep.sweep().unwrap();
        assert_eq!(a, b, "sweep must be bit-identical across reruns");
    }

    #[test]
    fn stratified_sampling_covers_every_class_with_fewer_trials() {
        let exhaustive = CrashSweep::small(1);
        let strat = exhaustive.with_sampling(Sampling::Stratified { stride: 7 });
        let e = exhaustive.sweep().unwrap();
        let s = strat.sweep().unwrap();
        assert!(s.is_clean(), "{:?}", s.failures);
        assert!(s.trials < e.trials, "{} !< {}", s.trials, e.trials);
        assert_eq!(s.per_kind, e.per_kind, "rehearsal sees the same space");
    }

    /// A schedule that crosses the torn-flush window with stale
    /// persisted state: the second persist's per-page `clflush` loop is
    /// where a weak-domain cut leaves a mixed-generation record.
    fn tearing_ops() -> Vec<CrashOp> {
        vec![
            CrashOp::Write(1),
            CrashOp::Read(2),
            CrashOp::Write(0),
            CrashOp::Persist(0),
            CrashOp::Maintenance,
            CrashOp::Write(0),
            CrashOp::Read(1),
            CrashOp::Persist(0),
        ]
    }

    #[test]
    fn weak_domain_sweep_finds_tears() {
        // adr_works = false reproduces the §V-C weak-domain hazard: a
        // cut between a persist's per-page clflushes drops the not-yet
        // flushed CPU lines, leaving a mixed-generation record. The
        // strict oracle must catch it.
        let sweep = CrashSweep::small(1).with_adr(false);
        let r = sweep.sweep_ops(&tearing_ops()).unwrap();
        assert!(!r.is_clean(), "weak domain must tear somewhere");
        let rules: Vec<&String> = r.failures.iter().flat_map(|f| &f.rules).collect();
        assert!(
            rules.iter().any(|r| {
                r.as_str() == "crash/unparseable-sector" || r.as_str() == "crash/torn-record"
            }),
            "{rules:?}"
        );
        // The identical boundaries with ADR intact stay clean: the
        // pre-dump flush closes the torn-flush window.
        let strong = sweep.with_adr(true).sweep_ops(&tearing_ops()).unwrap();
        assert!(strong.is_clean(), "{:?}", strong.failures);
    }

    #[test]
    fn shrunk_schedule_reproduces_and_is_minimal() {
        let sweep = CrashSweep::small(1).with_adr(false);
        let ops = tearing_ops();
        let r = sweep.sweep_ops(&ops).unwrap();
        let failing = r.failures.first().expect("weak domain fails");
        let shrunk = sweep.shrink_failure(&ops, failing).unwrap();
        assert!(shrunk.ops.len() <= ops.len());
        assert!(!shrunk.rules.is_empty());
        // The witness reproduces on the shrunk schedule...
        let t = sweep
            .run_trial(&shrunk.ops, shrunk.shard, shrunk.boundary)
            .unwrap();
        let got = rule_names(&t.violations);
        assert!(
            shrunk.rules.iter().any(|r| got.contains(r)),
            "{got:?} vs {:?}",
            shrunk.rules
        );
        // ...and no single op can be removed (1-minimality).
        for i in 0..shrunk.ops.len() {
            let mut candidate = shrunk.ops.clone();
            candidate.remove(i);
            if candidate.is_empty() {
                continue;
            }
            let again = sweep.reproduces(&candidate, &shrunk.rules).unwrap();
            assert!(again.is_none(), "op {i} was removable");
        }
    }

    #[test]
    fn schedule_roundtrips_through_text() {
        let sweep = CrashSweep::small(2).with_adr(false);
        let ops = vec![
            CrashOp::Write(0),
            CrashOp::Persist(0),
            CrashOp::Maintenance,
            CrashOp::Read(1),
        ];
        let text = sweep.to_schedule(
            &ops,
            1,
            17,
            CrashPointKind::CpWindow,
            &["crash/torn-record".to_string()],
        );
        let parsed = CrashSweep::parse_schedule(&text).unwrap();
        assert_eq!(parsed.ops, ops);
        assert_eq!(parsed.shard, 1);
        assert_eq!(parsed.boundary, 17);
        assert_eq!(parsed.kind, CrashPointKind::CpWindow);
        assert_eq!(parsed.expect, vec!["crash/torn-record".to_string()]);
        assert_eq!(parsed.sweep.channels, 2);
        assert!(!parsed.sweep.adr_works);
        assert_eq!(parsed.sweep.seed, sweep.seed);
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        assert!(CrashSweep::parse_schedule("not a schedule").is_err());
        let missing_crash = "# nvdimmc-crash schedule v1\n# params channels=1\nw 0\n";
        assert!(CrashSweep::parse_schedule(missing_crash).is_err());
        let bad_op = "# nvdimmc-crash schedule v1\n# crash shard=0 boundary=0 kind=bus-op\nx 0\n";
        assert!(CrashSweep::parse_schedule(bad_op).is_err());
    }

    #[test]
    fn sector_stamps_roundtrip_and_reject_tears() {
        let sweep = CrashSweep::small(1);
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        sweep.fill_sector(&mut buf, 2, 1, 7);
        assert_eq!(
            CrashSweep::parse_sector(&buf),
            SectorView::Valid {
                record: 2,
                sector: 1,
                gen: 7
            }
        );
        // A 64-byte tear (one lost cache line) breaks the CRC.
        let mut torn = buf.clone();
        for b in &mut torn[1024..1088] {
            *b = 0;
        }
        assert_eq!(CrashSweep::parse_sector(&torn), SectorView::Garbage);
        assert_eq!(
            CrashSweep::parse_sector(&vec![0u8; PAGE_BYTES as usize]),
            SectorView::Zero
        );
    }
}
