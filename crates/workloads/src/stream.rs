//! STREAM-like validation workload (paper §VII-A).
//!
//! The paper validates refresh-detection accuracy by running a modified
//! STREAM "intensively on all the CPU cores for the DRAM cache area",
//! comparing results with reference data every iteration while the FPGA
//! exercises every refresh window. We reproduce that: the four STREAM
//! kernels (Copy, Scale, Add, Triad) run over device-resident arrays of
//! `f64`, and every kernel's output is compared against a host-memory
//! oracle. Any divergence would mean the FPGA corrupted the DRAM behind
//! the host's back — i.e. the tRFC serialisation failed.

use nvdimmc_core::{BlockDevice, CoreError};
use serde::{Deserialize, Serialize};

/// STREAM validation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamValidator {
    /// Elements per array (three arrays of 8-byte elements are used).
    pub elements: u64,
    /// Iterations of the four-kernel cycle.
    pub iterations: u32,
    /// The Triad/Scale scalar.
    pub scalar: f64,
}

/// Results of the validation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Kernel executions performed (4 × iterations).
    pub kernels_run: u32,
    /// Elementwise mismatches against the oracle (must be 0).
    pub mismatches: u64,
    /// Total bytes moved through the device.
    pub bytes_moved: u64,
}

impl StreamValidator {
    /// A small default: 3 × 4K-element arrays (96 KB), 5 iterations.
    pub fn small() -> Self {
        StreamValidator {
            elements: 4096,
            iterations: 5,
            scalar: 3.0,
        }
    }

    fn array_bytes(&self) -> u64 {
        self.elements * 8
    }

    fn read_array(&self, dev: &mut impl BlockDevice, base: u64) -> Result<Vec<f64>, CoreError> {
        let mut raw = vec![0u8; self.array_bytes() as usize];
        dev.read_at(base, &mut raw)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                f64::from_le_bytes(w)
            })
            .collect())
    }

    fn write_array(dev: &mut impl BlockDevice, base: u64, data: &[f64]) -> Result<(), CoreError> {
        let mut raw = Vec::with_capacity(data.len() * 8);
        for v in data {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        dev.write_at(base, &raw)?;
        Ok(())
    }

    /// Runs the aging test on `dev`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run(&self, dev: &mut impl BlockDevice) -> Result<StreamReport, CoreError> {
        assert!(self.elements > 0, "arrays must be non-empty");
        let n = self.elements as usize;
        let ab = self.array_bytes();
        let (base_a, base_b, base_c) = (0, ab, 2 * ab);

        // Host-memory oracle.
        let mut oa: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        let mut ob: Vec<f64> = vec![2.0; n];
        let mut oc: Vec<f64> = vec![0.0; n];
        Self::write_array(dev, base_a, &oa)?;
        Self::write_array(dev, base_b, &ob)?;
        Self::write_array(dev, base_c, &oc)?;

        let mut mismatches = 0u64;
        let mut kernels = 0u32;
        let mut bytes = 3 * ab;
        for _ in 0..self.iterations {
            // Copy: C = A
            let a = self.read_array(dev, base_a)?;
            Self::write_array(dev, base_c, &a)?;
            oc.copy_from_slice(&oa);
            mismatches += self.verify(dev, base_c, &oc)?;
            kernels += 1;
            // Scale: B = s * C
            let c = self.read_array(dev, base_c)?;
            let scaled: Vec<f64> = c.iter().map(|v| self.scalar * v).collect();
            Self::write_array(dev, base_b, &scaled)?;
            for (dst, src) in ob.iter_mut().zip(&oc) {
                *dst = self.scalar * src;
            }
            mismatches += self.verify(dev, base_b, &ob)?;
            kernels += 1;
            // Add: C = A + B
            let a = self.read_array(dev, base_a)?;
            let b = self.read_array(dev, base_b)?;
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            Self::write_array(dev, base_c, &sum)?;
            for ((dst, x), y) in oc.iter_mut().zip(&oa).zip(&ob) {
                *dst = x + y;
            }
            mismatches += self.verify(dev, base_c, &oc)?;
            kernels += 1;
            // Triad: A = B + s * C
            let b = self.read_array(dev, base_b)?;
            let c = self.read_array(dev, base_c)?;
            let triad: Vec<f64> = b.iter().zip(&c).map(|(x, y)| x + self.scalar * y).collect();
            Self::write_array(dev, base_a, &triad)?;
            for ((dst, x), y) in oa.iter_mut().zip(&ob).zip(&oc) {
                *dst = x + self.scalar * y;
            }
            mismatches += self.verify(dev, base_a, &oa)?;
            kernels += 1;
            bytes += 10 * ab;
        }
        Ok(StreamReport {
            kernels_run: kernels,
            mismatches,
            bytes_moved: bytes,
        })
    }

    fn verify(
        &self,
        dev: &mut impl BlockDevice,
        base: u64,
        oracle: &[f64],
    ) -> Result<u64, CoreError> {
        let got = self.read_array(dev, base)?;
        Ok(got
            .iter()
            .zip(oracle)
            .filter(|(g, o)| g.to_bits() != o.to_bits())
            .count() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::{NvdimmCConfig, System};

    #[test]
    fn stream_validates_clean_on_nvdimmc() {
        // The §VII-A claim: with the detector always on and the FPGA
        // touching the DRAM every window, no inconsistency appears.
        let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
        let report = StreamValidator::small().run(&mut sys).unwrap();
        assert_eq!(report.mismatches, 0, "tRFC serialisation corrupted data");
        assert_eq!(report.kernels_run, 20);
    }

    #[test]
    fn stream_exercises_eviction_traffic() {
        // Arrays larger than the cache force fills/evictions mid-kernel.
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = 8; // 32 KB cache vs 3 × 32 KB arrays
        let mut sys = System::new(cfg).unwrap();
        let v = StreamValidator {
            elements: 4096,
            iterations: 2,
            scalar: 2.5,
        };
        let report = v.run(&mut sys).unwrap();
        assert_eq!(report.mismatches, 0);
        assert!(
            sys.stats().writebacks > 0,
            "undersized cache must trigger writebacks"
        );
    }
}
