//! The SAP in-house mixed-load IMDB benchmark (paper §VI, §VII-B5).
//!
//! "Measures the number of concurrent users that can work simultaneously
//! ... also useful for validating data integrity and consistency during
//! database transactions." We model each user as a closed-loop client
//! running read-modify-write transactions over its own record set, with a
//! CRC on every record; the run validates every record at commit and at
//! the end. The paper's result — "five hundred users ... without any data
//! corruption" — maps to `validation_errors == 0` at the target user
//! count.

use nvdimmc_core::{BlockDevice, CoreError};
use nvdimmc_nand::ecc::crc32;
use nvdimmc_sim::{DeterministicRng, SimDuration};
use serde::{Deserialize, Serialize};

/// Record size (one cacheline).
const RECORD_BYTES: u64 = 64;

/// Mixed-load configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedLoad {
    /// Concurrent users (the paper validates 500).
    pub users: u32,
    /// Records per user.
    pub records_per_user: u32,
    /// Transactions per user.
    pub transactions_per_user: u32,
    /// Seed.
    pub seed: u64,
}

impl MixedLoad {
    /// A small smoke configuration.
    pub fn small() -> Self {
        MixedLoad {
            users: 50,
            records_per_user: 8,
            transactions_per_user: 20,
            seed: 42,
        }
    }

    /// The paper's headline user count (500), scaled-down records.
    pub fn paper_users() -> Self {
        MixedLoad {
            users: 500,
            records_per_user: 4,
            transactions_per_user: 10,
            seed: 42,
        }
    }
}

/// Results of a mixed-load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixedLoadReport {
    /// Users simulated.
    pub users: u32,
    /// Transactions committed.
    pub transactions: u64,
    /// CRC/consistency failures observed (must be 0).
    pub validation_errors: u64,
    /// Total elapsed simulated time.
    pub elapsed: SimDuration,
}

fn record_offset(user: u32, record: u32, records_per_user: u32) -> u64 {
    (u64::from(user) * u64::from(records_per_user) + u64::from(record)) * RECORD_BYTES
}

fn encode_record(value: u64, serial: u64) -> [u8; RECORD_BYTES as usize] {
    let mut rec = [0u8; RECORD_BYTES as usize];
    rec[..8].copy_from_slice(&value.to_le_bytes());
    rec[8..16].copy_from_slice(&serial.to_le_bytes());
    let crc = crc32(&rec[..60]);
    rec[60..].copy_from_slice(&crc.to_le_bytes());
    rec
}

fn validate_record(rec: &[u8]) -> Option<(u64, u64)> {
    if rec.len() < RECORD_BYTES as usize {
        return None;
    }
    let mut crc_b = [0u8; 4];
    crc_b.copy_from_slice(&rec[60..64]);
    if crc32(&rec[..60]) != u32::from_le_bytes(crc_b) {
        return None;
    }
    let mut value_b = [0u8; 8];
    let mut serial_b = [0u8; 8];
    value_b.copy_from_slice(&rec[..8]);
    serial_b.copy_from_slice(&rec[8..16]);
    Some((u64::from_le_bytes(value_b), u64::from_le_bytes(serial_b)))
}

impl MixedLoad {
    /// Runs the benchmark on `dev`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run(&self, dev: &mut impl BlockDevice) -> Result<MixedLoadReport, CoreError> {
        assert!(
            self.users > 0 && self.records_per_user > 0,
            "empty workload"
        );
        let mut rng = DeterministicRng::new(self.seed);
        let t0 = dev.now();
        // Initialise all records.
        for user in 0..self.users {
            for r in 0..self.records_per_user {
                let rec = encode_record(u64::from(user) * 1000, 0);
                dev.write_at(record_offset(user, r, self.records_per_user), &rec)?;
            }
        }
        let mut errors = 0u64;
        let mut committed = 0u64;
        // Expected state oracle.
        let mut expect: Vec<(u64, u64)> = (0..self.users)
            .flat_map(|u| (0..self.records_per_user).map(move |_| (u64::from(u) * 1000, 0u64)))
            .collect();
        // Interleave users round-robin: each "tick" runs one transaction
        // of one user, modelling concurrent clients on one timeline.
        let total_tx = u64::from(self.users) * u64::from(self.transactions_per_user);
        let mut buf = [0u8; RECORD_BYTES as usize];
        for tx in 0..total_tx {
            let user = (tx % u64::from(self.users)) as u32;
            let r = rng.gen_range(0..u64::from(self.records_per_user)) as u32;
            let off = record_offset(user, r, self.records_per_user);
            dev.read_at(off, &mut buf)?;
            let idx = (u64::from(user) * u64::from(self.records_per_user) + u64::from(r)) as usize;
            match validate_record(&buf) {
                Some((value, serial)) => {
                    if (value, serial) != expect[idx] {
                        errors += 1;
                    }
                    let delta = rng.gen_range(1..100);
                    let new = (value.wrapping_add(delta), serial + 1);
                    dev.write_at(off, &encode_record(new.0, new.1))?;
                    expect[idx] = new;
                    committed += 1;
                }
                None => errors += 1,
            }
            // Think time between transactions.
            dev.advance(SimDuration::from_us(2.0));
        }
        // Final full validation sweep.
        for user in 0..self.users {
            for r in 0..self.records_per_user {
                let off = record_offset(user, r, self.records_per_user);
                dev.read_at(off, &mut buf)?;
                let idx =
                    (u64::from(user) * u64::from(self.records_per_user) + u64::from(r)) as usize;
                match validate_record(&buf) {
                    Some(state) if state == expect[idx] => {}
                    _ => errors += 1,
                }
            }
        }
        Ok(MixedLoadReport {
            users: self.users,
            transactions: committed,
            validation_errors: errors,
            elapsed: dev.now().since(t0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::{NvdimmCConfig, System};

    #[test]
    fn small_mixed_load_validates_clean() {
        let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
        let report = MixedLoad::small().run(&mut sys).unwrap();
        assert_eq!(report.validation_errors, 0);
        assert_eq!(report.transactions, 50 * 20);
    }

    #[test]
    fn mixed_load_survives_cache_pressure() {
        // Force evictions mid-run: tiny cache, many users.
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = 4;
        let mut sys = System::new(cfg).unwrap();
        let job = MixedLoad {
            users: 400,
            records_per_user: 4,
            transactions_per_user: 2,
            seed: 9,
        };
        let report = job.run(&mut sys).unwrap();
        assert_eq!(report.validation_errors, 0, "corruption under eviction");
        assert!(sys.stats().writebacks > 0, "pressure reached the NAND");
    }

    #[test]
    fn record_codec_roundtrip_and_detection() {
        let rec = encode_record(1234, 7);
        assert_eq!(validate_record(&rec), Some((1234, 7)));
        let mut bad = rec;
        bad[3] ^= 0x40;
        assert_eq!(validate_record(&bad), None, "CRC must catch corruption");
    }
}
