//! Genuinely concurrent fio driving: one worker per simulated thread,
//! requests fanned out over the front-end scheduler, shards served from
//! scoped OS threads.
//!
//! This replaces the old analytic closed-loop contention model with a
//! *measured* multi-thread result (the paper's Figure 9 methodology):
//! every simulated thread runs a closed loop — generate an op, pay its
//! private software cost, queue the device phase, overlap its CPU copy
//! with the device-serial transfer, repeat. Device phases land in the
//! [`RequestScheduler`]'s bounded per-shard queues and each shard's batch
//! is served on its own `std::thread::scope` worker; shards share no
//! mutable state, so the result is deterministic regardless of how the
//! OS schedules the workers.
//!
//! Timing model per op (see [`QueuedDevice`]):
//!
//! - the issuing thread pays `pre_cost` (syscall + fs/DAX + driver
//!   software) on its own timeline — fully parallel across threads;
//! - the device phase starts no earlier than `ready + pre_cost` and
//!   holds the shard for the *serialized* part only: at queue depth 1 the
//!   shard is idle at arrival and serves lock-step with the thread's copy
//!   (identical to the blocking call, so one thread reproduces Figure 8);
//!   under contention the copy overlaps other requests' transfers and the
//!   shard holds just the mapping lock plus the tCCD-pipelined bus
//!   occupancy — the serialized demand the Figure 9 knee comes from;
//! - the thread becomes ready again at
//!   `max(device completion, device start + copy_cost)`.

use crate::fio::{FioJob, RwMode};
use nvdimmc_core::{
    ArbitrationPolicy, CoreError, EmulatedPmem, InterleaveMap, MultiChannelSystem, QueuedDevice,
    ReqKind, RequestScheduler, SchedStats, ShardRequest,
};
use nvdimmc_sim::{DeterministicRng, Histogram, RateMeter, SimDuration, SimTime, Zipf};

/// A multi-thread fio run: `threads` closed-loop workers share one job's
/// op budget.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentFio {
    /// The job description (ops = total across all threads).
    pub job: FioJob,
    /// Simulated thread count.
    pub threads: u32,
}

/// Results of a concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// The job that produced this report.
    pub job: FioJob,
    /// Thread count driven.
    pub threads: u32,
    meter: RateMeter,
    /// Read latency distribution (per simulated thread op).
    pub read_latency: Histogram,
    /// Write latency distribution.
    pub write_latency: Histogram,
    /// Scheduler counters summed over shards.
    pub sched: SchedStats,
    /// Per-shard `(enqueued, completed)` — the conservation invariant.
    pub conservation: Vec<(u64, u64)>,
}

impl ConcurrentReport {
    /// Aggregate thousands of I/O operations per second.
    pub fn kiops(&self) -> f64 {
        self.meter.kiops()
    }

    /// Aggregate bandwidth in MB/s (decimal).
    pub fn mb_per_s(&self) -> f64 {
        self.meter.mb_per_s()
    }

    /// Mean per-op latency across threads.
    pub fn mean_latency(&self) -> SimDuration {
        let mut merged = self.read_latency.clone();
        merged.merge(&self.write_latency);
        if merged.count() == 0 {
            return SimDuration::ZERO;
        }
        merged.mean()
    }

    /// Total elapsed simulated time (slowest thread).
    pub fn elapsed(&self) -> SimDuration {
        self.meter.elapsed()
    }
}

/// One simulated thread's closed-loop state.
struct Worker {
    rng: DeterministicRng,
    ready: SimTime,
    remaining: u64,
}

/// One generated op, pre-split into shard segments.
struct PendingOp {
    thread: u32,
    is_read: bool,
    bus_at: SimTime,
    copy: SimDuration,
    segs: Vec<(usize, ShardRequest)>,
}

impl ConcurrentFio {
    /// Runs against a [`MultiChannelSystem`], shards served in parallel.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run_multichannel(
        &self,
        sys: &mut MultiChannelSystem,
    ) -> Result<ConcurrentReport, CoreError> {
        let (shards, map, sched) = sys.parts_mut();
        self.run_queued(shards, map, sched)
    }

    /// Runs against the emulated-pmem baseline (one "shard").
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run_baseline(&self, pmem: &mut EmulatedPmem) -> Result<ConcurrentReport, CoreError> {
        let map = InterleaveMap::page_interleaved(1)?;
        let mut sched = RequestScheduler::new(1, 64, ArbitrationPolicy::Fcfs);
        self.run_queued(std::slice::from_mut(pmem), &map, &mut sched)
    }

    /// The generic engine: fans the job out over `devices` through `map`
    /// and `sched`. Deterministic: request order is fixed by ready times
    /// and thread ids, and each shard's batch is served sequentially on
    /// its own scoped thread.
    ///
    /// # Errors
    ///
    /// Propagates device errors; rejects empty device lists and
    /// mismatched map/scheduler shapes.
    pub fn run_queued<D: QueuedDevice>(
        &self,
        devices: &mut [D],
        map: &InterleaveMap,
        sched: &mut RequestScheduler,
    ) -> Result<ConcurrentReport, CoreError> {
        let job = self.job;
        assert!(self.threads >= 1, "at least one thread");
        assert!(job.block_size > 0, "block size must be positive");
        assert!(job.span >= job.block_size, "span must hold one block");
        if devices.is_empty()
            || devices.len() != map.channels() as usize
            || sched.shards() != devices.len()
        {
            return Err(CoreError::Config(
                "concurrent fio: devices, map and scheduler must agree on shard count".into(),
            ));
        }
        let blocks = job.span / job.block_size;
        let zipf = job.zipf_theta.map(|theta| Zipf::new(blocks.max(1), theta));
        // Non-empty is checked above; an empty iterator would mean the
        // guard is gone, and time zero is the only sane fallback.
        let start = devices
            .iter()
            .map(QueuedDevice::clock)
            .max()
            .unwrap_or_default();
        let mut root = DeterministicRng::new(job.seed);
        let per_thread = (job.ops / u64::from(self.threads)).max(1);
        let mut workers: Vec<Worker> = (0..self.threads)
            .map(|t| Worker {
                rng: root.fork(u64::from(t)),
                ready: start,
                remaining: per_thread,
            })
            .collect();
        let mut seq_tick = 0u64; // sequential-mode cursor shared by threads
        let mut meter = RateMeter::new();
        let mut read_lat = Histogram::new();
        let mut write_lat = Histogram::new();
        let mut buf = vec![0u8; job.block_size as usize];

        while workers.iter().any(|w| w.remaining > 0) {
            // Generate one op per live thread — each thread is a closed
            // loop at queue depth 1.
            let mut round: Vec<PendingOp> = Vec::new();
            for (t, w) in workers.iter_mut().enumerate() {
                if w.remaining == 0 {
                    continue;
                }
                let block = match job.mode {
                    RwMode::SeqRead | RwMode::SeqWrite => {
                        let b = seq_tick % blocks;
                        seq_tick += 1;
                        b
                    }
                    _ => match &zipf {
                        Some(z) => z.sample(&mut w.rng),
                        None => w.rng.gen_range(0..blocks),
                    },
                };
                let off = job.offset + block * job.block_size;
                let is_read = match job.mode {
                    RwMode::RandRead | RwMode::SeqRead => true,
                    RwMode::RandWrite | RwMode::SeqWrite => false,
                    RwMode::RandRw { read_fraction } => w.rng.gen_bool(read_fraction),
                };
                if !is_read {
                    w.rng.fill_bytes(&mut buf);
                }
                let dev0 = &devices[0];
                let bus_at = w.ready + dev0.pre_cost(job.block_size, !is_read);
                let copy = dev0.copy_cost(job.block_size);
                let segs = map
                    .split_range(off, job.block_size)
                    .into_iter()
                    .map(|seg| {
                        (
                            seg.shard as usize,
                            ShardRequest {
                                seq: 0,
                                thread: t as u32,
                                kind: if is_read {
                                    ReqKind::Read
                                } else {
                                    ReqKind::Write
                                },
                                local_offset: seg.local_offset,
                                len: seg.len,
                                not_before: bus_at,
                                data: if is_read {
                                    Vec::new()
                                } else {
                                    buf[seg.pos..seg.pos + seg.len as usize].to_vec()
                                },
                            },
                        )
                    })
                    .collect();
                round.push(PendingOp {
                    thread: t as u32,
                    is_read,
                    bus_at,
                    copy,
                    segs,
                });
            }
            // Arrival order at the queues = ready order (stable: ties
            // keep thread-id order).
            round.sort_by_key(|op| op.bus_at);
            // Enqueue; a bounced request (bounded queue) is carried in an
            // overflow list and appended to the shard's batch — the
            // closed loop cannot drop work, it just records backpressure.
            let mut overflow: Vec<Vec<ShardRequest>> = vec![Vec::new(); devices.len()];
            for op in &round {
                for (shard, req) in &op.segs {
                    if let Err(r) = sched.enqueue(*shard, req.clone()) {
                        overflow[*shard].push(r);
                    }
                }
            }
            // Drain each queue under the arbitration policy into a batch;
            // bounced requests ride at the end (served, but never counted
            // as enqueued — `queued_counts` keeps conservation honest).
            let mut batches: Vec<Vec<ShardRequest>> = Vec::with_capacity(devices.len());
            let mut queued_counts: Vec<usize> = Vec::with_capacity(devices.len());
            for (shard, extra) in overflow.into_iter().enumerate() {
                let mut batch = Vec::new();
                while let Some(r) = sched.pop(shard) {
                    batch.push(r);
                }
                queued_counts.push(batch.len());
                batch.extend(extra);
                batches.push(batch);
            }
            // Serve every shard's batch concurrently — one scoped worker
            // per shard; shards share no state, so this is deterministic.
            let results: Vec<Result<Vec<(u32, SimTime)>, CoreError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = devices
                        .iter_mut()
                        .zip(batches.iter())
                        .map(|(dev, batch)| {
                            scope.spawn(move || {
                                let mut done: Vec<(u32, SimTime)> = Vec::new();
                                let mut scratch = Vec::new();
                                for r in batch {
                                    let end = match r.kind {
                                        ReqKind::Read => {
                                            scratch.resize(r.len as usize, 0);
                                            dev.serve_read(
                                                r.not_before,
                                                r.local_offset,
                                                &mut scratch,
                                            )?
                                        }
                                        ReqKind::Write => {
                                            dev.serve_write(r.not_before, r.local_offset, &r.data)?
                                        }
                                    };
                                    done.push((r.thread, end));
                                }
                                Ok(done)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(r) => r,
                            Err(_) => Err(CoreError::Config("shard worker panicked".into())),
                        })
                        .collect()
                });
            // Account completions and fold per-thread op results.
            let mut op_done: Vec<SimTime> = vec![SimTime::ZERO; workers.len()];
            for (shard, res) in results.into_iter().enumerate() {
                let done = res?;
                for (i, (thread, end)) in done.into_iter().enumerate() {
                    if i < queued_counts[shard] {
                        sched.complete(shard);
                    }
                    let t = thread as usize;
                    op_done[t] = op_done[t].max(end);
                }
            }
            for op in &round {
                let t = op.thread as usize;
                let w = &mut workers[t];
                let finished = op_done[t].max(op.bus_at + op.copy);
                let lat = finished.since(w.ready);
                if op.is_read {
                    read_lat.record(lat);
                } else {
                    write_lat.record(lat);
                }
                meter.record_op(job.block_size);
                w.ready = finished;
                w.remaining -= 1;
            }
        }
        let end = workers.iter().map(|w| w.ready).max().unwrap_or(start);
        meter.finish(end.since(start));
        Ok(ConcurrentReport {
            job,
            threads: self.threads,
            meter,
            read_latency: read_lat,
            write_latency: write_lat,
            sched: sched.total_stats(),
            conservation: sched.conservation(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::{MultiChannelConfig, NvdimmCConfig, PerfParams};
    use nvdimmc_ddr::{SpeedBin, TimingParams};

    fn pmem() -> EmulatedPmem {
        EmulatedPmem::new(
            64 << 20,
            TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
            PerfParams::poc(),
        )
        .unwrap()
    }

    fn cached_1ch(span: u64) -> MultiChannelSystem {
        let mut sys =
            MultiChannelSystem::new(MultiChannelConfig::single(NvdimmCConfig::small_for_tests()))
                .unwrap();
        for page in 0..span / 4096 {
            sys.prefault(page).unwrap();
        }
        sys
    }

    #[test]
    fn one_thread_matches_sequential_fio() {
        // The concurrent engine at 1 thread must reproduce the blocking
        // harness: the idle-arrival serve path is the blocking path.
        let job = FioJob::rand_read_4k(32 << 20, 1_500);
        let mut a = pmem();
        let seq = job.run(&mut a).unwrap();
        let mut b = pmem();
        let conc = ConcurrentFio { job, threads: 1 }
            .run_baseline(&mut b)
            .unwrap();
        let (s, c) = (seq.kiops(), conc.kiops());
        assert!(
            (c - s).abs() / s < 0.05,
            "1-thread concurrent {c:.0} vs blocking {s:.0} KIOPS"
        );
    }

    #[test]
    fn baseline_scaling_matches_paper_shape() {
        // Paper Fig. 9 left: baseline 646 KIOPS at 1t, ~2123 KIOPS peak.
        let run = |threads: u32, ops: u64| {
            let mut dev = pmem();
            ConcurrentFio {
                job: FioJob::rand_read_4k(32 << 20, ops),
                threads,
            }
            .run_baseline(&mut dev)
            .unwrap()
            .kiops()
        };
        let x1 = run(1, 1_500);
        let x8 = run(8, 4_000);
        let x16 = run(16, 4_000);
        assert!((560.0..740.0).contains(&x1), "x1 = {x1:.0}");
        assert!(x8 > x1 * 2.5, "x8 = {x8:.0}");
        assert!(
            x16 < x8 * 1.35,
            "saturating: x16 = {x16:.0} vs x8 = {x8:.0}"
        );
        assert!((1700.0..2500.0).contains(&x16), "peak = {x16:.0} KIOPS");
    }

    #[test]
    fn cached_scaling_saturates_near_paper_peak() {
        // Paper Fig. 9 middle: NVDC-Cached 448 KIOPS at 1t → ~1060 at 16t.
        let span = 4u64 << 20;
        let x1 = {
            let mut sys = cached_1ch(span);
            ConcurrentFio {
                job: FioJob::rand_read_4k(span, 800),
                threads: 1,
            }
            .run_multichannel(&mut sys)
            .unwrap()
            .kiops()
        };
        let x16 = {
            let mut sys = cached_1ch(span);
            ConcurrentFio {
                job: FioJob::rand_read_4k(span, 3_200),
                threads: 16,
            }
            .run_multichannel(&mut sys)
            .unwrap()
            .kiops()
        };
        assert!((380.0..520.0).contains(&x1), "cached x1 = {x1:.0}");
        assert!((850.0..1250.0).contains(&x16), "cached peak = {x16:.0}");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut dev = pmem();
            ConcurrentFio {
                job: FioJob::rand_write_4k(16 << 20, 2_000),
                threads: 6,
            }
            .run_baseline(&mut dev)
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.kiops(), b.kiops(), "bit-identical across runs");
        assert_eq!(a.mean_latency(), b.mean_latency());
    }

    #[test]
    fn conservation_holds_across_shards() {
        let cfg = MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), 2);
        let mut sys = MultiChannelSystem::new(cfg).unwrap();
        let report = ConcurrentFio {
            job: FioJob::rand_write_4k(24 << 20, 600),
            threads: 4,
        }
        .run_multichannel(&mut sys)
        .unwrap();
        assert_eq!(report.conservation.len(), 2);
        for (i, (enq, comp)) in report.conservation.iter().enumerate() {
            assert_eq!(enq, comp, "shard {i} leaked requests");
            assert!(*enq > 0, "shard {i} idle");
        }
        assert_eq!(report.sched.enqueued, report.sched.completed);
    }
}
