//! Genuinely concurrent fio driving on the scale-out executor: per-shard
//! SPSC rings, adjacent-request coalescing, and a fixed work-stealing
//! worker pool instead of one OS thread per shard.
//!
//! This replaces the old analytic closed-loop contention model with a
//! *measured* multi-thread result (the paper's Figure 9 methodology):
//! every simulated thread runs a closed loop — generate an op, pay its
//! private software cost, queue the device phase, overlap its CPU copy
//! with the device-serial transfer, repeat. Device phases are routed by
//! the [`InterleaveMap`] onto the [`ShardExecutor`]'s bounded per-shard
//! rings and served by `M` pool workers claiming ready shards in
//! discrete-event order — wall-clock cost scales with the worker pool,
//! not the channel count, which is what lets one process drive 256
//! channels. Shards share no mutable state and completions fold in shard
//! order, so the result is deterministic regardless of the worker count
//! or how the OS schedules the pool.
//!
//! The pre-executor round engine survives as
//! [`ConcurrentFio::run_lockstep`]: it serves each shard's batch
//! sequentially through the [`RequestScheduler`] exactly as the
//! thread-per-shard design did, and the differential tests pin the
//! executor to it bit-for-bit (with coalescing disabled — a merged DMA
//! is a modelled optimisation the old engine cannot express).
//!
//! Timing model per op (see [`QueuedDevice`]):
//!
//! - the issuing thread pays `pre_cost` (syscall + fs/DAX + driver
//!   software) on its own timeline — fully parallel across threads;
//! - the device phase starts no earlier than `ready + pre_cost` and
//!   holds the shard for the *serialized* part only: at queue depth 1 the
//!   shard is idle at arrival and serves lock-step with the thread's copy
//!   (identical to the blocking call, so one thread reproduces Figure 8);
//!   under contention the copy overlaps other requests' transfers and the
//!   shard holds just the mapping lock plus the tCCD-pipelined bus
//!   occupancy — the serialized demand the Figure 9 knee comes from;
//! - the thread becomes ready again at
//!   `max(device completion, device start + copy_cost)`.

use crate::fio::{FioJob, RwMode};
use nvdimmc_core::{
    CoreError, EmulatedPmem, ExecStats, ExecutorConfig, InterleaveMap, MultiChannelSystem,
    QueuedDevice, ReqKind, RequestScheduler, SchedStats, ShardExecutor, ShardRequest, TenantId,
};
use nvdimmc_sim::{DeterministicRng, Histogram, RateMeter, SimDuration, SimTime, Zipf};

/// A multi-thread fio run: `threads` closed-loop workers share one job's
/// op budget.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentFio {
    /// The job description (ops = total across all threads).
    pub job: FioJob,
    /// Simulated thread count.
    pub threads: u32,
}

/// Results of a concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// The job that produced this report.
    pub job: FioJob,
    /// Thread count driven.
    pub threads: u32,
    meter: RateMeter,
    /// Read latency distribution (per simulated thread op).
    pub read_latency: Histogram,
    /// Write latency distribution.
    pub write_latency: Histogram,
    /// Scheduler-style counters summed over shards (executor runs map
    /// ring accounting onto the same shape).
    pub sched: SchedStats,
    /// Per-shard `(enqueued, completed)` — the conservation invariant.
    pub conservation: Vec<(u64, u64)>,
    /// Executor counters summed over shards (zero for lockstep runs).
    pub exec: ExecStats,
    /// Per-shard device-busy fraction of the elapsed window (empty for
    /// lockstep runs).
    pub utilisation: Vec<f64>,
    /// Order-independent digest of every read payload served: each
    /// completion hashes `(shard, offset, len, bytes)` with FNV-1a and
    /// the records fold with a wrapping sum, so engine batching cannot
    /// perturb it. Two runs of the same job are host-visibly identical
    /// iff their digests match (reads observe earlier writes, so a
    /// mixed workload covers the write path too).
    pub data_digest: u64,
}

impl ConcurrentReport {
    /// Aggregate thousands of I/O operations per second.
    pub fn kiops(&self) -> f64 {
        self.meter.kiops()
    }

    /// Aggregate bandwidth in MB/s (decimal).
    pub fn mb_per_s(&self) -> f64 {
        self.meter.mb_per_s()
    }

    /// Mean per-op latency across threads.
    pub fn mean_latency(&self) -> SimDuration {
        let mut merged = self.read_latency.clone();
        merged.merge(&self.write_latency);
        if merged.count() == 0 {
            return SimDuration::ZERO;
        }
        merged.mean()
    }

    /// Latency percentile (0–100) over reads and writes merged.
    pub fn latency_percentile(&self, p: f64) -> SimDuration {
        let mut merged = self.read_latency.clone();
        merged.merge(&self.write_latency);
        merged.percentile(p)
    }

    /// Total elapsed simulated time (slowest thread).
    pub fn elapsed(&self) -> SimDuration {
        self.meter.elapsed()
    }
}

/// One simulated thread's closed-loop state.
struct Worker {
    rng: DeterministicRng,
    ready: SimTime,
    remaining: u64,
}

/// One generated op, pre-split into shard segments.
struct PendingOp {
    thread: u32,
    is_read: bool,
    bus_at: SimTime,
    copy: SimDuration,
    segs: Vec<(usize, ShardRequest)>,
}

/// Round generator shared by both engines: the closed-loop thread state,
/// the op stream, and the per-op fold. Keeping it in one place is what
/// makes the two engines bit-comparable — they differ only in *how* a
/// round's requests reach the devices.
struct RoundDriver {
    job: FioJob,
    workers: Vec<Worker>,
    zipf: Option<Zipf>,
    blocks: u64,
    seq_tick: u64,
    buf: Vec<u8>,
    meter: RateMeter,
    read_lat: Histogram,
    write_lat: Histogram,
    start: SimTime,
}

impl RoundDriver {
    fn new(job: FioJob, threads: u32, start: SimTime) -> Self {
        let blocks = job.span / job.block_size;
        let mut root = DeterministicRng::new(job.seed);
        let per_thread = (job.ops / u64::from(threads)).max(1);
        RoundDriver {
            job,
            workers: (0..threads)
                .map(|t| Worker {
                    rng: root.fork(u64::from(t)),
                    ready: start,
                    remaining: per_thread,
                })
                .collect(),
            zipf: job.zipf_theta.map(|theta| Zipf::new(blocks.max(1), theta)),
            blocks,
            seq_tick: 0,
            buf: vec![0u8; job.block_size as usize],
            meter: RateMeter::new(),
            read_lat: Histogram::new(),
            write_lat: Histogram::new(),
            start,
        }
    }

    fn live(&self) -> bool {
        self.workers.iter().any(|w| w.remaining > 0)
    }

    /// Generates one op per live thread, pre-split into segments, sorted
    /// by device arrival time (stable: ties keep thread-id order) — the
    /// arrival order both engines serve in.
    fn next_round<D: QueuedDevice>(&mut self, dev0: &D, map: &InterleaveMap) -> Vec<PendingOp> {
        let job = self.job;
        let mut round: Vec<PendingOp> = Vec::new();
        for (t, w) in self.workers.iter_mut().enumerate() {
            if w.remaining == 0 {
                continue;
            }
            let block = match job.mode {
                RwMode::SeqRead | RwMode::SeqWrite => {
                    let b = self.seq_tick % self.blocks;
                    self.seq_tick += 1;
                    b
                }
                _ => match &self.zipf {
                    Some(z) => z.sample(&mut w.rng),
                    None => w.rng.gen_range(0..self.blocks),
                },
            };
            let off = job.offset + block * job.block_size;
            let is_read = match job.mode {
                RwMode::RandRead | RwMode::SeqRead => true,
                RwMode::RandWrite | RwMode::SeqWrite => false,
                RwMode::RandRw { read_fraction } => w.rng.gen_bool(read_fraction),
            };
            if !is_read {
                w.rng.fill_bytes(&mut self.buf);
            }
            let bus_at = w.ready + dev0.pre_cost(job.block_size, !is_read);
            let copy = dev0.copy_cost(job.block_size);
            let buf = &self.buf;
            let segs = map
                .split_range(off, job.block_size)
                .into_iter()
                .map(|seg| {
                    (
                        seg.shard as usize,
                        ShardRequest {
                            seq: 0,
                            tenant: TenantId::HOST,
                            thread: t as u32,
                            kind: if is_read {
                                ReqKind::Read
                            } else {
                                ReqKind::Write
                            },
                            local_offset: seg.local_offset,
                            len: seg.len,
                            not_before: bus_at,
                            data: if is_read {
                                Vec::new()
                            } else {
                                buf[seg.pos..seg.pos + seg.len as usize].to_vec()
                            },
                        },
                    )
                })
                .collect();
            round.push(PendingOp {
                thread: t as u32,
                is_read,
                bus_at,
                copy,
                segs,
            });
        }
        round.sort_by_key(|op| op.bus_at);
        round
    }

    /// Folds one round's per-thread completion times back into the closed
    /// loop: thread ready = `max(device completion, bus_at + copy)`.
    fn fold_round(&mut self, round: &[PendingOp], op_done: &[SimTime]) {
        for op in round {
            let t = op.thread as usize;
            let w = &mut self.workers[t];
            let finished = op_done[t].max(op.bus_at + op.copy);
            let lat = finished.since(w.ready);
            if op.is_read {
                self.read_lat.record(lat);
            } else {
                self.write_lat.record(lat);
            }
            self.meter.record_op(self.job.block_size);
            w.ready = finished;
            w.remaining -= 1;
        }
    }

    fn finish(mut self, threads: u32) -> (ConcurrentReport, SimDuration) {
        let end = self
            .workers
            .iter()
            .map(|w| w.ready)
            .max()
            .unwrap_or(self.start);
        let elapsed = end.since(self.start);
        self.meter.finish(elapsed);
        (
            ConcurrentReport {
                job: self.job,
                threads,
                meter: self.meter,
                read_latency: self.read_lat,
                write_latency: self.write_lat,
                sched: SchedStats::default(),
                conservation: Vec::new(),
                exec: ExecStats::default(),
                utilisation: Vec::new(),
                data_digest: 0,
            },
            elapsed,
        )
    }
}

/// FNV-1a over one read completion's identity and payload.
fn digest_record(shard: u32, offset: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in shard
        .to_le_bytes()
        .into_iter()
        .chain(offset.to_le_bytes())
        .chain((data.len() as u64).to_le_bytes())
        .chain(data.iter().copied())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn check_shapes<D: QueuedDevice>(
    threads: u32,
    job: FioJob,
    devices: &[D],
    map: &InterleaveMap,
    sched_shards: usize,
) -> Result<(), CoreError> {
    assert!(threads >= 1, "at least one thread");
    assert!(job.block_size > 0, "block size must be positive");
    assert!(job.span >= job.block_size, "span must hold one block");
    if devices.is_empty()
        || devices.len() != map.channels() as usize
        || sched_shards != devices.len()
    {
        return Err(CoreError::Config(
            "concurrent fio: devices, map and executor must agree on shard count".into(),
        ));
    }
    Ok(())
}

impl ConcurrentFio {
    /// Sizes an executor for this run: rings deep enough that a full
    /// round (one op per thread, every segment on one shard in the worst
    /// case) fits without bouncing, and one pool worker per available
    /// core (the worker count never changes results, only wall clock).
    pub fn executor_config(&self) -> ExecutorConfig {
        let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        ExecutorConfig::default()
            .with_workers(workers)
            .with_ring_depth((self.threads as usize * 4).max(64))
    }

    /// Runs against a [`MultiChannelSystem`] on the scale-out executor.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run_multichannel(
        &self,
        sys: &mut MultiChannelSystem,
    ) -> Result<ConcurrentReport, CoreError> {
        let cfg = self.executor_config();
        let (shards, map, _) = sys.parts_mut();
        self.run_executor(shards, map, cfg)
    }

    /// Runs against the emulated-pmem baseline (one "shard") on the
    /// executor.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run_baseline(&self, pmem: &mut EmulatedPmem) -> Result<ConcurrentReport, CoreError> {
        let map = InterleaveMap::page_interleaved(1)?;
        let cfg = self.executor_config();
        self.run_executor(std::slice::from_mut(pmem), &map, cfg)
    }

    /// The scale-out engine: routes every round through a
    /// [`ShardExecutor`] — bounded SPSC rings, coalescing, and a fixed
    /// worker pool claiming ready shards in discrete-event order.
    /// Deterministic for any worker count; a bounced round (full ring)
    /// drains in place and retries, so backpressure never drops work.
    ///
    /// # Errors
    ///
    /// Propagates device errors; rejects empty device lists and
    /// mismatched map shapes.
    pub fn run_executor<D: QueuedDevice>(
        &self,
        devices: &mut [D],
        map: &InterleaveMap,
        cfg: ExecutorConfig,
    ) -> Result<ConcurrentReport, CoreError> {
        check_shapes(self.threads, self.job, devices, map, devices.len())?;
        let mut exec = ShardExecutor::new(devices.len(), cfg);
        // Non-empty is checked above; an empty iterator would mean the
        // guard is gone, and time zero is the only sane fallback.
        let start = devices
            .iter()
            .map(QueuedDevice::clock)
            .max()
            .unwrap_or_default();
        let mut driver = RoundDriver::new(self.job, self.threads, start);
        let mut op_done: Vec<SimTime> = vec![SimTime::ZERO; driver.workers.len()];
        let mut digest = 0u64;
        while driver.live() {
            let round = driver.next_round(&devices[0], map);
            op_done.iter_mut().for_each(|t| *t = SimTime::ZERO);
            for op in &round {
                for (shard, req) in &op.segs {
                    let mut req = req.clone();
                    loop {
                        match exec.submit_request(*shard, req) {
                            Ok(_) => break,
                            Err(bounced) => {
                                // Ring full: serve what's queued, retry.
                                req = bounced;
                                drain_completions(&mut exec, devices, &mut op_done, &mut digest)?;
                            }
                        }
                    }
                }
            }
            drain_completions(&mut exec, devices, &mut op_done, &mut digest)?;
            driver.fold_round(&round, &op_done);
        }
        let (mut report, elapsed) = driver.finish(self.threads);
        report.data_digest = digest;
        report.conservation = exec.conservation();
        report.utilisation = (0..exec.shards())
            .map(|s| {
                if elapsed == SimDuration::ZERO {
                    0.0
                } else {
                    exec.stats(s).busy / elapsed
                }
            })
            .collect();
        report.exec = exec.total_stats();
        report.sched = SchedStats {
            enqueued: report.exec.accepted,
            completed: report.exec.served,
            rejected_full: report.exec.rejected_ring_full,
            ..SchedStats::default()
        };
        Ok(report)
    }

    /// The pre-executor reference engine: fans the job out over `devices`
    /// through `map` and `sched`, serving each shard's batch sequentially
    /// exactly as the retired thread-per-shard design did. Kept as the
    /// lockstep oracle for the executor's bit-identity tests; new callers
    /// should use [`Self::run_executor`].
    ///
    /// # Errors
    ///
    /// Propagates device errors; rejects empty device lists and
    /// mismatched map/scheduler shapes.
    pub fn run_lockstep<D: QueuedDevice>(
        &self,
        devices: &mut [D],
        map: &InterleaveMap,
        sched: &mut RequestScheduler,
    ) -> Result<ConcurrentReport, CoreError> {
        check_shapes(self.threads, self.job, devices, map, sched.shards())?;
        let start = devices
            .iter()
            .map(QueuedDevice::clock)
            .max()
            .unwrap_or_default();
        let mut driver = RoundDriver::new(self.job, self.threads, start);
        let mut op_done: Vec<SimTime> = vec![SimTime::ZERO; driver.workers.len()];
        let mut digest = 0u64;
        while driver.live() {
            let round = driver.next_round(&devices[0], map);
            // Enqueue; a bounced request (bounded queue) is carried in an
            // overflow list and appended to the shard's batch — the
            // closed loop cannot drop work, it just records backpressure.
            let mut overflow: Vec<Vec<ShardRequest>> = vec![Vec::new(); devices.len()];
            for op in &round {
                for (shard, req) in &op.segs {
                    if let Err(r) = sched.enqueue(*shard, req.clone()) {
                        overflow[*shard].push(r);
                    }
                }
            }
            // Drain each queue under the arbitration policy into a batch;
            // bounced requests ride at the end (served, but never counted
            // as enqueued — `queued_counts` keeps conservation honest).
            op_done.iter_mut().for_each(|t| *t = SimTime::ZERO);
            let mut scratch = Vec::new();
            for (shard, extra) in overflow.into_iter().enumerate() {
                let mut batch = Vec::new();
                while let Some(r) = sched.pop(shard) {
                    batch.push(r);
                }
                let queued = batch.len();
                batch.extend(extra);
                let dev = &mut devices[shard];
                for (i, r) in batch.iter().enumerate() {
                    let end = match r.kind {
                        ReqKind::Read => {
                            scratch.resize(r.len as usize, 0);
                            let end = dev.serve_read(r.not_before, r.local_offset, &mut scratch)?;
                            digest = digest.wrapping_add(digest_record(
                                shard as u32,
                                r.local_offset,
                                &scratch,
                            ));
                            end
                        }
                        ReqKind::Write => dev.serve_write(r.not_before, r.local_offset, &r.data)?,
                    };
                    if i < queued {
                        sched.complete(shard);
                    }
                    let t = r.thread as usize;
                    op_done[t] = op_done[t].max(end);
                }
            }
            driver.fold_round(&round, &op_done);
        }
        let (mut report, _) = driver.finish(self.threads);
        report.data_digest = digest;
        report.sched = sched.total_stats();
        report.conservation = sched.conservation();
        Ok(report)
    }
}

/// Serves everything queued on the executor, folding completions into
/// the per-thread end times; the first failure (deterministic: lowest
/// shard, FIFO) propagates exactly like the lockstep engine's `?`.
fn drain_completions<D: QueuedDevice>(
    exec: &mut ShardExecutor,
    devices: &mut [D],
    op_done: &mut [SimTime],
    digest: &mut u64,
) -> Result<(), CoreError> {
    let mut first_err = None;
    for c in exec.dispatch(devices) {
        if let Some(e) = c.error {
            first_err.get_or_insert(e);
            continue;
        }
        if c.kind == ReqKind::Read {
            *digest = digest.wrapping_add(digest_record(c.shard, c.local_offset, &c.data));
        }
        let t = c.thread as usize;
        op_done[t] = op_done[t].max(c.end);
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::{MultiChannelConfig, NvdimmCConfig, PerfParams};
    use nvdimmc_ddr::{SpeedBin, TimingParams};

    fn pmem() -> EmulatedPmem {
        EmulatedPmem::new(
            64 << 20,
            TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
            PerfParams::poc(),
        )
        .unwrap()
    }

    fn cached_1ch(span: u64) -> MultiChannelSystem {
        let mut sys =
            MultiChannelSystem::new(MultiChannelConfig::single(NvdimmCConfig::small_for_tests()))
                .unwrap();
        for page in 0..span / 4096 {
            sys.prefault(page).unwrap();
        }
        sys
    }

    #[test]
    fn one_thread_matches_sequential_fio() {
        // The executor at 1 thread must reproduce the blocking harness:
        // singleton batches take the idle-arrival serve path, which IS
        // the blocking path.
        let job = FioJob::rand_read_4k(32 << 20, 1_500);
        let mut a = pmem();
        let seq = job.run(&mut a).unwrap();
        let mut b = pmem();
        let conc = ConcurrentFio { job, threads: 1 }
            .run_baseline(&mut b)
            .unwrap();
        let (s, c) = (seq.kiops(), conc.kiops());
        assert!(
            (c - s).abs() / s < 0.05,
            "1-thread concurrent {c:.0} vs blocking {s:.0} KIOPS"
        );
    }

    #[test]
    fn executor_matches_lockstep_reference_bit_for_bit() {
        // With coalescing disabled the executor serves exactly the
        // lockstep engine's per-shard FCFS sequences, so every latency,
        // clock and counter must agree bit-for-bit — at one channel this
        // pins the executor to the pre-refactor monolith path.
        for channels in [1u32, 4] {
            let job = FioJob::rand_read_4k(16 << 20, 600);
            let fio = ConcurrentFio { job, threads: 6 };
            let mk = || {
                MultiChannelSystem::new(MultiChannelConfig::new(
                    NvdimmCConfig::small_for_tests(),
                    channels,
                ))
                .unwrap()
            };
            let lock = {
                let mut sys = mk();
                let (shards, map, sched) = sys.parts_mut();
                fio.run_lockstep(shards, map, sched).unwrap()
            };
            let exec = {
                let mut sys = mk();
                let (shards, map, _) = sys.parts_mut();
                let cfg = fio.executor_config().with_coalesce_bytes(1);
                fio.run_executor(shards, map, cfg).unwrap()
            };
            assert_eq!(
                lock.kiops(),
                exec.kiops(),
                "{channels}ch kiops diverged from the reference engine"
            );
            assert_eq!(lock.mean_latency(), exec.mean_latency());
            assert_eq!(lock.latency_percentile(99.0), exec.latency_percentile(99.0));
        }
    }

    #[test]
    fn worker_count_never_changes_results() {
        let job = FioJob::rand_write_4k(24 << 20, 800);
        let fio = ConcurrentFio { job, threads: 8 };
        let run = |workers: usize| {
            let mut sys = MultiChannelSystem::new(MultiChannelConfig::new(
                NvdimmCConfig::small_for_tests(),
                4,
            ))
            .unwrap();
            let (shards, map, _) = sys.parts_mut();
            let cfg = fio.executor_config().with_workers(workers);
            fio.run_executor(shards, map, cfg).unwrap()
        };
        let (a, b, c) = (run(1), run(3), run(16));
        assert_eq!(a.kiops(), b.kiops(), "1 vs 3 workers");
        assert_eq!(a.kiops(), c.kiops(), "1 vs 16 workers");
        assert_eq!(a.mean_latency(), c.mean_latency());
        assert_eq!(a.utilisation, c.utilisation);
    }

    #[test]
    fn baseline_scaling_matches_paper_shape() {
        // Paper Fig. 9 left: baseline 646 KIOPS at 1t, ~2123 KIOPS peak.
        let run = |threads: u32, ops: u64| {
            let mut dev = pmem();
            ConcurrentFio {
                job: FioJob::rand_read_4k(32 << 20, ops),
                threads,
            }
            .run_baseline(&mut dev)
            .unwrap()
            .kiops()
        };
        let x1 = run(1, 1_500);
        let x8 = run(8, 4_000);
        let x16 = run(16, 4_000);
        assert!((560.0..740.0).contains(&x1), "x1 = {x1:.0}");
        assert!(x8 > x1 * 2.5, "x8 = {x8:.0}");
        assert!(
            x16 < x8 * 1.35,
            "saturating: x16 = {x16:.0} vs x8 = {x8:.0}"
        );
        assert!((1700.0..2500.0).contains(&x16), "peak = {x16:.0} KIOPS");
    }

    #[test]
    fn cached_scaling_saturates_near_paper_peak() {
        // Paper Fig. 9 middle: NVDC-Cached 448 KIOPS at 1t → ~1060 at 16t.
        let span = 4u64 << 20;
        let x1 = {
            let mut sys = cached_1ch(span);
            ConcurrentFio {
                job: FioJob::rand_read_4k(span, 800),
                threads: 1,
            }
            .run_multichannel(&mut sys)
            .unwrap()
            .kiops()
        };
        let x16 = {
            let mut sys = cached_1ch(span);
            ConcurrentFio {
                job: FioJob::rand_read_4k(span, 3_200),
                threads: 16,
            }
            .run_multichannel(&mut sys)
            .unwrap()
            .kiops()
        };
        assert!((380.0..520.0).contains(&x1), "cached x1 = {x1:.0}");
        assert!((850.0..1250.0).contains(&x16), "cached peak = {x16:.0}");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut dev = pmem();
            ConcurrentFio {
                job: FioJob::rand_write_4k(16 << 20, 2_000),
                threads: 6,
            }
            .run_baseline(&mut dev)
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.kiops(), b.kiops(), "bit-identical across runs");
        assert_eq!(a.mean_latency(), b.mean_latency());
    }

    #[test]
    fn conservation_holds_across_shards() {
        let cfg = MultiChannelConfig::new(NvdimmCConfig::small_for_tests(), 2);
        let mut sys = MultiChannelSystem::new(cfg).unwrap();
        let report = ConcurrentFio {
            job: FioJob::rand_write_4k(24 << 20, 600),
            threads: 4,
        }
        .run_multichannel(&mut sys)
        .unwrap();
        assert_eq!(report.conservation.len(), 2);
        for (i, (enq, comp)) in report.conservation.iter().enumerate() {
            assert_eq!(enq, comp, "shard {i} leaked requests");
            assert!(*enq > 0, "shard {i} idle");
        }
        assert_eq!(report.sched.enqueued, report.sched.completed);
    }

    #[test]
    fn sequential_runs_exercise_coalescing() {
        // A sequential stream on one channel produces adjacent requests
        // in every multi-thread round; the executor must merge some of
        // them and still satisfy conservation.
        let mut dev = pmem();
        let report = ConcurrentFio {
            job: FioJob {
                mode: RwMode::SeqRead,
                ..FioJob::rand_read_4k(16 << 20, 1_200)
            },
            threads: 8,
        }
        .run_baseline(&mut dev)
        .unwrap();
        assert!(
            report.exec.coalesced_reqs > 0,
            "sequential stream never coalesced"
        );
        assert!(report.exec.dmas < report.exec.served, "no DMA was merged");
        for (enq, comp) in &report.conservation {
            assert_eq!(enq, comp);
        }
    }
}
