//! A flexible-I/O-tester (fio) clone.
//!
//! The paper measures primitive latency/bandwidth with fio v3.10 using the
//! `libpmem` engine (§VI): fixed block size, random or sequential
//! addressing, one or more threads. This module reproduces the
//! single-thread harness over the [`BlockDevice`] trait; the multi-thread
//! Figure 9 sweeps are driven for real by
//! [`crate::concurrent::ConcurrentFio`], which fans the same job out over
//! scheduler queues from one worker thread per simulated thread.

use nvdimmc_core::{BlockDevice, CoreError};
use nvdimmc_sim::{DeterministicRng, Histogram, RateMeter, SimDuration, Zipf};
use serde::{Deserialize, Serialize};

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RwMode {
    /// Uniform-random reads.
    RandRead,
    /// Uniform-random writes.
    RandWrite,
    /// Mixed random with the given read fraction.
    RandRw {
        /// Fraction of reads in `[0, 1]`.
        read_fraction: f64,
    },
    /// Sequential reads.
    SeqRead,
    /// Sequential writes.
    SeqWrite,
}

/// One fio job description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FioJob {
    /// Access pattern.
    pub mode: RwMode,
    /// Block size per I/O.
    pub block_size: u64,
    /// Region of the device the job touches, starting at `offset`.
    pub span: u64,
    /// Base offset of the region.
    pub offset: u64,
    /// Number of operations to issue.
    pub ops: u64,
    /// RNG seed.
    pub seed: u64,
    /// Optional Zipfian skew over 4 KB pages (None = uniform).
    pub zipf_theta: Option<f64>,
}

impl FioJob {
    /// A 4 KB random-read job over `span` bytes — the paper's workhorse.
    pub fn rand_read_4k(span: u64, ops: u64) -> Self {
        FioJob {
            mode: RwMode::RandRead,
            block_size: 4096,
            span,
            offset: 0,
            ops,
            seed: 42,
            zipf_theta: None,
        }
    }

    /// A 4 KB random-write job.
    pub fn rand_write_4k(span: u64, ops: u64) -> Self {
        FioJob {
            mode: RwMode::RandWrite,
            ..Self::rand_read_4k(span, ops)
        }
    }

    /// Runs the job against `dev`.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run(&self, dev: &mut impl BlockDevice) -> Result<FioReport, CoreError> {
        assert!(self.block_size > 0, "block size must be positive");
        assert!(
            self.span >= self.block_size,
            "span must hold at least one block"
        );
        let mut rng = DeterministicRng::new(self.seed);
        let zipf = self
            .zipf_theta
            .map(|theta| Zipf::new((self.span / self.block_size).max(1), theta));
        let mut meter = RateMeter::new();
        let mut read_lat = Histogram::new();
        let mut write_lat = Histogram::new();
        let mut buf = vec![0u8; self.block_size as usize];
        let t0 = dev.now();
        let blocks = self.span / self.block_size;
        for i in 0..self.ops {
            let block = match self.mode {
                RwMode::SeqRead | RwMode::SeqWrite => i % blocks,
                _ => match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..blocks),
                },
            };
            let off = self.offset + block * self.block_size;
            let is_read = match self.mode {
                RwMode::RandRead | RwMode::SeqRead => true,
                RwMode::RandWrite | RwMode::SeqWrite => false,
                RwMode::RandRw { read_fraction } => rng.gen_bool(read_fraction),
            };
            let lat = if is_read {
                dev.read_at(off, &mut buf)?
            } else {
                rng.fill_bytes(&mut buf);
                dev.write_at(off, &buf)?
            };
            if is_read {
                read_lat.record(lat);
            } else {
                write_lat.record(lat);
            }
            meter.record_op(self.block_size);
        }
        meter.finish(dev.now().since(t0));
        Ok(FioReport {
            job: *self,
            meter,
            read_latency: read_lat,
            write_latency: write_lat,
        })
    }
}

/// Results of one fio job.
#[derive(Debug, Clone)]
pub struct FioReport {
    /// The job that produced this report.
    pub job: FioJob,
    meter: RateMeter,
    /// Read latency distribution.
    pub read_latency: Histogram,
    /// Write latency distribution.
    pub write_latency: Histogram,
}

impl FioReport {
    /// Thousands of I/O operations per second.
    pub fn kiops(&self) -> f64 {
        self.meter.kiops()
    }

    /// Bandwidth in MB/s (decimal, as the paper reports).
    pub fn mb_per_s(&self) -> f64 {
        self.meter.mb_per_s()
    }

    /// Mean per-op latency.
    pub fn mean_latency(&self) -> SimDuration {
        let total = self.read_latency.count() + self.write_latency.count();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let mut merged = self.read_latency.clone();
        merged.merge(&self.write_latency);
        merged.mean()
    }

    /// Total elapsed simulated time.
    pub fn elapsed(&self) -> SimDuration {
        self.meter.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::{EmulatedPmem, NvdimmCConfig, PerfParams, System};
    use nvdimmc_ddr::{SpeedBin, TimingParams};

    fn pmem() -> EmulatedPmem {
        EmulatedPmem::new(
            64 << 20,
            TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
            PerfParams::poc(),
        )
        .unwrap()
    }

    #[test]
    fn baseline_4k_read_matches_paper() {
        // Paper Fig. 8: baseline 646 KIOPS / 2606 MB/s (1 thread).
        let mut dev = pmem();
        let report = FioJob::rand_read_4k(32 << 20, 2_000).run(&mut dev).unwrap();
        let kiops = report.kiops();
        assert!(
            (560.0..740.0).contains(&kiops),
            "baseline 4K randread = {kiops:.0} KIOPS"
        );
    }

    #[test]
    fn baseline_4k_write_matches_paper() {
        // Paper Fig. 8: baseline 576 KIOPS / 2360 MB/s.
        let mut dev = pmem();
        let report = FioJob::rand_write_4k(32 << 20, 2_000)
            .run(&mut dev)
            .unwrap();
        let kiops = report.kiops();
        assert!(
            (500.0..660.0).contains(&kiops),
            "baseline 4K randwrite = {kiops:.0} KIOPS"
        );
    }

    #[test]
    fn nvdc_cached_4k_read_matches_paper() {
        // Paper Fig. 8: NVDC-Cached 448 KIOPS / 1835 MB/s.
        let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
        let span = 4u64 << 20; // fits in the 12 MB cache
        for page in 0..span / 4096 {
            sys.prefault(page).unwrap();
        }
        let report = FioJob::rand_read_4k(span, 1_000).run(&mut sys).unwrap();
        let kiops = report.kiops();
        assert!(
            (380.0..520.0).contains(&kiops),
            "cached 4K randread = {kiops:.0} KIOPS"
        );
    }

    #[test]
    fn mixed_mode_issues_both_kinds() {
        let mut dev = pmem();
        let job = FioJob {
            mode: RwMode::RandRw { read_fraction: 0.5 },
            ..FioJob::rand_read_4k(8 << 20, 400)
        };
        let report = job.run(&mut dev).unwrap();
        assert!(report.read_latency.count() > 100);
        assert!(report.write_latency.count() > 100);
    }

    #[test]
    fn sequential_mode_wraps_span() {
        let mut dev = pmem();
        let job = FioJob {
            mode: RwMode::SeqRead,
            span: 16 * 4096,
            ..FioJob::rand_read_4k(16 * 4096, 64)
        };
        let report = job.run(&mut dev).unwrap();
        assert_eq!(report.read_latency.count(), 64);
    }

    #[test]
    fn zipf_mode_skews_hits() {
        let mut sys = System::new(NvdimmCConfig::small_for_tests()).unwrap();
        let job = FioJob {
            zipf_theta: Some(0.99),
            span: 24 << 20, // exceeds the 12 MB cache
            ..FioJob::rand_read_4k(24 << 20, 4_000)
        };
        job.run(&mut sys).unwrap();
        let hr = sys.cache_stats().hit_rate();
        assert!(hr > 0.5, "hot pages should mostly hit: {hr:.3}");
    }

    #[test]
    fn report_units_consistent() {
        let mut dev = pmem();
        let report = FioJob::rand_read_4k(8 << 20, 500).run(&mut dev).unwrap();
        let expect_mb = report.kiops() * 1e3 * 4096.0 / 1e6;
        assert!((report.mb_per_s() - expect_mb).abs() < 1e-6);
    }
}
