//! The simple file-copy workload (paper §VII-B1, Figure 7).
//!
//! Copies a large file from a rate-capped source (the PM863 SATA SSD of
//! Table I, ~520 MB/s sequential read) onto the device, recording
//! bandwidth over time. While free cache slots last, throughput is
//! SSD-bound (the paper's 518 MB/s); once the cache fills, every 4 KB
//! write needs a writeback+cachefill pair and throughput collapses (the
//! paper's 68 MB/s).

use nvdimmc_core::{BlockDevice, CoreError};
use nvdimmc_sim::{DeterministicRng, SimDuration, TimeSeries};
use serde::{Deserialize, Serialize};

/// File-copy job description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileCopy {
    /// Bytes to copy (paper: 20 GB).
    pub file_bytes: u64,
    /// Copy chunk (one write syscall worth).
    pub chunk_bytes: u64,
    /// Source sequential-read bandwidth in bytes/s (paper: 520 MB/s SSD).
    pub source_bytes_per_s: f64,
    /// Time-series bin width for the throughput plot.
    pub bin: SimDuration,
    /// Seed for the payload bytes.
    pub seed: u64,
}

impl FileCopy {
    /// The paper's configuration scaled by `scale` (1.0 = the full 20 GB
    /// copy; figure runs use a smaller scale with the cache scaled the
    /// same way).
    pub fn paper_scaled(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        FileCopy {
            file_bytes: ((20u64 << 30) as f64 * scale) as u64 / 4096 * 4096,
            chunk_bytes: 64 << 10,
            source_bytes_per_s: 520e6,
            bin: SimDuration::from_secs_f64(1.0 * scale),
            seed: 42,
        }
    }

    /// Runs the copy onto `dev`, verifying the copied bytes afterwards on
    /// a sample of chunks.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run(&self, dev: &mut impl BlockDevice) -> Result<CopyReport, CoreError> {
        assert!(self.chunk_bytes > 0, "chunk must be positive");
        let mut rng = DeterministicRng::new(self.seed);
        let mut series = TimeSeries::new(self.bin);
        let mut chunk = vec![0u8; self.chunk_bytes as usize];
        let t0 = dev.now();
        let mut off = 0u64;
        while off < self.file_bytes {
            let n = self.chunk_bytes.min(self.file_bytes - off) as usize;
            rng.fill_bytes(&mut chunk[..n]);
            // Source read overlaps the device write; the slower side wins.
            let src_time = SimDuration::from_secs_f64(n as f64 / self.source_bytes_per_s);
            let dev_time = dev.write_at(off, &chunk[..n])?;
            if src_time > dev_time {
                dev.advance(src_time - dev_time);
            }
            series.record(dev.now(), n as u64);
            off += n as u64;
        }
        let elapsed = dev.now().since(t0);
        // Spot-verify a sample of chunks (the payload is regenerable from
        // the seed).
        let mut verify_rng = DeterministicRng::new(self.seed);
        let mut expected = vec![0u8; self.chunk_bytes as usize];
        let mut actual = vec![0u8; self.chunk_bytes as usize];
        let total_chunks = self.file_bytes.div_ceil(self.chunk_bytes);
        let mut corrupted = 0u64;
        for ci in 0..total_chunks {
            let coff = ci * self.chunk_bytes;
            let n = self.chunk_bytes.min(self.file_bytes - coff) as usize;
            verify_rng.fill_bytes(&mut expected[..n]);
            // Verify roughly every 16th chunk to bound runtime.
            if ci % 16 == 0 {
                dev.read_at(coff, &mut actual[..n])?;
                if actual[..n] != expected[..n] {
                    corrupted += 1;
                }
            }
        }
        Ok(CopyReport {
            series,
            elapsed,
            bytes: self.file_bytes,
            corrupted_chunks: corrupted,
        })
    }
}

/// Results of a file copy.
#[derive(Debug, Clone)]
pub struct CopyReport {
    /// Throughput over time (MB/s per bin) — the Figure 7 series.
    pub series: TimeSeries,
    /// Total copy time.
    pub elapsed: SimDuration,
    /// Bytes copied.
    pub bytes: u64,
    /// Verified chunks that mismatched (must be zero).
    pub corrupted_chunks: u64,
}

impl CopyReport {
    /// Mean throughput in MB/s.
    pub fn mean_mb_per_s(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Peak bin throughput in MB/s.
    pub fn peak_mb_per_s(&self) -> f64 {
        self.series.bins_mb_per_s().into_iter().fold(0.0, f64::max)
    }

    /// Throughput of the final bin (the sustained, cache-full regime).
    pub fn tail_mb_per_s(&self) -> f64 {
        let bins = self.series.bins_mb_per_s();
        // Skip a possibly short last bin.
        if bins.len() >= 2 {
            bins[bins.len() - 2]
        } else {
            bins.last().copied().unwrap_or(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::{EmulatedPmem, NvdimmCConfig, PerfParams, System};
    use nvdimmc_ddr::{SpeedBin, TimingParams};

    #[test]
    fn pmem_copy_is_source_bound() {
        let mut dev = EmulatedPmem::new(
            64 << 20,
            TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
            PerfParams::poc(),
        )
        .unwrap();
        let job = FileCopy {
            file_bytes: 16 << 20,
            chunk_bytes: 64 << 10,
            source_bytes_per_s: 520e6,
            bin: SimDuration::from_ms(10.0),
            seed: 1,
        };
        let report = job.run(&mut dev).unwrap();
        let mean = report.mean_mb_per_s();
        assert!(
            (430.0..525.0).contains(&mean),
            "pmem copy = {mean:.0} MB/s (SSD-bound ~520)"
        );
        assert_eq!(report.corrupted_chunks, 0);
    }

    #[test]
    fn nvdimmc_copy_collapses_past_cache_boundary() {
        // Scaled Figure 7: cache 4 MB, file 12 MB. Cached phase near SSD
        // speed, sustained tail an order of magnitude lower.
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = (4 << 20) / 4096;
        let mut sys = System::new(cfg).unwrap();
        let job = FileCopy {
            file_bytes: 12 << 20,
            chunk_bytes: 64 << 10,
            source_bytes_per_s: 520e6,
            bin: SimDuration::from_ms(2.0),
            seed: 2,
        };
        let report = job.run(&mut sys).unwrap();
        assert_eq!(report.corrupted_chunks, 0, "copy corrupted data");
        let peak = report.peak_mb_per_s();
        let tail = report.tail_mb_per_s();
        assert!(peak > 300.0, "cached-phase peak = {peak:.0} MB/s");
        assert!(
            tail < peak / 4.0,
            "no collapse: peak {peak:.0} vs tail {tail:.0} MB/s"
        );
    }
}
