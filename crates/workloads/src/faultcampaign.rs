//! Deterministic fault-injection campaigns with end-to-end recovery
//! verification.
//!
//! A campaign drives a [`MultiChannelSystem`] with a seeded mixed
//! read/write load while a [`FaultPlan`] injects uncorrectable NAND
//! reads, lost and corrupted CP acks, refresh-window overruns, DRAM
//! cache-slot corruption and mid-transfer power failures — then proves
//! three things:
//!
//! 1. **No silent corruption.** Every byte read back matches a host-side
//!    oracle; pages whose loss was *surfaced* (typed error) are excluded
//!    explicitly, never silently.
//! 2. **Full accounting.** The merged [`RecoveryStats`] ledger balances:
//!    every injected fault was recovered or surfaced
//!    (`nvdimmc_check::check_recovery` audits the report).
//! 3. **Determinism.** The same seed reproduces the same campaign
//!    bit-exactly — same digest, same clocks, same counters — on any
//!    channel count, because every fault draw comes from forked
//!    [`DeterministicRng`] streams.
//!
//! The working set is sized to overflow each shard's DRAM cache, so
//! writeback/cachefill CP traffic continues for the whole run and armed
//! mailbox/window faults always find a command to bite on.

use nvdimmc_core::{
    BlockDevice, ChannelShard, CoreError, ExecutorConfig, FaultKind, FaultPlan, MultiChannelConfig,
    MultiChannelSystem, NvdimmCConfig, RecoveryParams, RecoveryStats, ShardExecutor, PAGE_BYTES,
};
use nvdimmc_ddr::TraceEntry;
use nvdimmc_nand::ecc::crc32;
use nvdimmc_sim::{DeterministicRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Campaign configuration: load shape plus the fault mix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCampaign {
    /// Channels (= shards) behind the front-end.
    pub channels: u32,
    /// Working-set pages *per channel* (kept larger than the shard cache
    /// so eviction traffic never dries up).
    pub pages_per_channel: u64,
    /// Scheduled operations (page-granular reads/writes).
    pub ops: u64,
    /// Seed for the load generator and the fault plan.
    pub seed: u64,
    /// Fault classes to inject, with per-class counts.
    pub faults: Vec<(FaultKind, u64)>,
    /// Extra operations allowed after the scheduled load to flush every
    /// remaining armed/pending fault before the final verification.
    pub drain_cap: u64,
    /// Overrides the shards' CP-recovery ladder (`None` keeps the
    /// [`RecoveryParams`] defaults). Long ladders — 15 attempts wrap the
    /// 4-bit mailbox phase — are how the stale-ack regression is driven
    /// end to end.
    pub recovery: Option<RecoveryParams>,
}

impl FaultCampaign {
    /// The standard all-recoverable mix: every class whose recovery is
    /// transparent (transient NAND, lost/corrupt acks, window overruns,
    /// clean-slot corruption). Persistent NAND poisoning and power
    /// failures have their own campaigns.
    pub fn recoverable(channels: u32) -> Self {
        FaultCampaign {
            channels,
            pages_per_channel: 24,
            ops: 250 * u64::from(channels.max(1)),
            seed: 0x00C4_15CA_DE01,
            faults: vec![
                (FaultKind::NandTransient, 3),
                (FaultKind::AckDrop, 2),
                (FaultKind::AckCorrupt, 2),
                (FaultKind::WindowOverrun, 3),
                (FaultKind::SlotCorruption, 3),
            ],
            drain_cap: 2000,
            recovery: None,
        }
    }

    /// Replaces the shards' CP-recovery ladder parameters.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryParams) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Adds `count` mid-operation power failures to the mix.
    #[must_use]
    pub fn with_power_fails(mut self, count: u64) -> Self {
        self.faults.push((FaultKind::PowerFail, count));
        self
    }

    /// Replaces the seed (determinism experiments).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn plan(&self) -> FaultPlan {
        // The horizon is a per-shard operation count: uniform pages give
        // each shard roughly ops/channels operations.
        let horizon = (self.ops / u64::from(self.channels.max(1))).max(1);
        let mut p = FaultPlan::new(self.seed).horizon(horizon);
        for &(kind, count) in &self.faults {
            p = p.with(kind, count);
        }
        p
    }

    fn config(&self) -> MultiChannelConfig {
        let mut shard = NvdimmCConfig::small_for_tests();
        // A deliberately tiny cache: the working set must overflow it so
        // CP traffic (writebacks + cachefills) continues all campaign.
        shard.cache_slots = 16;
        if let Some(recovery) = self.recovery {
            shard.recovery = recovery;
        }
        MultiChannelConfig::new(shard, self.channels)
    }

    /// Runs the campaign to completion (load, drain, final verification).
    ///
    /// # Errors
    ///
    /// Propagates device errors that are not part of the recovery model
    /// (anything other than power interruptions, degraded-shard
    /// rejections, CP timeouts and surfaced media/cache corruption).
    ///
    /// # Panics
    ///
    /// Panics if the working set exceeds the exported capacity.
    pub fn run(&self) -> Result<CampaignReport, CoreError> {
        Ok(self.run_traced(false)?.0)
    }

    /// Like [`FaultCampaign::run`], optionally capturing each shard's full
    /// bus trace so `nvdimmc-check`'s timing/race/refresh passes can audit
    /// the campaign afterwards.
    ///
    /// Traces come back as one [`TraceEpoch`] per boot: a power-fail
    /// rebuild restarts the simulated clock (it *is* a reboot), so the
    /// epochs cannot be concatenated into one monotonic trace — each must
    /// be checked standalone (see `check_shards` in `nvdimmc-check` per
    /// epoch). Without power faults there is exactly one epoch.
    ///
    /// # Errors
    ///
    /// See [`FaultCampaign::run`].
    ///
    /// # Panics
    ///
    /// Panics if the working set exceeds the exported capacity.
    #[allow(clippy::too_many_lines)]
    pub fn run_traced(
        &self,
        capture: bool,
    ) -> Result<(CampaignReport, Vec<TraceEpoch>), CoreError> {
        assert!(
            self.channels > 0 && self.pages_per_channel > 0,
            "empty campaign"
        );
        let plan = self.plan();
        let mut sys = MultiChannelSystem::new(self.config())?;
        sys.attach_fault_plan(&plan);
        let mut traces: Vec<TraceEpoch> = Vec::new();
        if capture {
            sys.set_trace_capture(true);
        }
        let pages = self.pages_per_channel * u64::from(self.channels);
        assert!(
            pages * PAGE_BYTES <= sys.capacity_bytes(),
            "working set exceeds exported capacity"
        );
        let mut rng = DeterministicRng::new(self.seed).fork(0xC0FF);
        let mut oracle: Vec<Vec<u8>> = vec![vec![0u8; PAGE_BYTES as usize]; pages as usize];
        let mut poisoned: HashSet<u64> = HashSet::new();
        // Rejected-write ledger: page → CRC of the payload the device
        // refused. The final read-back must never reflect a rejected
        // payload; a later *successful* write to the page supersedes the
        // rejection (the oracle check governs from then on), so the
        // entry is cleared.
        let mut rejected: BTreeMap<u64, u32> = BTreeMap::new();
        let mut report = CampaignReport::new(self.channels, self.seed);
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        let mut data = vec![0u8; PAGE_BYTES as usize];

        // Scheduled load, then drain ops until every fault has fired and
        // been consumed (or the cap trips — check_recovery will warn).
        let mut extra = 0u64;
        let mut executed = 0u64;
        while executed < self.ops || (!sys.faults_quiescent() && extra < self.drain_cap) {
            if executed >= self.ops {
                extra += 1;
            }
            executed += 1;
            report.ops_attempted += 1;
            // Draw before executing so the stream stays aligned across
            // error paths (determinism).
            let page = rng.gen_range(0..pages);
            let write = rng.gen_bool(0.6);
            if write {
                rng.fill_bytes(&mut data);
            }
            if poisoned.contains(&page) {
                continue;
            }
            let off = page * PAGE_BYTES;
            let res = if write {
                sys.write_at(off, &data).map(|_| ())
            } else {
                sys.read_at(off, &mut buf).map(|_| ())
            };
            if write && res.is_err() {
                report.writes_rejected += 1;
                rejected.insert(page, crc32(&data));
            }
            match res {
                Ok(()) => {
                    report.ops_completed += 1;
                    if write {
                        oracle[page as usize].copy_from_slice(&data);
                        rejected.remove(&page);
                    } else if buf != oracle[page as usize] {
                        report.oracle_mismatches += 1;
                    }
                }
                // The op did not apply: power-cycle and rebuild. The
                // FPGA's battery-backed dump persists every dirty slot,
                // so the oracle stays valid.
                Err(CoreError::PowerInterrupted) => {
                    report.power_cycles += 1;
                    report.power_fail_points.push(report.ops_attempted - 1);
                    Self::splice_traces(&mut sys, capture, &mut traces);
                    sys.power_fail(true)?;
                    sys = sys.into_recovered()?;
                    if capture {
                        sys.set_trace_capture(true);
                    }
                }
                Err(CoreError::DegradedShard { .. }) => report.degraded_rejections += 1,
                Err(CoreError::CpTimeout { .. }) => report.cp_timeouts += 1,
                Err(CoreError::MediaFailed { .. }) => {
                    report.media_failures += 1;
                    poisoned.insert(page);
                }
                Err(CoreError::CacheCorruption { .. }) => {
                    report.cache_corruptions += 1;
                    poisoned.insert(page);
                }
                Err(e) => return Err(e),
            }
        }

        // Final verification: every non-poisoned page byte-exact against
        // the oracle. This also forces the scrub over any still-resident
        // corrupted slot, closing the detection ledger.
        //
        // The quiescent case (every armed fault consumed, no shard left
        // degraded — the standard campaign shape) batches the sweep
        // through the scale-out [`ShardExecutor`]: reads are ring-queued
        // per shard, served in discrete-event order, and the payloads are
        // folded back in page order so the digest is unchanged. A
        // drain-cap trip or a still-degraded shard falls back to the
        // blocking per-page loop, whose power-cycle and failover
        // semantics cannot be replayed from a half-served batch. Trace
        // capture is untouched either way: entries stay in each shard's
        // recorder until the epoch is spliced below.
        if sys.faults_quiescent() && sys.degraded_shards().is_empty() {
            let t0 = sys.now();
            let mut exec = ShardExecutor::new(self.channels as usize, ExecutorConfig::default());
            let mut page_data: Vec<Option<Vec<u8>>> = vec![None; pages as usize];
            fn fold_sweep(
                exec: &mut ShardExecutor,
                shards: &mut [ChannelShard],
                page_data: &mut [Option<Vec<u8>>],
            ) -> Result<(), CoreError> {
                for c in exec.dispatch(shards) {
                    if let Some(e) = c.error {
                        return Err(e);
                    }
                    page_data[c.thread as usize] = Some(c.data);
                }
                Ok(())
            }
            {
                let (shards, map, _) = sys.parts_mut();
                for page in 0..pages {
                    if poisoned.contains(&page) {
                        continue;
                    }
                    loop {
                        match exec.submit_read(map, page as u32, page * PAGE_BYTES, PAGE_BYTES, t0)
                        {
                            Ok(_) => break,
                            Err(CoreError::Overloaded { .. }) => {
                                fold_sweep(&mut exec, shards, &mut page_data)?;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                fold_sweep(&mut exec, shards, &mut page_data)?;
            }
            for page in 0..pages {
                if poisoned.contains(&page) {
                    report.pages_excluded += 1;
                    continue;
                }
                let got = page_data[page as usize].take().ok_or_else(|| {
                    CoreError::Config("verification sweep lost a completion".into())
                })?;
                if got != oracle[page as usize] {
                    report.oracle_mismatches += 1;
                }
                if rejected.get(&page) == Some(&crc32(&got)) {
                    report.rejected_write_leaks += 1;
                }
                report.digest = report
                    .digest
                    .wrapping_mul(0x0000_0100_0000_01B3)
                    .wrapping_add(u64::from(crc32(&got)));
            }
        } else {
            for page in 0..pages {
                if poisoned.contains(&page) {
                    report.pages_excluded += 1;
                    continue;
                }
                let off = page * PAGE_BYTES;
                match sys.read_at(off, &mut buf) {
                    Ok(_) => {
                        if buf != oracle[page as usize] {
                            report.oracle_mismatches += 1;
                        }
                        if rejected.get(&page) == Some(&crc32(&buf)) {
                            report.rejected_write_leaks += 1;
                        }
                        report.digest = report
                            .digest
                            .wrapping_mul(0x0000_0100_0000_01B3)
                            .wrapping_add(u64::from(crc32(&buf)));
                    }
                    // A straggler power failure from a drain cap trip.
                    Err(CoreError::PowerInterrupted) => {
                        report.power_cycles += 1;
                        report.power_fail_points.push(report.ops_attempted + page);
                        Self::splice_traces(&mut sys, capture, &mut traces);
                        sys.power_fail(true)?;
                        sys = sys.into_recovered()?;
                        if capture {
                            sys.set_trace_capture(true);
                        }
                        sys.read_at(off, &mut buf)?;
                        if buf != oracle[page as usize] {
                            report.oracle_mismatches += 1;
                        }
                        if rejected.get(&page) == Some(&crc32(&buf)) {
                            report.rejected_write_leaks += 1;
                        }
                        report.digest = report
                            .digest
                            .wrapping_mul(0x0000_0100_0000_01B3)
                            .wrapping_add(u64::from(crc32(&buf)));
                    }
                    Err(CoreError::DegradedShard { .. }) => {
                        report.degraded_rejections += 1;
                        report.pages_excluded += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        report.degraded_shards = sys.degraded_shards().len() as u64;
        report.recovery = sys.recovery_stats();
        report.final_clock = sys.now();
        Self::splice_traces(&mut sys, capture, &mut traces);
        Ok((report, traces))
    }

    /// Closes the current boot epoch's capture and appends it (used at
    /// power cycles and at campaign end).
    fn splice_traces(sys: &mut MultiChannelSystem, capture: bool, traces: &mut Vec<TraceEpoch>) {
        if !capture {
            return;
        }
        if let Some(epoch) = sys.set_trace_capture(false) {
            traces.push(epoch);
        }
    }
}

/// One boot epoch's bus traces, one `Vec<TraceEntry>` per shard. A
/// campaign that power-cycles produces several epochs; the simulated
/// clock restarts at each reboot, so every epoch is a standalone trace.
pub type TraceEpoch = Vec<Vec<TraceEntry>>;

/// Everything a campaign run produced, sufficient for bit-identity
/// comparison across reruns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Channels the campaign ran on.
    pub channels: u32,
    /// Seed the campaign ran with (replaying it is the reproduction).
    pub seed: u64,
    /// Crash point of every power cut taken, as the zero-based attempted
    /// -op index it interrupted; cuts during the final verification
    /// sweep are recorded as `ops_attempted + page`. Together with
    /// `seed` this pins each cut exactly — see
    /// [`CampaignReport::repro`].
    pub power_fail_points: Vec<u64>,
    /// Operations attempted (scheduled + drain).
    pub ops_attempted: u64,
    /// Operations that completed without a surfaced fault.
    pub ops_completed: u64,
    /// Power-fail/rebuild cycles taken.
    pub power_cycles: u64,
    /// Operations rejected by a degraded shard.
    pub degraded_rejections: u64,
    /// CP transactions that exhausted their retransmit budget.
    pub cp_timeouts: u64,
    /// Typed uncorrectable-media failures surfaced.
    pub media_failures: u64,
    /// Typed dirty-slot corruption losses surfaced.
    pub cache_corruptions: u64,
    /// Shards degraded at campaign end.
    pub degraded_shards: u64,
    /// Pages excluded from the final verification because their loss was
    /// surfaced (never silently).
    pub pages_excluded: u64,
    /// Writes the device refused with a typed error (ledgered).
    pub writes_rejected: u64,
    /// Final read-backs that matched a still-ledgered rejected payload —
    /// a write the device claimed to refuse but applied; must be zero.
    pub rejected_write_leaks: u64,
    /// Bytes that differed from the oracle — the silent-corruption
    /// counter; must be zero.
    pub oracle_mismatches: u64,
    /// FNV-folded CRC digest of the final read-back (bit-identity probe).
    pub digest: u64,
    /// Merged recovery ledger across all shards.
    pub recovery: RecoveryStats,
    /// Final simulated clock (bit-identity probe).
    pub final_clock: SimTime,
}

impl CampaignReport {
    fn new(channels: u32, seed: u64) -> Self {
        CampaignReport {
            channels,
            seed,
            power_fail_points: Vec::new(),
            ops_attempted: 0,
            ops_completed: 0,
            power_cycles: 0,
            degraded_rejections: 0,
            cp_timeouts: 0,
            media_failures: 0,
            cache_corruptions: 0,
            degraded_shards: 0,
            pages_excluded: 0,
            writes_rejected: 0,
            rejected_write_leaks: 0,
            oracle_mismatches: 0,
            digest: 0xCBF2_9CE4_8422_2325,
            recovery: RecoveryStats::default(),
            final_clock: SimTime::ZERO,
        }
    }

    /// One-command reproduction hint for this run's power cuts: the
    /// campaign is fully deterministic in `(seed, channels)`, so
    /// rerunning `FaultCampaign::recoverable(channels)` with this seed
    /// replays every cut at the recorded op index bit-identically.
    /// Embed this in assertion messages so a failure is reproducible
    /// without archaeology.
    pub fn repro(&self) -> String {
        format!(
            "repro: FaultCampaign::recoverable({}) with seed {:#x} \
             (power cuts at op indices {:?}; rerun is bit-identical)",
            self.channels, self.seed, self.power_fail_points
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_without_faults_verifies() {
        let mut c = FaultCampaign::recoverable(1);
        c.faults.clear();
        c.ops = 60;
        let r = c.run().expect("campaign");
        assert_eq!(r.oracle_mismatches, 0);
        assert_eq!(r.ops_completed, r.ops_attempted);
        assert_eq!(r.recovery, RecoveryStats::default());
    }

    #[test]
    fn single_channel_campaign_recovers_everything() {
        let r = FaultCampaign::recoverable(1).run().expect("campaign");
        assert_eq!(r.oracle_mismatches, 0, "silent corruption; {}", r.repro());
        assert_eq!(
            r.rejected_write_leaks,
            0,
            "rejected write applied; {}",
            r.repro()
        );
        assert_eq!(r.recovery.faults_fired, r.recovery.faults_scheduled);
        assert_eq!(r.degraded_shards, 0);
        let diags = nvdimmc_check::check_recovery(&r.recovery);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
