//! Multi-tenant QoS soak: N tenants at mixed priorities share the
//! executor path while dead-mailbox waves rotate across the shards and
//! background maintenance (CRC scrub, online repair, FTL housekeeping)
//! runs continuously in idle windows.
//!
//! Where the single-tenant [`SoakConfig`](crate::SoakConfig) proves the
//! system *stays in service* under fault waves, this soak proves it
//! stays **fair**: per-tenant token buckets gate admission, the
//! [`WfqArbiter`] interleaves each shard batch by weight, and
//! priority-aware eviction keeps foreground hot slots resident while
//! background tenants churn the cache. The run asserts what a
//! multi-tenant SLO dashboard would: no foreground tenant's p99 over
//! its class target, no tenant starved, and per-tenant request/token
//! conservation clean (audited independently by `check::qos`).
//!
//! Everything is seed-deterministic: the per-tenant load, the wave
//! schedule, the WFQ interleave and the maintenance calendar are pure
//! functions of [`QosTestConfig`], so the same config reproduces the
//! same [`QosReport`] digest bit-exactly.

use nvdimmc_core::{
    BlockDevice, CoreError, ExecutorConfig, FaultKind, InterleaveMap, MaintStats,
    MaintenanceConfig, MaintenanceScheduler, NvdimmCConfig, Priority, QosEngine, QosSnapshot,
    ReqKind, ShardExecutor, SloClass, SloTargets, System, TenantId, TenantSpec, WfqArbiter,
    PAGE_BYTES,
};
use nvdimmc_sim::{DeterministicRng, Histogram, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Multi-tenant soak configuration: tenant contracts, load shape, fault
/// cadence and the maintenance calendar.
#[derive(Debug, Clone)]
pub struct QosTestConfig {
    /// Channels (= shards) behind the interleaver.
    pub channels: u32,
    /// The tenant contracts (identity, weight, priority, class, quota).
    pub tenants: Vec<TenantSpec>,
    /// Working-set pages per tenant, parallel to `tenants`. Foreground
    /// sets should fit their per-shard cache share (the priority floor
    /// keeps them resident); background sets should overflow it.
    pub pages: Vec<u64>,
    /// Ops submitted per round, parallel to `tenants` (background
    /// flooders burst more than foreground tricklers).
    pub burst: Vec<u64>,
    /// Fraction of ops that are writes, in percent.
    pub write_percent: u32,
    /// Load-generator seed.
    pub seed: u64,
    /// Submit/dispatch rounds in the soak phase.
    pub rounds: u64,
    /// Every this many rounds, one shard's mailbox is killed (rotating
    /// round-robin over the channels). 0 disables waves.
    pub wave_period_rounds: u64,
    /// Ack drops armed per wave; anything above the retransmit budget
    /// kills the mailbox.
    pub mailbox_kill: u32,
    /// Per-class p99 targets the run is judged against.
    pub slo: SloTargets,
    /// Background maintenance tuning.
    pub maintenance: MaintenanceConfig,
}

impl QosTestConfig {
    /// The standard mixed-priority soak: three foreground tricklers
    /// with cache-resident working sets, three background flooders that
    /// overflow the cache, rotating mailbox-kill waves, maintenance on.
    pub fn standard(channels: u32) -> Self {
        let tenants = vec![
            TenantSpec::foreground(TenantId(1)).with_weight(4),
            TenantSpec::foreground(TenantId(2)).with_weight(4),
            TenantSpec::foreground(TenantId(3)).with_weight(2),
            TenantSpec::background(TenantId(4)),
            TenantSpec::background(TenantId(5)).with_quota(0, 10_000),
            TenantSpec::background(TenantId(6)).with_quota(32 * 1024 * 1024, 0),
        ];
        QosTestConfig {
            channels,
            tenants,
            pages: vec![8, 8, 8, 40, 40, 40],
            burst: vec![1, 1, 1, 4, 4, 4],
            write_percent: 50,
            seed: 0x0905_7E57,
            rounds: 240,
            wave_period_rounds: 40,
            // 1 initial attempt + 3 retransmits = 4 drops kill one
            // transaction; 8 also starves the first repair handshake.
            mailbox_kill: 8,
            slo: SloTargets {
                cached_p99: SimDuration::from_us(150.0),
                uncached_p99: SimDuration::from_us(1_000.0),
            },
            maintenance: MaintenanceConfig::default(),
        }
    }

    /// A shorter CI smoke variant: same shape, fewer rounds.
    pub fn smoke(channels: u32) -> Self {
        let mut c = Self::standard(channels);
        c.rounds = 100;
        c.wave_period_rounds = 25;
        c
    }

    fn shard_config() -> NvdimmCConfig {
        let mut cfg = NvdimmCConfig::small_for_tests();
        // Small cache so the background working sets overflow it while
        // the foreground sets fit under the priority floor; tight
        // retransmit budget so a wave's drops exhaust it quickly.
        cfg.cache_slots = 16;
        cfg.recovery.cp_timeout_windows = 64;
        cfg.recovery.cp_max_retransmits = 3;
        cfg
    }

    /// Runs the soak to completion.
    ///
    /// # Errors
    ///
    /// Propagates configuration and device-construction errors;
    /// per-request failures (degraded shards, CP timeouts) are part of
    /// the soak's recovery model and land in the report instead.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent config (mismatched parallel vectors,
    /// zero tenants or channels, working set beyond capacity).
    #[allow(clippy::too_many_lines)]
    pub fn run(&self) -> Result<QosReport, CoreError> {
        assert!(self.channels > 0, "no channels");
        assert!(!self.tenants.is_empty(), "no tenants");
        assert_eq!(self.tenants.len(), self.pages.len(), "pages mismatch");
        assert_eq!(self.tenants.len(), self.burst.len(), "burst mismatch");

        let shards = self.channels as usize;
        let map = InterleaveMap::new(self.channels, PAGE_BYTES)?;
        let mut devices = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut d = System::new(Self::shard_config())?;
            // Arm the CRC scrub machinery so maintenance slots verify
            // resident cache lines instead of no-opping.
            d.enable_scrub();
            devices.push(d);
        }
        let total_pages: u64 = self.pages.iter().sum();
        let capacity: u64 = devices.iter().map(BlockDevice::capacity_bytes).sum();
        assert!(
            total_pages * PAGE_BYTES <= capacity,
            "working set exceeds exported capacity"
        );

        let mut exec = ShardExecutor::new(shards, ExecutorConfig::default());
        exec.set_arbiter(Some(WfqArbiter::new(shards, &self.tenants)));
        let mut qos = QosEngine::new(&self.tenants);
        let mut maint = MaintenanceScheduler::new(shards, self.maintenance);
        let mut rng = DeterministicRng::new(self.seed).fork(0x0905);

        // Tenant regions are disjoint page ranges, so cross-tenant
        // interference is purely through shared rings and cache.
        let mut region_base = Vec::with_capacity(self.tenants.len());
        let mut base = 0u64;
        for pages in &self.pages {
            region_base.push(base);
            base += pages;
        }

        let mut report = QosReport::new(self);
        let mut hists: Vec<Histogram> = self.tenants.iter().map(|_| Histogram::new()).collect();
        // Submit instant per in-flight sequence number: latency is the
        // device completion clock minus it.
        let mut submitted_at: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut payload = vec![0u8; PAGE_BYTES as usize];
        let mut waves = 0u64;

        let fold = |report: &mut QosReport,
                    hists: &mut [Histogram],
                    submitted_at: &mut BTreeMap<u64, SimTime>,
                    qos: &mut QosEngine,
                    done: Vec<nvdimmc_core::Completion>| {
            for c in done {
                let ti = self
                    .tenants
                    .iter()
                    .position(|s| s.id == c.tenant)
                    .unwrap_or(0);
                let from = submitted_at.remove(&c.seq);
                report.digest = report
                    .digest
                    .wrapping_mul(0x0000_0100_0000_01B3)
                    .wrapping_add(c.seq ^ u64::from(c.tenant.0) << 48 ^ c.end.as_ps());
                if c.error.is_some() {
                    qos.note_failed(c.tenant);
                    report.ops_failed += 1;
                } else {
                    qos.note_completed(c.tenant);
                    report.ops_completed += 1;
                    if let Some(at) = from {
                        hists[ti].record(c.end.saturating_since(at));
                    }
                }
            }
        };

        for round in 0..self.rounds {
            if self.wave_period_rounds > 0
                && round > 0
                && round.is_multiple_of(self.wave_period_rounds)
            {
                let victim = (waves % u64::from(self.channels)) as usize;
                for _ in 0..self.mailbox_kill {
                    devices[victim].inject_fault(FaultKind::AckDrop);
                }
                waves += 1;
            }
            let now = devices
                .iter()
                .map(BlockDevice::now)
                .max()
                .unwrap_or(SimTime::ZERO);
            let mut moved = false;
            for (ti, spec) in self.tenants.iter().enumerate() {
                for _ in 0..self.burst[ti] {
                    let page = region_base[ti] + rng.gen_range(0..self.pages[ti]);
                    let off = page * PAGE_BYTES;
                    let write = rng.gen_range(0..100) < u64::from(self.write_percent);
                    if write {
                        rng.fill_bytes(&mut payload);
                    }
                    if qos.admit(spec.id, PAGE_BYTES, now).is_err() {
                        report.ops_throttled += 1;
                        continue;
                    }
                    let res = if write {
                        exec.submit_for(
                            &map,
                            spec.id,
                            ti as u32,
                            ReqKind::Write,
                            off,
                            now,
                            &payload,
                        )
                    } else {
                        exec.submit_read_for(&map, spec.id, ti as u32, off, PAGE_BYTES, now)
                    };
                    match res {
                        Ok(subs) => {
                            moved = true;
                            for s in subs {
                                submitted_at.insert(s.seq, now);
                            }
                        }
                        Err(CoreError::Overloaded { .. }) => {
                            qos.note_shed(spec.id);
                            report.ops_shed += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            // Due maintenance slots seen while the rings are loaded are
            // preempted (rescheduled one interval out), never run ahead
            // of foreground work.
            maint.run_due(&mut devices, now, |s| exec.pending(s));
            let done = exec.dispatch(&mut devices);
            moved |= !done.is_empty();
            fold(&mut report, &mut hists, &mut submitted_at, &mut qos, done);
            // Maintenance gets whatever idle windows the round left.
            let after = devices
                .iter()
                .map(BlockDevice::now)
                .max()
                .unwrap_or(SimTime::ZERO);
            maint.run_due(&mut devices, after, |s| exec.pending(s));
            if !moved {
                // Every tenant throttled and nothing in flight: push the
                // clocks forward so buckets refill and calendars fire.
                for d in &mut devices {
                    d.advance(self.maintenance.interval);
                }
            }
        }

        // Drain every ring, then give maintenance the idle tail until
        // no shard is left degraded (bounded sweeps).
        while exec.has_pending() {
            let done = exec.dispatch(&mut devices);
            fold(&mut report, &mut hists, &mut submitted_at, &mut qos, done);
        }
        for _ in 0..64 {
            if devices.iter().all(|d| !d.is_degraded()) {
                break;
            }
            let now = devices
                .iter()
                .map(BlockDevice::now)
                .max()
                .unwrap_or(SimTime::ZERO)
                + self.maintenance.interval;
            maint.run_due(&mut devices, now, |_| 0);
            for d in &mut devices {
                let target = now.saturating_since(d.now());
                d.advance(target);
            }
        }

        report.waves = waves;
        report.maint = maint.total_stats();
        report.degraded_at_end = devices.iter().filter(|d| d.is_degraded()).count() as u64;
        report.snapshot = qos.snapshot();
        for (ti, spec) in self.tenants.iter().enumerate() {
            let stats = qos.stats(spec.id).unwrap_or_default();
            let target = self.slo.for_class(spec.slo);
            let h = &hists[ti];
            report.tenants.push(TenantReport {
                id: spec.id,
                priority: spec.priority,
                class: spec.slo,
                target,
                completed: stats.completed,
                failed: stats.failed,
                throttled: stats.throttled,
                shed: stats.shed,
                p50: h.percentile(50.0),
                p99: h.percentile(99.0),
                max: h.max(),
                slo_breached: h.count() > 0 && h.percentile(99.0) > target,
                starved: (stats.admitted > 0 && stats.completed == 0) || stats.inflight() > 0,
            });
        }
        Ok(report)
    }
}

/// One tenant's end-of-run scorecard.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant identity.
    pub id: TenantId,
    /// Cache-priority class.
    pub priority: Priority,
    /// Latency class the SLO is judged against.
    pub class: SloClass,
    /// The p99 target for that class.
    pub target: SimDuration,
    /// Requests completed without error.
    pub completed: u64,
    /// Requests that surfaced a device error (degraded shard, CP
    /// timeout) — part of the fault-wave model, not SLO samples.
    pub failed: u64,
    /// Requests denied by the tenant's token buckets.
    pub throttled: u64,
    /// Requests shed at a full ring after admission.
    pub shed: u64,
    /// Median completion latency.
    pub p50: SimDuration,
    /// 99th-percentile completion latency.
    pub p99: SimDuration,
    /// Worst completion latency.
    pub max: SimDuration,
    /// True when p99 exceeded the class target.
    pub slo_breached: bool,
    /// True when the tenant was admitted but never served, or still had
    /// requests in flight after the drain.
    pub starved: bool,
}

/// The multi-tenant soak result.
#[derive(Debug, Clone)]
pub struct QosReport {
    /// Soak rounds executed.
    pub rounds: u64,
    /// Mailbox-kill waves injected.
    pub waves: u64,
    /// Requests completed without error (all tenants).
    pub ops_completed: u64,
    /// Requests that surfaced a device error.
    pub ops_failed: u64,
    /// Requests denied at admission by a token bucket.
    pub ops_throttled: u64,
    /// Requests shed at a full ring.
    pub ops_shed: u64,
    /// Shards still degraded after the final maintenance sweeps.
    pub degraded_at_end: u64,
    /// Summed maintenance counters.
    pub maint: MaintStats,
    /// Per-tenant scorecards, in config order.
    pub tenants: Vec<TenantReport>,
    /// The final QoS engine snapshot (input to `check::qos`).
    pub snapshot: QosSnapshot,
    /// FNV fold over every completion `(seq, tenant, end)` — the
    /// bit-identity probe for same-seed reruns.
    pub digest: u64,
}

impl QosReport {
    fn new(cfg: &QosTestConfig) -> Self {
        QosReport {
            rounds: cfg.rounds,
            waves: 0,
            ops_completed: 0,
            ops_failed: 0,
            ops_throttled: 0,
            ops_shed: 0,
            degraded_at_end: 0,
            maint: MaintStats::default(),
            tenants: Vec::new(),
            snapshot: QosSnapshot::default(),
            digest: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Foreground tenants whose p99 exceeded their class target.
    pub fn foreground_breaches(&self) -> Vec<TenantId> {
        self.tenants
            .iter()
            .filter(|t| t.priority == Priority::Foreground && t.slo_breached)
            .map(|t| t.id)
            .collect()
    }

    /// Tenants that were starved (admitted but never served, or left in
    /// flight after the drain).
    pub fn starved(&self) -> Vec<TenantId> {
        self.tenants
            .iter()
            .filter(|t| t.starved)
            .map(|t| t.id)
            .collect()
    }
}
