//! Synthetic TPC-H query profiles (paper §VII-B5, Figure 11).
//!
//! The paper runs TPC-H SF100 on SAP HANA over XFS-DAX. Neither HANA nor
//! the TPC-H data are reproducible here, so each of the 22 queries is
//! modelled by its *storage access pattern* — the only thing the memory
//! device sees: a sequential-scan volume, a population of random accesses
//! with a size and skew, and a write fraction. The two anchors the paper
//! publishes are Q1 (sequential table scan, ≈3.3× slower than baseline)
//! and Q20 ("many small accesses", ≈78× slower); the remaining profiles
//! interpolate based on the queries' published operator mixes
//! (Kandaswamy & Knighten, IPDS 2000 — the paper's reference 30).
//!
//! Footprints are expressed relative to the DRAM-cache capacity so the
//! experiment scales with the simulated system.

use nvdimmc_core::{BlockDevice, CoreError, EvictionPolicyKind};
use nvdimmc_sim::{DeterministicRng, SimDuration, Zipf};
use serde::{Deserialize, Serialize};

/// Access-pattern profile of one TPC-H query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryProfile {
    /// Query number (1..=22).
    pub id: u8,
    /// Touched data relative to the DRAM-cache capacity (1.0 = exactly
    /// the cache size; >1 cannot fully reside).
    pub footprint_of_cache: f64,
    /// Sequential-scan passes over the footprint.
    pub scan_passes: f64,
    /// Random accesses per scanned MB.
    pub rand_ops_per_mb: f64,
    /// Bytes per random access (small for index-nested-loop joins).
    pub rand_bytes: u64,
    /// Region the random accesses draw from, relative to the cache
    /// (≥ `footprint_of_cache`): index probes reach beyond the hot
    /// scanned columns into cold table data.
    pub cold_footprint_of_cache: f64,
    /// Zipf skew of the random accesses (0 = uniform).
    pub zipf_theta: f64,
    /// Fraction of accesses that write (materialisation, temps).
    pub write_fraction: f64,
}

/// The 22 query profiles.
///
/// Q1/Q6: scan-dominated aggregations with warm reuse. Q2/Q11/Q16/Q17/
/// Q20/Q21: small-row index traffic over footprints that defeat the
/// cache. Others interpolate.
pub fn queries() -> Vec<QueryProfile> {
    let q = |id, foot, cold, passes, rpm, rb, theta, wf| QueryProfile {
        id,
        footprint_of_cache: foot,
        cold_footprint_of_cache: cold,
        scan_passes: passes,
        rand_ops_per_mb: rpm,
        rand_bytes: rb,
        zipf_theta: theta,
        write_fraction: wf,
    };
    vec![
        // Q1: pricing summary — one big scan over a compact, resident
        // column set, plus a sprinkle of cold probes.
        q(1, 0.85, 3.0, 4.0, 7.0, 4096, 0.2, 0.05),
        // Q2: minimum-cost supplier — small-row lookups over cold parts.
        q(2, 0.90, 3.0, 0.3, 60.0, 512, 0.4, 0.05),
        q(3, 0.95, 2.0, 1.5, 15.0, 2048, 0.5, 0.08),
        q(4, 0.90, 2.0, 1.2, 8.0, 2048, 0.5, 0.05),
        q(5, 0.95, 2.5, 1.5, 18.0, 1024, 0.5, 0.08),
        // Q6: pure predicate scan, compact columns.
        q(6, 0.70, 2.0, 3.0, 1.5, 4096, 0.2, 0.02),
        q(7, 0.95, 2.5, 1.2, 20.0, 1024, 0.5, 0.08),
        q(8, 0.95, 3.0, 1.0, 25.0, 1024, 0.5, 0.08),
        // Q9: part/supplier join across the whole schema — big and random.
        q(9, 0.95, 4.0, 1.0, 45.0, 1024, 0.3, 0.10),
        q(10, 0.95, 2.0, 1.2, 16.0, 2048, 0.5, 0.08),
        q(11, 0.90, 3.0, 0.5, 45.0, 512, 0.4, 0.05),
        q(12, 0.90, 2.0, 1.5, 6.0, 4096, 0.4, 0.05),
        q(13, 0.95, 2.0, 1.0, 22.0, 1024, 0.6, 0.10),
        q(14, 0.85, 2.0, 1.5, 5.0, 4096, 0.4, 0.05),
        q(15, 0.85, 2.0, 2.0, 4.0, 4096, 0.4, 0.08),
        q(16, 0.90, 3.5, 0.4, 55.0, 512, 0.4, 0.05),
        // Q17: correlated subquery over parts — small random reads, cold.
        q(17, 0.90, 4.0, 0.3, 70.0, 512, 0.2, 0.05),
        q(18, 0.95, 2.5, 1.5, 18.0, 2048, 0.5, 0.10),
        q(19, 0.95, 2.5, 1.0, 28.0, 1024, 0.4, 0.05),
        // Q20: "results in many small accesses" (paper) — tiny rows, huge
        // cold region, no locality: the LRC worst case.
        q(20, 0.50, 5.0, 0.2, 280.0, 256, 0.05, 0.05),
        // Q21: suppliers who kept orders waiting — heavy random self-join.
        q(21, 0.95, 4.5, 0.5, 90.0, 512, 0.2, 0.08),
        q(22, 0.90, 3.0, 0.5, 35.0, 1024, 0.4, 0.05),
    ]
}

/// Figure 11 runner.
#[derive(Debug, Clone, Copy)]
pub struct TpchRunner {
    /// DRAM-cache capacity the footprints scale against.
    pub cache_bytes: u64,
    /// Sequential-scan chunk size.
    pub chunk_bytes: u64,
    /// Seed.
    pub seed: u64,
}

/// Result for one query on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpchReport {
    /// Query number.
    pub id: u8,
    /// Elapsed simulated time.
    pub elapsed: SimDuration,
    /// Bytes accessed.
    pub bytes: u64,
    /// Operations issued.
    pub ops: u64,
}

impl TpchRunner {
    /// Creates a runner scaled to `cache_bytes`.
    pub fn new(cache_bytes: u64) -> Self {
        TpchRunner {
            cache_bytes,
            chunk_bytes: 64 << 10,
            seed: 42,
        }
    }

    /// Runs one query against `dev`, including a single warm-up touch of
    /// the hot region (HANA keeps its column store resident between
    /// queries; the paper measures steady-state transaction times).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run_query(
        &self,
        dev: &mut impl BlockDevice,
        profile: &QueryProfile,
    ) -> Result<TpchReport, CoreError> {
        let footprint =
            ((self.cache_bytes as f64 * profile.footprint_of_cache) as u64).max(self.chunk_bytes);
        let footprint = footprint.min(dev.capacity_bytes() / 3).max(4096) / 4096 * 4096;
        let cold = ((self.cache_bytes as f64 * profile.cold_footprint_of_cache) as u64)
            .max(footprint)
            .min(dev.capacity_bytes() / 4 * 3)
            / 4096
            * 4096;
        let mut rng = DeterministicRng::new(self.seed ^ u64::from(profile.id));
        let mut chunk = vec![0u8; self.chunk_bytes as usize];

        // Database load: the tables exist on the device before queries run
        // (HANA persists its column store), so cold probes hit real
        // Z-NAND-backed pages, not fresh zero-filled ones.
        let mut off = 0;
        while off < cold {
            let n = self.chunk_bytes.min(cold - off) as usize;
            rng.fill_bytes(&mut chunk[..n]);
            dev.write_at(off, &chunk[..n])?;
            off += n as u64;
        }
        // Warm-up: one pass over the hot set, as in a live IMDB.
        let mut off = 0;
        while off < footprint {
            let n = self.chunk_bytes.min(footprint - off) as usize;
            dev.read_at(off, &mut chunk[..n])?;
            off += n as u64;
        }

        let t0 = dev.now();
        let mut bytes = 0u64;
        let mut ops = 0u64;
        // Sequential scan volume.
        let scan_bytes = (footprint as f64 * profile.scan_passes) as u64;
        let mut scanned = 0u64;
        let mut pos = 0u64;
        while scanned < scan_bytes {
            let n = self.chunk_bytes.min(scan_bytes - scanned) as usize;
            if rng.gen_bool(profile.write_fraction) {
                rng.fill_bytes(&mut chunk[..n]);
                dev.write_at(pos, &chunk[..n])?;
            } else {
                dev.read_at(pos, &mut chunk[..n])?;
            }
            scanned += n as u64;
            bytes += n as u64;
            ops += 1;
            pos = (pos + n as u64) % footprint;
        }
        // Random accesses over the cold region.
        let rand_ops = ((footprint as f64 / 1e6)
            * profile.rand_ops_per_mb
            * profile.scan_passes.max(1.0)) as u64;
        let population = (cold / profile.rand_bytes.max(1)).max(1);
        let zipf = (profile.zipf_theta > 0.0).then(|| Zipf::new(population, profile.zipf_theta));
        for _ in 0..rand_ops {
            let idx = match &zipf {
                Some(z) => z.sample(&mut rng),
                None => rng.gen_range(0..population),
            };
            let off = idx * profile.rand_bytes;
            let n = profile.rand_bytes as usize;
            if rng.gen_bool(profile.write_fraction) {
                rng.fill_bytes(&mut chunk[..n]);
                dev.write_at(off, &chunk[..n])?;
            } else {
                dev.read_at(off, &mut chunk[..n])?;
            }
            bytes += n as u64;
            ops += 1;
        }
        Ok(TpchReport {
            id: profile.id,
            elapsed: dev.now().since(t0),
            bytes,
            ops,
        })
    }
}

/// An aggregate TPC-H access profile for the replacement-policy study:
/// the paper's in-house simulation reports LRU hit rates of 78.7–99.3%
/// already at a 1 GB cache (1/16 of the DRAM), implying strongly skewed
/// page popularity across the query mix.
pub fn aggregate_profile() -> QueryProfile {
    QueryProfile {
        id: 0,
        footprint_of_cache: 1.0,
        cold_footprint_of_cache: 1.0,
        scan_passes: 0.05,
        rand_ops_per_mb: 600.0,
        rand_bytes: 4096,
        zipf_theta: 0.97,
        write_fraction: 0.1,
    }
}

/// The paper's in-house replacement-policy study: replay a query's page
/// trace into a standalone cache model (no timing) and report the hit
/// rate — used for "LRU achieves 78.7–99.3% as the cache grows from 1 GB
/// to 16 GB".
pub fn hit_rate_study(
    profile: &QueryProfile,
    cache_pages: u64,
    policy: EvictionPolicyKind,
    trace_footprint_pages: u64,
    seed: u64,
) -> f64 {
    use nvdimmc_core::DramCache;
    let mut cache = DramCache::new(cache_pages, policy);
    let mut rng = DeterministicRng::new(seed ^ u64::from(profile.id));
    let population = trace_footprint_pages.max(1);
    let zipf = (profile.zipf_theta > 0.0).then(|| Zipf::new(population, profile.zipf_theta));
    // Interleave scan pages and random pages in the profile's ratio.
    let scan_pages = (population as f64 * profile.scan_passes) as u64;
    let rand_ops = ((population * 4096) as f64 / 1e6 * profile.rand_ops_per_mb) as u64;
    let round = scan_pages + rand_ops;
    let rand_every = (round / rand_ops.max(1)).max(1);
    let mut seq = 0u64;
    // Warm for two rounds, measure the third (steady state — compulsory
    // misses excluded, as a resident IMDB would behave).
    let mut measured_hits = 0u64;
    let mut measured_total = 0u64;
    for round_idx in 0..3 {
        for i in 0..round {
            let page = if i % rand_every == 0 && rand_ops > 0 {
                match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..population),
                }
            } else {
                seq = (seq + 1) % population;
                seq
            };
            let hit = cache.lookup(page).is_some();
            if !hit {
                let slot = cache.take_free_slot().or_else(|| {
                    cache.pick_victim().map(|(victim, _, _)| {
                        cache.evict(victim);
                        victim
                    })
                });
                // A zero-slot cache caches nothing; the access stays a miss.
                if let Some(slot) = slot {
                    cache.fill(slot, page);
                }
            }
            if round_idx == 2 {
                measured_total += 1;
                if hit {
                    measured_hits += 1;
                }
            }
        }
    }
    if measured_total == 0 {
        return 0.0;
    }
    measured_hits as f64 / measured_total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::{EmulatedPmem, NvdimmCConfig, PerfParams, System};
    use nvdimmc_ddr::{SpeedBin, TimingParams};

    #[test]
    fn all_22_queries_defined() {
        let qs = queries();
        assert_eq!(qs.len(), 22);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(usize::from(q.id), i + 1);
            assert!(q.footprint_of_cache > 0.0);
            assert!((0.0..=1.0).contains(&q.write_fraction));
        }
    }

    #[test]
    fn q20_slower_than_q1_relative_to_baseline() {
        // The Figure 11 headline: Q20's small cold accesses hurt NVDIMM-C
        // far more than Q1's warm scan.
        let cache_bytes = 2u64 << 20;
        let runner = TpchRunner::new(cache_bytes);
        let qs = queries();
        let q1 = qs[0];
        let q20 = qs[19];

        let ratio = |q: &QueryProfile| {
            let mut cfg = NvdimmCConfig::small_for_tests();
            cfg.cache_slots = cache_bytes / 4096;
            let mut sys = System::new(cfg).unwrap();
            let nv = runner.run_query(&mut sys, q).unwrap();
            let mut pm = EmulatedPmem::new(
                64 << 20,
                TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
                PerfParams::poc(),
            )
            .unwrap();
            let base = runner.run_query(&mut pm, q).unwrap();
            nv.elapsed.as_secs_f64() / base.elapsed.as_secs_f64()
        };

        let r1 = ratio(&q1);
        let r20 = ratio(&q20);
        assert!(r1 >= 1.0, "NVDIMM-C cannot beat the DRAM baseline: {r1:.1}");
        assert!(
            r20 > r1 * 3.0,
            "Q20 ({r20:.1}x) must be far worse than Q1 ({r1:.1}x)"
        );
    }

    #[test]
    fn hit_rate_improves_with_cache_size() {
        // §VII-B5: LRU hit rate climbs from ~79% to ~99% as the cache
        // grows from 1 GB to 16 GB (scaled here).
        let q20 = queries()[19];
        let foot = 4096;
        let small = hit_rate_study(&q20, 256, EvictionPolicyKind::Lru, foot, 1);
        let large = hit_rate_study(&q20, 4096, EvictionPolicyKind::Lru, foot, 1);
        assert!(large > small, "hit rate: {small:.3} -> {large:.3}");
        assert!(large > 0.9, "full-size cache should mostly hit: {large:.3}");
    }

    #[test]
    fn lru_beats_lrc_in_study() {
        // A reuse-heavy (skewed random) pattern is where recency pays;
        // pure scans thrash both policies equally.
        let reuse_heavy = QueryProfile {
            id: 13,
            footprint_of_cache: 2.0,
            cold_footprint_of_cache: 2.0,
            scan_passes: 0.1,
            rand_ops_per_mb: 400.0,
            rand_bytes: 4096,
            zipf_theta: 0.8,
            write_fraction: 0.0,
        };
        let foot = 2048;
        let lrc = hit_rate_study(&reuse_heavy, 512, EvictionPolicyKind::Lrc, foot, 2);
        let lru = hit_rate_study(&reuse_heavy, 512, EvictionPolicyKind::Lru, foot, 2);
        assert!(
            lru > lrc + 0.02,
            "LRU {lru:.3} should clearly beat LRC {lrc:.3} on reuse-heavy traffic"
        );
    }
}
