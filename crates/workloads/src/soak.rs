//! SLO soak runner: sustained mixed load with continuous dead-mailbox
//! fault waves, online repair, and availability/latency accounting.
//!
//! Where a [`FaultCampaign`](crate::FaultCampaign) proves that *every*
//! injected fault is recovered or surfaced once, the soak proves the
//! system **stays in service** while faults keep coming: waves of
//! mailbox-killing ack drops rotate across every shard for the whole
//! run, each degradation is repaired online through the front-end's
//! failover policy (quiesce → re-handshake → CRC scrub → audit →
//! re-admit), and the run reports what an SLO dashboard would —
//! availability, latency percentiles split by the serving shard's
//! health, rebuild counts — plus the usual bit-identity probes.
//!
//! Everything is seed-deterministic: the load, the wave schedule and
//! the repair sequence are pure functions of [`SoakConfig`], so the
//! same config reproduces the same [`SoakReport`] bit-exactly.

use nvdimmc_core::{
    BlockDevice, ChannelShard, CoreError, ExecutorConfig, FailoverPolicy, FaultKind,
    MultiChannelConfig, MultiChannelSystem, NvdimmCConfig, RecoveryStats, ShardExecutor,
    PAGE_BYTES,
};
use nvdimmc_nand::ecc::crc32;
use nvdimmc_sim::{DeterministicRng, Histogram, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Soak configuration: load shape, horizon and the fault cadence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakConfig {
    /// Channels (= shards) behind the front-end.
    pub channels: u32,
    /// Working-set pages *per channel*, kept above the shard cache size
    /// so CP traffic (evictions + fills) never dries up and armed
    /// mailbox faults always find a command to bite on.
    pub pages_per_channel: u64,
    /// Seed for the load generator.
    pub seed: u64,
    /// Simulated soak horizon: the load loop runs until the device
    /// clock passes it (or `max_ops` trips first).
    pub duration: SimDuration,
    /// Hard operation-count backstop.
    pub max_ops: u64,
    /// Every this many operations, one shard's mailbox is killed
    /// (rotating round-robin over the channels).
    pub wave_period_ops: u64,
    /// Ack drops armed per wave. Anything above the retransmit budget
    /// (1 + `cp_max_retransmits`) kills the mailbox; twice the budget
    /// additionally starves the first repair handshake, exercising the
    /// interrupted-rebuild restart path.
    pub mailbox_kill: u32,
    /// Front-end failover policy for the run.
    pub failover: FailoverPolicy,
}

impl SoakConfig {
    /// The standard dead-mailbox soak: waves rotate over every channel,
    /// auto-repair on, each wave strong enough to also interrupt the
    /// first rebuild attempt.
    pub fn dead_mailbox(channels: u32) -> Self {
        SoakConfig {
            channels,
            pages_per_channel: 24,
            seed: 0x50AC_0DE0,
            // A repair (timeout discovery + probe retries + writeback
            // scrub) costs ~8 ms simulated; the horizon leaves room for
            // a wave per channel with margin, and `max_ops` governs.
            duration: SimDuration::from_us(400_000.0),
            max_ops: 400 * u64::from(channels.max(1)),
            wave_period_ops: 60,
            // 2 × (1 initial attempt + 3 retransmits): the first victim
            // transaction exhausts its budget on four drops, the repair
            // probe eats the other four and restarts the rebuild.
            mailbox_kill: 8,
            failover: FailoverPolicy::auto(),
        }
    }

    /// A time-bounded smoke variant for CI: same shape, shorter run.
    pub fn smoke(channels: u32) -> Self {
        let mut c = Self::dead_mailbox(channels);
        c.duration = SimDuration::from_us(100_000.0);
        c.max_ops = 150 * u64::from(channels.max(1));
        c.wave_period_ops = 40;
        c
    }

    fn config(&self) -> MultiChannelConfig {
        let mut shard = NvdimmCConfig::small_for_tests();
        // Tiny cache so the working set overflows it and CP traffic
        // continues all run; tight retransmit budget so a wave's drops
        // exhaust it quickly.
        shard.cache_slots = 16;
        shard.recovery.cp_timeout_windows = 64;
        shard.recovery.cp_max_retransmits = 3;
        MultiChannelConfig::new(shard, self.channels).with_failover(self.failover)
    }

    /// Runs the soak to completion.
    ///
    /// # Errors
    ///
    /// Propagates device errors outside the soak's recovery model
    /// (anything other than degraded/rebuilding/overloaded rejections
    /// and CP timeouts).
    ///
    /// # Panics
    ///
    /// Panics on an empty config or a working set beyond the exported
    /// capacity.
    pub fn run(&self) -> Result<SoakReport, CoreError> {
        Ok(self.run_full()?.0)
    }

    /// Like [`SoakConfig::run`], also returning the final system so the
    /// caller can audit health logs, rebuild ledgers and bus state.
    ///
    /// # Errors
    ///
    /// See [`SoakConfig::run`].
    ///
    /// # Panics
    ///
    /// See [`SoakConfig::run`].
    #[allow(clippy::too_many_lines)]
    pub fn run_full(&self) -> Result<(SoakReport, MultiChannelSystem), CoreError> {
        assert!(
            self.channels > 0 && self.pages_per_channel > 0,
            "empty soak"
        );
        let mut sys = MultiChannelSystem::new(self.config())?;
        let pages = self.pages_per_channel * u64::from(self.channels);
        assert!(
            pages * PAGE_BYTES <= sys.capacity_bytes(),
            "working set exceeds exported capacity"
        );
        let mut rng = DeterministicRng::new(self.seed).fork(0x50AC);
        let mut oracle: Vec<Vec<u8>> = vec![vec![0u8; PAGE_BYTES as usize]; pages as usize];
        // Rejected-write ledger, as in the fault campaign: the final
        // read-back must never reflect a payload the device refused.
        let mut rejected: BTreeMap<u64, u32> = BTreeMap::new();
        let mut report = SoakReport::new(self.channels);
        let mut healthy_lat = Histogram::new();
        let mut impaired_lat = Histogram::new();
        let mut buf = vec![0u8; PAGE_BYTES as usize];
        let mut data = vec![0u8; PAGE_BYTES as usize];

        // Phase 1 — soak: scheduled load with rotating dead-mailbox
        // waves. Phase 2 — drain: same load, no new waves, until every
        // armed fault has fired (so the final verification cannot trip
        // a stale fault).
        let mut attempted = 0u64;
        let mut waves = 0u64;
        loop {
            let soaking = sys.now() < SimTime::ZERO + self.duration && attempted < self.max_ops;
            if !soaking && (sys.faults_quiescent() || attempted >= 2 * self.max_ops) {
                break;
            }
            if soaking && attempted > 0 && attempted.is_multiple_of(self.wave_period_ops) {
                let victim = (waves % u64::from(self.channels)) as usize;
                for _ in 0..self.mailbox_kill {
                    sys.shards_mut()[victim].inject_fault(FaultKind::AckDrop);
                }
                waves += 1;
            }
            attempted += 1;
            report.ops_attempted += 1;
            // Draw before executing so the stream stays aligned across
            // error paths (determinism).
            let page = rng.gen_range(0..pages);
            let write = rng.gen_bool(0.6);
            if write {
                rng.fill_bytes(&mut data);
            }
            let off = page * PAGE_BYTES;
            let shard = sys.map().locate(off).0 as usize;
            let impaired = !sys.shards()[shard].health().is_healthy();
            let res = if write {
                sys.write_at(off, &data)
            } else {
                sys.read_at(off, &mut buf)
            };
            match res {
                Ok(lat) => {
                    report.ops_completed += 1;
                    if impaired {
                        impaired_lat.record(lat);
                    } else {
                        healthy_lat.record(lat);
                    }
                    if write {
                        oracle[page as usize].copy_from_slice(&data);
                        rejected.remove(&page);
                    } else if buf != oracle[page as usize] {
                        report.oracle_mismatches += 1;
                    }
                }
                Err(e) => {
                    if write {
                        report.writes_rejected += 1;
                        rejected.insert(page, crc32(&data));
                    }
                    match e {
                        CoreError::CpTimeout { .. } => report.cp_timeouts += 1,
                        CoreError::DegradedShard { .. } => report.degraded_rejections += 1,
                        CoreError::Rebuilding { retry_after, .. } => {
                            report.shed_rebuilding += 1;
                            // The front-end already scales the hint by ring
                            // pressure; honor it instead of hot-looping.
                            sys.advance(retry_after);
                        }
                        CoreError::Overloaded { retry_after, .. } => {
                            report.shed_overloaded += 1;
                            sys.advance(retry_after);
                        }
                        other => return Err(other),
                    }
                }
            }
        }

        // Phase 3 — repair sweep: no shard may end the soak degraded.
        // One sweep per remaining attempt budget; a shard whose repair
        // keeps failing stays in the degraded list and the report shows
        // it.
        for _ in 0..4 {
            if sys.degraded_shards().is_empty() {
                break;
            }
            sys.repair_degraded()?;
        }

        // Pages whose dirty data a rebuild dropped (loss surfaced in
        // the rebuild ledger) are excluded from verification — their
        // slots were invalidated, so a later read re-fills fresh.
        let mut excluded: BTreeSet<u64> = BTreeSet::new();
        for (idx, reports) in sys.rebuild_reports().iter().enumerate() {
            for r in *reports {
                for &local_page in &r.pages_lost {
                    let global = sys.map().to_global(idx as u32, local_page * PAGE_BYTES);
                    excluded.insert(global / PAGE_BYTES);
                }
            }
        }

        // Phase 4 — verification: byte-exact read-back against the
        // oracle, no rejected payload visible. The sweep batches through
        // the scale-out executor — pages stream onto the per-shard rings
        // (adjacent pages coalesce into joint DMAs on one channel) and
        // every completion carries its payload back; the digest still
        // folds in page order, so it is deterministic.
        let t0 = sys.now();
        let mut exec = ShardExecutor::new(sys.channels() as usize, ExecutorConfig::default());
        let mut page_data: Vec<Option<Vec<u8>>> = vec![None; pages as usize];
        fn fold_sweep(
            exec: &mut ShardExecutor,
            shards: &mut [ChannelShard],
            page_data: &mut [Option<Vec<u8>>],
        ) -> Result<(), CoreError> {
            for c in exec.dispatch(shards) {
                if let Some(e) = c.error {
                    return Err(e);
                }
                page_data[c.thread as usize] = Some(c.data);
            }
            Ok(())
        }
        {
            let (shards, map, _) = sys.parts_mut();
            for page in 0..pages {
                if excluded.contains(&page) {
                    continue;
                }
                loop {
                    match exec.submit_read(map, page as u32, page * PAGE_BYTES, PAGE_BYTES, t0) {
                        Ok(_) => break,
                        Err(CoreError::Overloaded { .. }) => {
                            fold_sweep(&mut exec, shards, &mut page_data)?;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            fold_sweep(&mut exec, shards, &mut page_data)?;
        }
        for page in 0..pages {
            if excluded.contains(&page) {
                report.pages_excluded += 1;
                continue;
            }
            let got = page_data[page as usize]
                .take()
                .ok_or_else(|| CoreError::Config("verification sweep lost a completion".into()))?;
            if got != oracle[page as usize] {
                report.oracle_mismatches += 1;
            }
            if rejected.get(&page) == Some(&crc32(&got)) {
                report.rejected_write_leaks += 1;
            }
            report.digest = report
                .digest
                .wrapping_mul(0x0000_0100_0000_01B3)
                .wrapping_add(u64::from(crc32(&got)));
        }

        report.waves = waves;
        report.healthy = LatencySummary::from(&healthy_lat);
        report.impaired = LatencySummary::from(&impaired_lat);
        report.degraded_at_end = sys.degraded_shards().len() as u64;
        report.recovery = sys.recovery_stats();
        report.final_clock = sys.now();
        Ok((report, sys))
    }
}

/// Count/percentile digest of one latency population (histograms are
/// not bit-comparable, so the report keeps extracted values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median latency.
    pub p50: SimDuration,
    /// 99th-percentile latency.
    pub p99: SimDuration,
    /// Worst-case latency.
    pub max: SimDuration,
}

impl From<&Histogram> for LatencySummary {
    fn from(h: &Histogram) -> Self {
        LatencySummary {
            count: h.count(),
            p50: h.percentile(50.0),
            p99: h.percentile(99.0),
            max: h.max(),
        }
    }
}

/// Everything a soak run produced, sufficient for bit-identity
/// comparison across reruns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoakReport {
    /// Channels the soak ran on.
    pub channels: u32,
    /// Dead-mailbox waves armed.
    pub waves: u64,
    /// Operations attempted (soak + drain phases).
    pub ops_attempted: u64,
    /// Operations that completed.
    pub ops_completed: u64,
    /// CP transactions that exhausted their retransmit budget (the op
    /// that discovered each dead mailbox).
    pub cp_timeouts: u64,
    /// Operations bounced by a degraded shard (auto-repair off or
    /// budget exhausted).
    pub degraded_rejections: u64,
    /// Operations shed with a typed `Rebuilding` retry-after hint.
    pub shed_rebuilding: u64,
    /// Operations shed with a typed `Overloaded` retry-after hint.
    pub shed_overloaded: u64,
    /// Writes refused with a typed error (ledgered).
    pub writes_rejected: u64,
    /// Final read-backs matching a still-ledgered rejected payload;
    /// must be zero.
    pub rejected_write_leaks: u64,
    /// Pages excluded from verification because a rebuild surfaced
    /// their loss (never silently).
    pub pages_excluded: u64,
    /// Bytes differing from the oracle; must be zero.
    pub oracle_mismatches: u64,
    /// Latency digest of ops served while the target shard was healthy.
    pub healthy: LatencySummary,
    /// Latency digest of ops served while the target shard was degraded
    /// or rebuilding (repair time lands on these ops).
    pub impaired: LatencySummary,
    /// Shards still degraded after the final repair sweep; must be zero
    /// for a passing soak.
    pub degraded_at_end: u64,
    /// Merged recovery ledger across all shards.
    pub recovery: RecoveryStats,
    /// FNV-folded CRC digest of the final read-back (bit-identity
    /// probe).
    pub digest: u64,
    /// Final simulated clock (bit-identity probe).
    pub final_clock: SimTime,
}

impl SoakReport {
    fn new(channels: u32) -> Self {
        SoakReport {
            channels,
            waves: 0,
            ops_attempted: 0,
            ops_completed: 0,
            cp_timeouts: 0,
            degraded_rejections: 0,
            shed_rebuilding: 0,
            shed_overloaded: 0,
            writes_rejected: 0,
            rejected_write_leaks: 0,
            pages_excluded: 0,
            oracle_mismatches: 0,
            healthy: LatencySummary::default(),
            impaired: LatencySummary::default(),
            degraded_at_end: 0,
            recovery: RecoveryStats::default(),
            digest: 0xCBF2_9CE4_8422_2325,
            final_clock: SimTime::ZERO,
        }
    }

    /// Fraction of attempted operations that completed.
    pub fn availability(&self) -> f64 {
        if self.ops_attempted == 0 {
            return 1.0;
        }
        self.ops_completed as f64 / self.ops_attempted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_soak_without_waves_is_fully_available() {
        let mut c = SoakConfig::smoke(1);
        c.wave_period_ops = u64::MAX; // never arm a wave
        let r = c.run().expect("soak");
        assert_eq!(r.waves, 0);
        assert_eq!(r.ops_completed, r.ops_attempted);
        assert_eq!(r.oracle_mismatches, 0);
        assert_eq!(r.recovery.rebuilds_started, 0);
        assert_eq!(r.impaired.count, 0);
    }

    #[test]
    fn smoke_soak_repairs_every_wave() {
        let r = SoakConfig::smoke(2).run().expect("soak");
        assert!(r.waves >= 2, "waves must hit every channel: {r:?}");
        assert!(r.recovery.rebuilds_completed > 0, "{r:?}");
        assert_eq!(r.degraded_at_end, 0, "{r:?}");
        assert_eq!(r.oracle_mismatches, 0, "{r:?}");
        assert_eq!(r.rejected_write_leaks, 0, "{r:?}");
    }
}
