//! # nvdimmc-workloads — the paper's workload suite (Table II)
//!
//! Drives any [`nvdimmc_core::BlockDevice`] (the NVDIMM-C [`System`] or
//! the emulated-pmem baseline) with the workloads the paper evaluates:
//!
//! - [`fio`] — a flexible-I/O-tester clone: random/sequential read/write
//!   sweeps over block size;
//! - [`concurrent`] — the multi-thread fio driver: one closed-loop worker
//!   per simulated thread, requests batched onto per-shard rings and
//!   served by the `ShardExecutor` worker pool (the measured Figure 9);
//! - [`filecopy`] — the §VII-B1 experiment: copy a large file from a
//!   rate-capped SSD onto the device, recording throughput over time;
//! - [`stream`] — the §VII-A validation: a STREAM-like kernel that
//!   verifies every result against a host-memory oracle while the refresh
//!   detector and FPGA stay active;
//! - [`tpch`] — synthetic access-pattern profiles for the 22 TPC-H
//!   queries (SAP HANA, SF100) and the LRC/LRU hit-rate study;
//! - [`mixedload`] — the SAP in-house mixed-load benchmark: N concurrent
//!   users running checksummed transactions with end-to-end validation;
//! - [`faultcampaign`] — seeded fault-injection campaigns over the
//!   multi-channel system: inject NAND/mailbox/window/cache/power faults
//!   mid-load, drain until every fault fired, then verify byte-exact
//!   read-back and a balanced recovery ledger;
//! - [`crashsweep`] — crash-point torture: enumerate every crash
//!   boundary of a deterministic workload (bus ops, CP windows, NVMC
//!   bursts, maintenance slots), replay with a power cut armed at each,
//!   and audit recovery with the [`nvdimmc_check::check_crash`]
//!   persistence oracle;
//!   failures delta-debug to 1-minimal replayable corpus schedules;
//! - [`soak`] — SLO soak runner: sustained load while dead-mailbox
//!   waves rotate over every shard, each degradation repaired online
//!   through the front-end failover policy, reporting availability and
//!   per-health-state latency percentiles.
//!
//! [`System`]: nvdimmc_core::System

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod concurrent;
pub mod crashsweep;
pub mod faultcampaign;
pub mod filecopy;
pub mod fio;
pub mod mixedload;
pub mod qostest;
pub mod soak;
pub mod stream;
pub mod tpch;

pub use concurrent::{ConcurrentFio, ConcurrentReport};
pub use crashsweep::{
    CrashOp, CrashSweep, FailingPoint, Sampling, ShrunkCrash, SweepReport, TrialReport,
};
pub use faultcampaign::{CampaignReport, FaultCampaign, TraceEpoch};
pub use filecopy::{CopyReport, FileCopy};
pub use fio::{FioJob, FioReport, RwMode};
pub use mixedload::{MixedLoad, MixedLoadReport};
pub use qostest::{QosReport, QosTestConfig, TenantReport};
pub use soak::{LatencySummary, SoakConfig, SoakReport};
pub use stream::{StreamReport, StreamValidator};
pub use tpch::{QueryProfile, TpchReport, TpchRunner};
