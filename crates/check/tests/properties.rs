//! Property tests for the nvdimmc-check timing linter.
//!
//! Two directions of confidence:
//!
//! - **Soundness on legal schedules.** Random command streams are pushed
//!   through the *real* `SharedBus`/`DramDevice` with the iMC's retry
//!   discipline, so every accepted command is model-legal by construction.
//!   The recorded trace must then lint completely clean — the offline
//!   rulebook may never disagree with the inline one on a legal schedule.
//! - **Sensitivity to injected violations.** Starting from a legal
//!   hand-built trace, one command is shifted a random number of clock
//!   cycles too early. Exactly the expected rule must fire, exactly once
//!   (the shift sizes are chosen to stay inside every *other* constraint).

use nvdimmc_check::{check_trace, lint_timing};
use nvdimmc_ddr::{
    BankAddr, BusMaster, BusViolation, Command, DramDevice, SharedBus, SpeedBin, TimingParams,
    TraceEntry,
};
use nvdimmc_sim::SimTime;
use proptest::prelude::*;

fn t() -> TimingParams {
    TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
}

fn entry(at: SimTime, cmd: Command) -> TraceEntry {
    TraceEntry::observe(BusMaster::HostImc, at, cmd, &t())
}

fn act(at: SimTime, bank: BankAddr) -> TraceEntry {
    entry(at, Command::Activate { bank, row: 1 })
}

fn rd(at: SimTime, bank: BankAddr) -> TraceEntry {
    entry(
        at,
        Command::Read {
            bank,
            col: 0,
            auto_precharge: false,
        },
    )
}

fn wr(at: SimTime, bank: BankAddr) -> TraceEntry {
    entry(
        at,
        Command::Write {
            bank,
            col: 0,
            auto_precharge: false,
        },
    )
}

fn pre(at: SimTime, bank: BankAddr) -> TraceEntry {
    entry(at, Command::Precharge { bank })
}

/// Pushes `cmd` through the real bus with the iMC's retry discipline:
/// timing and refresh-busy rejections carry the earliest legal instant, so
/// the accepted time is model-legal by construction. Returns that time.
fn issue_retry(bus: &mut SharedBus, mut at: SimTime, cmd: Command) -> SimTime {
    for _ in 0..64 {
        match bus.issue(BusMaster::HostImc, at, cmd) {
            Ok(_) => return at,
            Err(BusViolation::Timing { legal_at, .. }) => at = legal_at,
            Err(BusViolation::CommandDuringRefresh { busy_until, .. }) => at = busy_until,
            Err(other) => panic!("generator produced an ill-formed command: {other}"),
        }
    }
    panic!("no legal slot found for {cmd:?}")
}

proptest! {
    /// Any schedule the model accepts must lint clean: random
    /// (bank, operation, gap) streams, made well-formed by a per-bank
    /// open/closed state machine and made timing-legal by the bus's own
    /// `legal_at` feedback, produce traces with zero diagnostics across
    /// all three trace passes.
    #[test]
    fn model_legal_schedules_lint_clean(
        ops in prop::collection::vec(
            (0u8..BankAddr::COUNT, 0u8..4, 1u64..8),
            1..120,
        )
    ) {
        let p = t();
        let mut bus = SharedBus::new(DramDevice::new(p, 1 << 24));
        bus.attach_recorder();
        let mut open = [false; BankAddr::COUNT as usize];
        let mut now = SimTime::from_ns(10);
        for (sel, op, gap) in ops {
            let bank = BankAddr::from_index(sel);
            let at = now + p.speed.tck() * gap;
            now = if op == 3 {
                // Refresh: close every row first (PREA), then REF.
                let prea = issue_retry(&mut bus, at, Command::PrechargeAll);
                open = [false; BankAddr::COUNT as usize];
                issue_retry(&mut bus, prea + p.speed.tck(), Command::Refresh)
            } else if open[usize::from(sel)] {
                match op {
                    0 => issue_retry(
                        &mut bus,
                        at,
                        Command::Read { bank, col: 0, auto_precharge: false },
                    ),
                    1 => issue_retry(
                        &mut bus,
                        at,
                        Command::Write { bank, col: 0, auto_precharge: false },
                    ),
                    _ => {
                        open[usize::from(sel)] = false;
                        issue_retry(&mut bus, at, Command::Precharge { bank })
                    }
                }
            } else {
                open[usize::from(sel)] = true;
                issue_retry(
                    &mut bus,
                    at,
                    Command::Activate { bank, row: u32::from(sel) },
                )
            };
        }
        let trace = bus.take_trace();
        prop_assert!(!trace.is_empty());
        let report = check_trace(&trace, &p);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// A column command a few cycles inside tRCD fires `timing/tRCD` and
    /// nothing else.
    #[test]
    fn injected_trcd_violation_fires_exactly_trcd(k in 1u64..=3) {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let delta = p.speed.tck() * k;
        let trace = vec![act(t0, b), rd(t0 + p.trcd - delta, b)];
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tRCD");
        prop_assert_eq!(diags[0].at, Some(t0 + p.trcd - delta));
    }

    /// Re-activating a few cycles inside tRP fires `timing/tRP` only.
    #[test]
    fn injected_trp_violation_fires_exactly_trp(k in 1u64..=3) {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let delta = p.speed.tck() * k;
        let pre_at = t0 + p.tras;
        let trace = vec![act(t0, b), pre(pre_at, b), act(pre_at + p.trp - delta, b)];
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tRP");
    }

    /// Precharging a few cycles inside tRAS fires `timing/tRAS` only.
    #[test]
    fn injected_tras_violation_fires_exactly_tras(k in 1u64..=3) {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let delta = p.speed.tck() * k;
        let trace = vec![act(t0, b), pre(t0 + p.tras - delta, b)];
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tRAS");
    }

    /// A second ACTIVATE a few cycles inside tRRD_S fires `timing/tRRD`
    /// only (different bank group, so the short parameter governs).
    #[test]
    fn injected_trrd_violation_fires_exactly_trrd(k in 1u64..=3) {
        let p = t();
        let t0 = SimTime::from_ns(100);
        let delta = p.speed.tck() * k;
        prop_assume!(delta < p.trrd_s);
        let trace = vec![
            act(t0, BankAddr::new(0, 0)),
            act(t0 + p.trrd_s - delta, BankAddr::new(1, 0)),
        ];
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tRRD");
    }

    /// A fifth ACTIVATE inside the four-activate window fires
    /// `timing/tFAW` only, for any tRRD-legal spacing that keeps four
    /// gaps under tFAW.
    #[test]
    fn injected_tfaw_violation_fires_exactly_tfaw(j in 0u64..=2) {
        let p = t();
        let t0 = SimTime::from_ns(100);
        let spacing = p.trrd_l + p.speed.tck() * j;
        prop_assume!(spacing * 4 < p.tfaw);
        let trace: Vec<TraceEntry> = (0..5u64)
            .map(|i| act(t0 + spacing * i, BankAddr::new((i % 4) as u8, (i / 4) as u8)))
            .collect();
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tFAW");
    }

    /// A READ a few cycles inside the write-to-read turnaround fires
    /// `timing/tWTR` only (the spacing stays tCCD-legal).
    #[test]
    fn injected_twtr_violation_fires_exactly_twtr(k in 1u64..=3) {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let delta = p.speed.tck() * k;
        let wr_at = t0 + p.trcd;
        let earliest_read = wr_at + p.tcwl + p.burst_time() + p.twtr;
        prop_assume!(earliest_read - delta >= wr_at + p.tccd_l);
        let trace = vec![act(t0, b), wr(wr_at, b), rd(earliest_read - delta, b)];
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tWTR");
    }

    /// A PRECHARGE a few cycles inside write recovery fires `timing/tWR`
    /// only (the instant is already past tRAS).
    #[test]
    fn injected_twr_violation_fires_exactly_twr(k in 1u64..=3) {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let delta = p.speed.tck() * k;
        let wr_at = t0 + p.trcd;
        let wr_end = wr_at + p.tcwl + p.burst_time();
        prop_assume!(wr_end + p.twr - delta >= t0 + p.tras);
        let trace = vec![act(t0, b), wr(wr_at, b), pre(wr_end + p.twr - delta, b)];
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tWR");
    }

    /// Back-to-back column commands a few cycles inside tCCD_L fire
    /// `timing/tCCD` only (same bank group, so the long parameter
    /// governs).
    #[test]
    fn injected_tccd_violation_fires_exactly_tccd(k in 1u64..=3) {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let delta = p.speed.tck() * k;
        prop_assume!(delta < p.tccd_l);
        let rd_at = t0 + p.trcd;
        let trace = vec![act(t0, b), rd(rd_at, b), rd(rd_at + p.tccd_l - delta, b)];
        let diags = lint_timing(&trace, &p);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].rule, "timing/tCCD");
    }
}
