//! Static configuration lint for [`NvdimmCConfig`].
//!
//! Catches configurations that would *run* but violate the assumptions the
//! NVDIMM-C protocol is built on, before any simulation time is spent:
//!
//! - `config/invalid` — the config fails its own structural validation
//!   (slot geometry, zero queue depths, no extra window at all);
//! - `config/window-too-small` — the extra-tRFC window cannot fit the
//!   worst-case per-window NVMC transfer the config promises
//!   (`window_xfer_bytes`), so CP transactions could never make progress;
//! - `config/host-starved` / `config/host-share-low` — the programmed
//!   tRFC consumes so much of tREFI that the host's share of the bus drops
//!   below 10% (error) or 25% (warning) — the paper's Figure 13 territory;
//! - `config/cache-exceeds-media` — more DRAM cache slots than exported
//!   Z-NAND pages, so part of the cache can never be used;
//! - `config/recovery-out-of-range` — a [`RecoveryParams`] knob outside
//!   its sane operating band (retry ladder 0 or absurdly deep, backoff
//!   that overflows the timeout, CP timeout below the worst legitimate
//!   GC stall);
//! - `config/dump-budget-short` — the battery-backed dump budget cannot
//!   cover a fully dirty cache, so an unlucky power cut silently drops
//!   acked-persisted pages.
//!
//! [`RecoveryParams`]: nvdimmc_core::RecoveryParams

use crate::diag::{Diagnostic, Report};
use nvdimmc_core::{NvdimmCConfig, PAGE_BYTES};
use nvdimmc_sim::SimDuration;

/// Lints `cfg` and returns every finding.
pub fn lint_config(cfg: &NvdimmCConfig) -> Report {
    let mut out = Vec::new();
    if let Err(msg) = cfg.validate() {
        out.push(Diagnostic::error_untimed(
            "config/invalid",
            format!("configuration fails validation: {msg}"),
        ));
    }

    let t = &cfg.timing;
    let window = t.extra_window();
    let needed = window_transfer_duration(cfg);
    if window < needed {
        out.push(Diagnostic::error_untimed(
            "config/window-too-small",
            format!(
                "extra-tRFC window is {window} but a worst-case {}-byte NVMC transfer \
                 needs {needed}; CP transactions cannot complete in one window",
                cfg.window_xfer_bytes
            ),
        ));
    }

    // Host bus share: the fraction of each tREFI period the host keeps.
    let host_share = 1.0 - t.trfc_total / t.trefi;
    if host_share < 0.10 {
        out.push(Diagnostic::error_untimed(
            "config/host-starved",
            format!(
                "programmed tRFC {} of tREFI {} leaves the host only \
                 {:.0}% of the bus",
                t.trfc_total,
                t.trefi,
                host_share * 100.0
            ),
        ));
    } else if host_share < 0.25 {
        out.push(Diagnostic::warning(
            "config/host-share-low",
            format!(
                "programmed tRFC {} of tREFI {} leaves the host only \
                 {:.0}% of the bus (paper Figure 13 territory)",
                t.trfc_total,
                t.trefi,
                host_share * 100.0
            ),
        ));
    }

    // Recovery knobs: each has a sane operating band; outside it the
    // machinery still runs but the recovery story degenerates.
    let r = &cfg.recovery;
    if r.nand_read_retries == 0 {
        out.push(Diagnostic::error_untimed(
            "config/recovery-out-of-range",
            "recovery.nand_read_retries is 0: transient Z-NAND read noise \
             surfaces as uncorrectable instead of being retried"
                .to_string(),
        ));
    } else if r.nand_read_retries > 16 {
        out.push(Diagnostic::warning(
            "config/recovery-out-of-range",
            format!(
                "recovery.nand_read_retries = {} is deeper than any real \
                 read-retry table; uncorrectable reads stall ~{} extra media \
                 reads before surfacing",
                r.nand_read_retries, r.nand_read_retries
            ),
        ));
    }
    if r.cp_backoff > 8 {
        out.push(Diagnostic::warning(
            "config/recovery-out-of-range",
            format!(
                "recovery.cp_backoff = {} grows the attempt timeout {}^4-fold \
                 over the retransmit ladder; a dead FPGA takes minutes to degrade",
                r.cp_backoff, r.cp_backoff
            ),
        ));
    }
    if r.cp_timeout_windows < 256 && r.cp_timeout_windows > 0 {
        out.push(Diagnostic::warning(
            "config/recovery-out-of-range",
            format!(
                "recovery.cp_timeout_windows = {} is below the worst \
                 legitimate NVMC stall (~256 windows behind a GC erase); \
                 expect spurious attempt timeouts",
                r.cp_timeout_windows
            ),
        ));
    }
    if r.cp_max_retransmits > 16 {
        out.push(Diagnostic::warning(
            "config/recovery-out-of-range",
            format!(
                "recovery.cp_max_retransmits = {} keeps a dead mailbox in \
                 the retry ladder far past any plausible recovery",
                r.cp_max_retransmits
            ),
        ));
    }
    if r.dump_slot_budget > 0 && r.dump_slot_budget < cfg.cache_slots {
        out.push(Diagnostic::error_untimed(
            "config/dump-budget-short",
            format!(
                "recovery.dump_slot_budget = {} cannot cover the {} cache \
                 slots; a power cut with a fully dirty cache drops \
                 acked-persisted pages",
                r.dump_slot_budget, cfg.cache_slots
            ),
        ));
    }

    let cache_bytes = cfg.cache_slots * PAGE_BYTES;
    let media_bytes = cfg.nvmc.ftl.export_pages() * u64::from(cfg.nvmc.ftl.geometry.page_bytes);
    if cache_bytes > media_bytes {
        out.push(Diagnostic::warning(
            "config/cache-exceeds-media",
            format!(
                "{cache_bytes} bytes of DRAM cache over only {media_bytes} bytes of \
                 exported media; the surplus slots can never hold distinct pages"
            ),
        ));
    }

    Report::from_diagnostics(out)
}

/// Worst-case duration of one `window_xfer_bytes` NVMC transfer inside a
/// window: open the row, stream every burst at tCCD_L, wait out the last
/// burst, close the row (mirrors the FPGA's conservative DMA budget).
fn window_transfer_duration(cfg: &NvdimmCConfig) -> SimDuration {
    let t = &cfg.timing;
    let bursts = cfg.window_xfer_bytes.div_ceil(t.burst_bytes());
    t.trcd + t.tccd_l * bursts + t.tcl + t.burst_time() + t.trtp.max(t.twr) + t.trp
}

/// Panics with the rendered report if `cfg` has error-severity findings.
/// Warnings are printed but tolerated. Call this from example and bench
/// entry points so a bad configuration dies loudly before the run.
///
/// # Panics
///
/// Panics when the lint reports at least one error.
pub fn assert_config_clean(cfg: &NvdimmCConfig) {
    let report = lint_config(cfg);
    if report.errors().count() > 0 {
        panic!("nvdimmc-check config lint failed:\n{report}");
    }
    for w in report.warnings() {
        eprintln!("nvdimmc-check: {w}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::{SpeedBin, TimingParams};

    #[test]
    fn shipped_configs_have_no_errors() {
        for cfg in [
            NvdimmCConfig::small_for_tests(),
            NvdimmCConfig::figure_scale(),
            NvdimmCConfig::poc(),
        ] {
            let r = lint_config(&cfg);
            assert_eq!(r.errors().count(), 0, "{r}");
        }
    }

    #[test]
    fn trefi_sweep_configs_stay_clean_of_errors() {
        // The tune_refresh example sweeps tREFI down to 1.95us; host share
        // is still ~36%, which must not trip the starvation rules.
        for us in [7.8, 3.9, 1.95] {
            let cfg = NvdimmCConfig::small_for_tests().with_trefi(SimDuration::from_us(us));
            let r = lint_config(&cfg);
            assert!(r.is_clean(), "tREFI {us}us: {r}");
        }
    }

    #[test]
    fn invalid_config_is_flagged() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = 0;
        let r = lint_config(&cfg);
        assert!(r.by_rule("config/invalid").count() >= 1, "{r}");
    }

    #[test]
    fn tiny_window_is_flagged() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        // 1 tCK of extra window: validation passes (non-zero) but no 4 KB
        // transfer fits.
        cfg.timing = TimingParams::jedec(SpeedBin::Ddr4_1600)
            .with_trfc_total(SimDuration::from_ns(350) + SpeedBin::Ddr4_1600.tck());
        let r = lint_config(&cfg);
        assert!(r.by_rule("config/window-too-small").count() == 1, "{r}");
    }

    #[test]
    fn starved_host_is_flagged() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        // tREFI barely above tRFC: host keeps ~7% of the bus.
        cfg.timing = cfg.timing.with_trefi(SimDuration::from_ns(1350));
        let r = lint_config(&cfg);
        assert!(r.by_rule("config/host-starved").count() == 1, "{r}");
    }

    #[test]
    fn low_host_share_warns() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        // 1.25us tRFC over 1.6us tREFI: ~22% host share.
        cfg.timing = cfg.timing.with_trefi(SimDuration::from_ns(1600));
        let r = lint_config(&cfg);
        assert!(r.by_rule("config/host-share-low").count() == 1, "{r}");
        assert_eq!(r.errors().count(), 0, "{r}");
    }

    #[test]
    fn cache_larger_than_media_warns() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.dram_bytes = 256 << 20;
        cfg.cache_slots = (128 << 20) / PAGE_BYTES; // media exports 24 MB
        let r = lint_config(&cfg);
        assert!(r.by_rule("config/cache-exceeds-media").count() == 1, "{r}");
    }

    #[test]
    fn zero_retry_ladder_is_an_error() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.recovery.nand_read_retries = 0;
        let r = lint_config(&cfg);
        assert!(
            r.by_rule("config/recovery-out-of-range").count() >= 1,
            "{r}"
        );
        assert!(r.errors().count() >= 1, "{r}");
    }

    #[test]
    fn extreme_recovery_knobs_warn() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.recovery.nand_read_retries = 32;
        cfg.recovery.cp_backoff = 16;
        cfg.recovery.cp_max_retransmits = 64;
        cfg.recovery.cp_timeout_windows = 8;
        let r = lint_config(&cfg);
        assert_eq!(r.by_rule("config/recovery-out-of-range").count(), 4, "{r}");
        assert_eq!(r.errors().count(), 0, "extremes warn, not error: {r}");
    }

    #[test]
    fn short_dump_budget_is_an_error() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.recovery.dump_slot_budget = cfg.cache_slots / 2;
        let r = lint_config(&cfg);
        assert_eq!(r.by_rule("config/dump-budget-short").count(), 1, "{r}");
        assert!(r.errors().count() >= 1, "{r}");
    }

    #[test]
    fn default_recovery_params_lint_clean() {
        let r = lint_config(&NvdimmCConfig::small_for_tests());
        assert_eq!(r.by_rule("config/recovery-out-of-range").count(), 0, "{r}");
        assert_eq!(r.by_rule("config/dump-budget-short").count(), 0, "{r}");
    }

    #[test]
    #[should_panic(expected = "config lint failed")]
    fn assert_config_clean_panics_on_errors() {
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = 0;
        assert_config_clean(&cfg);
    }
}
