//! Refresh-window invariant checker.
//!
//! The NVDIMM-C protocol (paper §III-B, Figure 2b) gives the NVMC exactly
//! one legal opportunity to drive the shared bus: the surplus of the
//! programmed refresh cycle over the silicon's real one. After a snooped
//! REF at `t`, the window is `[t + tRFC_base, t + tRFC_total)` — before it
//! the DRAM is still refreshing, after it the host believes the bus is
//! free again. The per-bank extension (REFpb) scopes the same contract to
//! a single bank: after a snooped REFpb to bank `b` at `t` with stretch
//! `s`, the NVMC owns *bank `b`* during
//! `[t + tRFCpb, t + tRFCpb_total + s × quantum)` while the host keeps
//! using every other bank. This pass proves, from the trace alone, that:
//!
//! - `refresh/nvmc-outside-window` — every NVMC command falls strictly
//!   inside the rank window or its own target bank's window;
//! - `refresh/nvmc-past-close` — every NVMC CA slot *and* data burst also
//!   finishes before its window closes (a burst that straddles the close
//!   collides with the resuming host);
//! - `refresh/host-inside-trfc` — the host issues nothing rank-wide
//!   between a REF and the end of the programmed tRFC, nothing into a
//!   bank whose per-bank window is still open, and nothing rank-scoped
//!   (PREA, REF, …) while *any* per-bank window is open;
//! - `refresh/window-capacity` — the NVMC moves no more data through one
//!   per-bank window than its span can carry at tCCD_L burst spacing;
//! - `refresh/trefi-starved` — out-of-order window placement never
//!   starves a bank: no bank waits more than [`STARVE_LIMIT`] intervening
//!   REFpb slots for its own refresh (rank-mode and short traces are
//!   exempt by construction — the counter only moves on REFpb).

use crate::diag::Diagnostic;
use nvdimmc_ddr::{BankAddr, BusMaster, Command, TimingParams, TraceEntry};
use nvdimmc_sim::SimTime;

/// Maximum number of intervening REFpb commands between two refreshes of
/// the same bank before `refresh/trefi-starved` fires (3 × the 16-bank
/// round-robin period; the scheduler's own forcing limit is well below).
pub const STARVE_LIMIT: u64 = 48;

/// One open per-bank NVMC window and its running byte account.
#[derive(Debug, Clone, Copy)]
struct PbWindow {
    ref_at: SimTime,
    opens: SimTime,
    closes: SimTime,
    nvmc_bursts: u64,
    capacity_bursts: u64,
    capacity_flagged: bool,
}

/// Checks the extra-tRFC window discipline over `trace`.
pub fn check_refresh_windows(trace: &[TraceEntry], t: &TimingParams) -> Vec<Diagnostic> {
    let mut entries: Vec<&TraceEntry> = trace.iter().collect();
    entries.sort_by_key(|e| e.at);

    let mut out = Vec::new();
    // The most recent snooped rank REF, if any: (opens, closes).
    let mut window: Option<(SimTime, SimTime)> = None;
    let mut last_ref_at: Option<SimTime> = None;
    // Per-bank windows from snooped REFpb commands.
    let mut bank_windows: [Option<PbWindow>; BankAddr::COUNT as usize] =
        [None; BankAddr::COUNT as usize];
    // tREFI accounting: total REFpb count and each bank's position in it.
    let mut seen_pb: u64 = 0;
    let mut last_pb: [u64; BankAddr::COUNT as usize] = [0; BankAddr::COUNT as usize];

    for e in entries {
        if matches!(e.cmd, Command::Refresh) {
            last_ref_at = Some(e.at);
            window = Some(t.nvmc_window_bounds(e.at));
            continue;
        }
        if let Command::RefreshBank { bank, stretch } = e.cmd {
            let idx = usize::from(bank.index());
            seen_pb += 1;
            let intervening = seen_pb - 1 - last_pb[idx];
            if intervening > STARVE_LIMIT {
                out.push(
                    Diagnostic::error(
                        "refresh/trefi-starved",
                        e.at,
                        format!(
                            "[{}] {bank} waited {intervening} REFpb slots for its own \
                             refresh (limit {STARVE_LIMIT}) — tREFI accounting broken",
                            e.master
                        ),
                    )
                    .with_commands(vec![e.cmd]),
                );
            }
            last_pb[idx] = seen_pb;
            if let Some(w) = bank_windows[idx] {
                if e.at < w.closes {
                    out.push(
                        Diagnostic::error(
                            "refresh/host-inside-trfc",
                            e.at,
                            format!(
                                "[{}] REFpb to {bank} at {} inside that bank's still-open \
                                 window (REFpb at {}, ends {})",
                                e.master, e.at, w.ref_at, w.closes
                            ),
                        )
                        .with_commands(vec![e.cmd]),
                    );
                }
            }
            let (opens, closes) = t.nvmc_window_bounds_pb(e.at, stretch);
            bank_windows[idx] = Some(PbWindow {
                ref_at: e.at,
                opens,
                closes,
                nvmc_bursts: 0,
                capacity_bursts: closes.saturating_since(opens).div_ceil(t.tccd_l) + 1,
                capacity_flagged: false,
            });
            continue;
        }
        match e.master {
            BusMaster::Nvmc => {
                let rank_hit = window.filter(|&(opens, closes)| e.at >= opens && e.at < closes);
                let bank_hit = e
                    .cmd
                    .bank()
                    .map(|b| usize::from(b.index()))
                    .and_then(|idx| bank_windows[idx].as_mut())
                    .filter(|w| e.at >= w.opens && e.at < w.closes);
                if let Some((_, closes)) = rank_hit {
                    lint_past_close(e, closes, &mut out);
                } else if let Some(w) = bank_hit {
                    lint_past_close(e, w.closes, &mut out);
                    if e.cmd.is_data_transfer() {
                        w.nvmc_bursts += 1;
                        if w.nvmc_bursts > w.capacity_bursts && !w.capacity_flagged {
                            w.capacity_flagged = true;
                            let (bytes, cap) = (w.nvmc_bursts * 64, w.capacity_bursts * 64);
                            out.push(
                                Diagnostic::error(
                                    "refresh/window-capacity",
                                    e.at,
                                    format!(
                                        "[NVMC] {bytes} bytes pushed through the per-bank \
                                         window [{}, {}) which carries at most {cap} bytes \
                                         at tCCD_L spacing",
                                        w.opens, w.closes
                                    ),
                                )
                                .with_commands(vec![e.cmd]),
                            );
                        }
                    }
                } else {
                    let detail = match (window, e.cmd.bank()) {
                        (Some((opens, closes)), _) => {
                            format!("outside the extra-tRFC window [{opens}, {closes})")
                        }
                        (None, Some(b)) => {
                            format!("with no rank window and no open window for {b}")
                        }
                        (None, None) => "before any snooped REF — no window exists".to_string(),
                    };
                    out.push(
                        Diagnostic::error(
                            "refresh/nvmc-outside-window",
                            e.at,
                            format!("[NVMC] {:?} at {} {detail}", e.cmd, e.at),
                        )
                        .with_commands(vec![e.cmd]),
                    );
                }
            }
            BusMaster::HostImc => {
                if let (Some(ref_at), Some((_, closes))) = (last_ref_at, window) {
                    if e.at > ref_at && e.at < closes {
                        out.push(
                            Diagnostic::error(
                                "refresh/host-inside-trfc",
                                e.at,
                                format!(
                                    "[host iMC] {:?} at {} inside the programmed tRFC it \
                                     promised to honour (REF at {ref_at}, ends {closes})",
                                    e.cmd, e.at
                                ),
                            )
                            .with_commands(vec![e.cmd]),
                        );
                    }
                }
                match e.cmd.bank() {
                    Some(b) => {
                        let idx = usize::from(b.index());
                        if let Some(w) = bank_windows[idx] {
                            if e.at > w.ref_at && e.at < w.closes {
                                out.push(
                                    Diagnostic::error(
                                        "refresh/host-inside-trfc",
                                        e.at,
                                        format!(
                                            "[host iMC] {:?} at {} inside {b}'s per-bank \
                                             window (REFpb at {}, ends {})",
                                            e.cmd, e.at, w.ref_at, w.closes
                                        ),
                                    )
                                    .with_commands(vec![e.cmd]),
                                );
                            } else if e.at >= w.closes {
                                bank_windows[idx] = None;
                            }
                        }
                    }
                    None if !matches!(e.cmd, Command::Deselect) => {
                        // Rank-scoped host commands need every bank quiet.
                        if let Some(w) = bank_windows
                            .iter()
                            .flatten()
                            .filter(|w| e.at > w.ref_at && e.at < w.closes)
                            .max_by_key(|w| w.closes)
                        {
                            out.push(
                                Diagnostic::error(
                                    "refresh/host-inside-trfc",
                                    e.at,
                                    format!(
                                        "[host iMC] rank-scoped {:?} at {} while a per-bank \
                                         window is open (REFpb at {}, ends {})",
                                        e.cmd, e.at, w.ref_at, w.closes
                                    ),
                                )
                                .with_commands(vec![e.cmd]),
                            );
                        }
                    }
                    None => {}
                }
            }
        }
    }
    // End-of-trace starvation sweep: a bank the scheduler silently dropped
    // never reaches the mid-trace check above.
    if let Some(at) = trace.iter().map(|e| e.at).max() {
        for (idx, &last) in last_pb.iter().enumerate() {
            let waited = seen_pb - last;
            if waited > STARVE_LIMIT {
                out.push(Diagnostic::error(
                    "refresh/trefi-starved",
                    at,
                    format!(
                        "{} still waiting after {waited} REFpb slots at end of trace \
                         (limit {STARVE_LIMIT})",
                        BankAddr::from_index(idx as u8)
                    ),
                ));
            }
        }
    }
    out
}

/// Flags an NVMC entry whose data burst runs past `closes`.
fn lint_past_close(e: &TraceEntry, closes: SimTime, out: &mut Vec<Diagnostic>) {
    if let Some(end) = e
        .data
        .map(|(_, data_end)| data_end)
        .filter(|&end| end > closes)
    {
        out.push(
            Diagnostic::error(
                "refresh/nvmc-past-close",
                e.at,
                format!(
                    "[NVMC] {:?} occupies the bus until {end}, past the \
                     window close at {closes}",
                    e.cmd
                ),
            )
            .with_commands(vec![e.cmd]),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::SpeedBin;
    use nvdimmc_sim::SimDuration;

    fn t() -> TimingParams {
        TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
    }

    fn entry(master: BusMaster, at: SimTime, cmd: Command) -> TraceEntry {
        TraceEntry::observe(master, at, cmd, &t())
    }

    fn act(master: BusMaster, at: SimTime) -> TraceEntry {
        act_bank(master, at, BankAddr::new(0, 0))
    }

    fn act_bank(master: BusMaster, at: SimTime, bank: BankAddr) -> TraceEntry {
        entry(master, at, Command::Activate { bank, row: 1 })
    }

    fn refpb(at: SimTime, bank: BankAddr, stretch: u8) -> TraceEntry {
        entry(
            BusMaster::HostImc,
            at,
            Command::RefreshBank { bank, stretch },
        )
    }

    fn rd_bank(master: BusMaster, at: SimTime, bank: BankAddr) -> TraceEntry {
        entry(
            master,
            at,
            Command::Read {
                bank,
                col: 0,
                auto_precharge: false,
            },
        )
    }

    #[test]
    fn nvmc_inside_window_is_clean() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            act(BusMaster::Nvmc, ref_at + p.trfc_base),
            entry(
                BusMaster::Nvmc,
                ref_at + p.trfc_base + p.tras,
                Command::Precharge {
                    bank: BankAddr::new(0, 0),
                },
            ),
            act(BusMaster::HostImc, ref_at + p.trfc_total),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nvmc_before_window_opens_is_flagged() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            // Still inside the silicon refresh: tRFC_base has not elapsed.
            act(
                BusMaster::Nvmc,
                ref_at + p.trfc_base - SimDuration::from_ns(1),
            ),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-outside-window");
    }

    #[test]
    fn nvmc_without_any_ref_is_flagged() {
        let diags = check_refresh_windows(&[act(BusMaster::Nvmc, SimTime::from_ns(50))], &t());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-outside-window");
        assert!(
            diags[0].message.contains("no rank window"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn nvmc_burst_straddling_close_is_flagged() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let closes = ref_at + p.trfc_total;
        // A read issued so late its data burst runs past the close.
        let rd_at = closes - SimDuration::from_ns(1);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            rd_bank(BusMaster::Nvmc, rd_at, BankAddr::new(0, 0)),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-past-close");
    }

    #[test]
    fn host_inside_programmed_trfc_is_flagged() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            // The host breaks its own promise and issues mid-window.
            act(
                BusMaster::HostImc,
                ref_at + p.trfc_base + SimDuration::from_ns(10),
            ),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/host-inside-trfc");
    }

    #[test]
    fn host_at_window_close_is_clean() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            act(BusMaster::HostImc, ref_at + p.trfc_total),
        ];
        assert!(check_refresh_windows(&trace, &p).is_empty());
    }

    #[test]
    fn per_bank_host_parallelism_is_clean() {
        let p = t();
        let target = BankAddr::new(1, 0);
        let other = BankAddr::new(2, 3);
        let ref_at = SimTime::from_us(10);
        let (opens, closes) = p.nvmc_window_bounds_pb(ref_at, 2);
        let trace = vec![
            refpb(ref_at, target, 2),
            // NVMC works the refreshing bank...
            act_bank(BusMaster::Nvmc, opens, target),
            // ...while the host keeps hitting a different bank mid-window.
            act_bank(BusMaster::HostImc, opens + p.trrd_s, other),
            entry(
                BusMaster::Nvmc,
                opens + p.tras,
                Command::Precharge { bank: target },
            ),
            // Host resumes in the refreshed bank after the close.
            act_bank(BusMaster::HostImc, closes, target),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nvmc_in_wrong_bank_during_pb_window_is_flagged() {
        let p = t();
        let target = BankAddr::new(1, 0);
        let ref_at = SimTime::from_us(10);
        let (opens, _) = p.nvmc_window_bounds_pb(ref_at, 0);
        let trace = vec![
            refpb(ref_at, target, 0),
            // The window belongs to BG1BA0; the NVMC strays into BG0BA0.
            act_bank(BusMaster::Nvmc, opens, BankAddr::new(0, 0)),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-outside-window");
    }

    #[test]
    fn host_in_refreshing_bank_mid_window_is_flagged() {
        let p = t();
        let target = BankAddr::new(3, 1);
        let ref_at = SimTime::from_us(10);
        let (opens, _) = p.nvmc_window_bounds_pb(ref_at, 1);
        let trace = vec![
            refpb(ref_at, target, 1),
            act_bank(BusMaster::HostImc, opens, target),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/host-inside-trfc");
    }

    #[test]
    fn rank_scoped_host_command_during_pb_window_is_flagged() {
        let p = t();
        let target = BankAddr::new(0, 2);
        let ref_at = SimTime::from_us(10);
        let (opens, _) = p.nvmc_window_bounds_pb(ref_at, 0);
        let trace = vec![
            refpb(ref_at, target, 0),
            entry(BusMaster::HostImc, opens, Command::PrechargeAll),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/host-inside-trfc");
        assert!(diags[0].message.contains("rank-scoped"));
    }

    #[test]
    fn nvmc_past_pb_close_is_flagged() {
        let p = t();
        let target = BankAddr::new(2, 2);
        let ref_at = SimTime::from_us(10);
        let (_, closes) = p.nvmc_window_bounds_pb(ref_at, 0);
        let trace = vec![
            refpb(ref_at, target, 0),
            rd_bank(BusMaster::Nvmc, closes - SimDuration::from_ns(1), target),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-past-close");
    }

    #[test]
    fn overstuffed_pb_window_fires_capacity_once() {
        let p = t();
        let target = BankAddr::new(0, 0);
        let ref_at = SimTime::from_us(10);
        let (opens, closes) = p.nvmc_window_bounds_pb(ref_at, 0);
        let cap = closes.saturating_since(opens).div_ceil(p.tccd_l) + 1;
        let mut trace = vec![refpb(ref_at, target, 0)];
        // Physically impossible back-to-back bursts (far below tCCD_L
        // spacing) so the count overruns the window's carrying capacity.
        // The timing linter would flag the spacing; this pass only accounts
        // for bytes and must fire exactly once.
        let step = SimDuration::from_ps(100);
        for i in 0..(cap + 8) {
            let mut e = rd_bank(BusMaster::Nvmc, opens + step * i, target);
            // Pretend the DQ burst fits the window so only capacity trips.
            e.data = Some((e.at, e.at + step));
            trace.push(e);
        }
        let diags = check_refresh_windows(&trace, &p);
        let capacity: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "refresh/window-capacity")
            .collect();
        assert_eq!(capacity.len(), 1, "{diags:?}");
    }

    #[test]
    fn starved_bank_is_flagged_at_end_of_trace() {
        let p = t();
        let lucky = BankAddr::new(0, 0);
        let mut trace = Vec::new();
        let spacing = p.trefi_pb();
        // One bank hogs every REFpb slot; after STARVE_LIMIT + 1 slots the
        // other fifteen banks are each overdue.
        for i in 0..(STARVE_LIMIT + 1) {
            trace.push(refpb(SimTime::from_us(10) + spacing * i, lucky, 0));
        }
        let diags = check_refresh_windows(&trace, &p);
        let starved: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "refresh/trefi-starved")
            .collect();
        assert_eq!(starved.len(), 15, "{diags:?}");
    }

    #[test]
    fn fair_round_robin_never_starves() {
        let p = t();
        let mut trace = Vec::new();
        let spacing = p.trefi_pb();
        for i in 0..(STARVE_LIMIT * 4) {
            trace.push(refpb(
                SimTime::from_us(10) + spacing * i,
                BankAddr::from_index((i % 16) as u8),
                0,
            ));
        }
        let diags = check_refresh_windows(&trace, &p);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
