//! Refresh-window invariant checker.
//!
//! The NVDIMM-C protocol (paper §III-B, Figure 2b) gives the NVMC exactly
//! one legal opportunity to drive the shared bus: the surplus of the
//! programmed refresh cycle over the silicon's real one. After a snooped
//! REF at `t`, the window is `[t + tRFC_base, t + tRFC_total)` — before it
//! the DRAM is still refreshing, after it the host believes the bus is
//! free again. This pass proves, from the trace alone, that:
//!
//! - `refresh/nvmc-outside-window` — every NVMC command falls strictly
//!   inside such a window;
//! - `refresh/nvmc-past-close` — every NVMC CA slot *and* data burst also
//!   finishes before the window closes (a burst that straddles the close
//!   collides with the resuming host);
//! - `refresh/host-inside-trfc` — the host issues nothing between a REF
//!   and the end of the programmed tRFC it promised to honour.

use crate::diag::Diagnostic;
use nvdimmc_ddr::{BusMaster, Command, TimingParams, TraceEntry};
use nvdimmc_sim::SimTime;

/// Checks the extra-tRFC window discipline over `trace`.
pub fn check_refresh_windows(trace: &[TraceEntry], t: &TimingParams) -> Vec<Diagnostic> {
    let mut entries: Vec<&TraceEntry> = trace.iter().collect();
    entries.sort_by_key(|e| e.at);

    let mut out = Vec::new();
    // The most recent snooped REF, if any: (opens, closes, host_resumes).
    let mut window: Option<(SimTime, SimTime)> = None;
    let mut last_ref_at: Option<SimTime> = None;

    for e in entries {
        if matches!(e.cmd, Command::Refresh) {
            last_ref_at = Some(e.at);
            window = Some(t.nvmc_window_bounds(e.at));
            continue;
        }
        match e.master {
            BusMaster::Nvmc => match window {
                Some((opens, closes)) if e.at >= opens && e.at < closes => {
                    if let Some((_, data_end)) = e.data.filter(|&(_, end)| end > closes) {
                        let end = data_end;
                        out.push(
                            Diagnostic::error(
                                "refresh/nvmc-past-close",
                                e.at,
                                format!(
                                    "[NVMC] {:?} occupies the bus until {end}, past the \
                                     window close at {closes}",
                                    e.cmd
                                ),
                            )
                            .with_commands(vec![e.cmd]),
                        );
                    }
                }
                Some((opens, closes)) => {
                    out.push(
                        Diagnostic::error(
                            "refresh/nvmc-outside-window",
                            e.at,
                            format!(
                                "[NVMC] {:?} at {} outside the extra-tRFC window \
                                 [{opens}, {closes})",
                                e.cmd, e.at
                            ),
                        )
                        .with_commands(vec![e.cmd]),
                    );
                }
                None => {
                    out.push(
                        Diagnostic::error(
                            "refresh/nvmc-outside-window",
                            e.at,
                            format!(
                                "[NVMC] {:?} at {} before any snooped REF — no window exists",
                                e.cmd, e.at
                            ),
                        )
                        .with_commands(vec![e.cmd]),
                    );
                }
            },
            BusMaster::HostImc => {
                if let (Some(ref_at), Some((_, closes))) = (last_ref_at, window) {
                    if e.at > ref_at && e.at < closes {
                        out.push(
                            Diagnostic::error(
                                "refresh/host-inside-trfc",
                                e.at,
                                format!(
                                    "[host iMC] {:?} at {} inside the programmed tRFC it \
                                     promised to honour (REF at {ref_at}, ends {closes})",
                                    e.cmd, e.at
                                ),
                            )
                            .with_commands(vec![e.cmd]),
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::{BankAddr, SpeedBin};
    use nvdimmc_sim::SimDuration;

    fn t() -> TimingParams {
        TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
    }

    fn entry(master: BusMaster, at: SimTime, cmd: Command) -> TraceEntry {
        TraceEntry::observe(master, at, cmd, &t())
    }

    fn act(master: BusMaster, at: SimTime) -> TraceEntry {
        entry(
            master,
            at,
            Command::Activate {
                bank: BankAddr::new(0, 0),
                row: 1,
            },
        )
    }

    #[test]
    fn nvmc_inside_window_is_clean() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            act(BusMaster::Nvmc, ref_at + p.trfc_base),
            entry(
                BusMaster::Nvmc,
                ref_at + p.trfc_base + p.tras,
                Command::Precharge {
                    bank: BankAddr::new(0, 0),
                },
            ),
            act(BusMaster::HostImc, ref_at + p.trfc_total),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nvmc_before_window_opens_is_flagged() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            // Still inside the silicon refresh: tRFC_base has not elapsed.
            act(
                BusMaster::Nvmc,
                ref_at + p.trfc_base - SimDuration::from_ns(1),
            ),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-outside-window");
    }

    #[test]
    fn nvmc_without_any_ref_is_flagged() {
        let diags = check_refresh_windows(&[act(BusMaster::Nvmc, SimTime::from_ns(50))], &t());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-outside-window");
        assert!(diags[0].message.contains("no window"));
    }

    #[test]
    fn nvmc_burst_straddling_close_is_flagged() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let closes = ref_at + p.trfc_total;
        // A read issued so late its data burst runs past the close.
        let rd_at = closes - SimDuration::from_ns(1);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            entry(
                BusMaster::Nvmc,
                rd_at,
                Command::Read {
                    bank: BankAddr::new(0, 0),
                    col: 0,
                    auto_precharge: false,
                },
            ),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/nvmc-past-close");
    }

    #[test]
    fn host_inside_programmed_trfc_is_flagged() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            // The host breaks its own promise and issues mid-window.
            act(
                BusMaster::HostImc,
                ref_at + p.trfc_base + SimDuration::from_ns(10),
            ),
        ];
        let diags = check_refresh_windows(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "refresh/host-inside-trfc");
    }

    #[test]
    fn host_at_window_close_is_clean() {
        let p = t();
        let ref_at = SimTime::from_us(10);
        let trace = vec![
            entry(BusMaster::HostImc, ref_at, Command::Refresh),
            act(BusMaster::HostImc, ref_at + p.trfc_total),
        ];
        assert!(check_refresh_windows(&trace, &p).is_empty());
    }
}
