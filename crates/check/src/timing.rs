//! JEDEC timing linter: an independent replay of the DDR4 rulebook over a
//! recorded command trace.
//!
//! The [`DramDevice`](nvdimmc_ddr::DramDevice) enforces these constraints
//! inline, but a bug there would vouch for itself — the simulator would
//! happily accept its own illegal schedules. This linter replays the
//! trace against the shared `TimingParams` rulebook (the derived-window
//! methods exported by `nvdimmc-ddr`), tracking bank/rank state
//! independently of the device model so the two implementations
//! cross-check each other without duplicating the JEDEC arithmetic.
//!
//! Rules: `timing/tRCD`, `timing/tCL`, `timing/tCWL`, `timing/tRP`,
//! `timing/tRAS`, `timing/tRRD`, `timing/tFAW`, `timing/tWR`,
//! `timing/tRTP`, `timing/tWTR`, `timing/tCCD`, `timing/tRFC`, plus
//! `timing/bank-state` for schedules that are ill-formed before any
//! interval question arises (column command to a closed bank, double
//! ACTIVATE).

use crate::diag::Diagnostic;
use nvdimmc_ddr::{BankAddr, Command, TimingParams, TraceEntry};
use nvdimmc_sim::SimTime;
use std::collections::VecDeque;

/// Linter view of one bank: enough state to re-derive every per-bank
/// earliest-legal instant from the trace alone.
#[derive(Debug, Clone, Copy)]
struct BankLint {
    open: bool,
    earliest_act: SimTime,
    earliest_rw: SimTime,
    last_act: SimTime,
    last_read: Option<SimTime>,
    last_write_data_end: Option<SimTime>,
}

impl BankLint {
    fn new() -> Self {
        BankLint {
            open: false,
            earliest_act: SimTime::ZERO,
            earliest_rw: SimTime::ZERO,
            last_act: SimTime::ZERO,
            last_read: None,
            last_write_data_end: None,
        }
    }

    /// Earliest legal PRECHARGE given what this bank has seen since its
    /// last ACTIVATE (tRAS, tRTP, tWR each gate it independently) — the
    /// derivation lives in the `ddr` rulebook so it cannot drift.
    fn earliest_pre(&self, t: &TimingParams) -> SimTime {
        t.earliest_precharge(self.last_act, self.last_read, self.last_write_data_end)
    }
}

/// Whole-rank linter state.
struct RankLint {
    banks: Vec<BankLint>,
    earliest_act_any: SimTime,
    earliest_act_group: [SimTime; BankAddr::GROUPS as usize],
    recent_acts: VecDeque<SimTime>,
    /// Last column command: (issue time, bank group) — for JEDEC tCCD_S/L.
    last_col: Option<(SimTime, u8)>,
    /// Earliest READ after the last WRITE burst (rank-wide tWTR).
    earliest_read: SimTime,
    /// End of the silicon refresh (tRFC_base after REF).
    refresh_busy_until: SimTime,
}

impl RankLint {
    fn new() -> Self {
        RankLint {
            banks: vec![BankLint::new(); usize::from(BankAddr::COUNT)],
            earliest_act_any: SimTime::ZERO,
            earliest_act_group: [SimTime::ZERO; BankAddr::GROUPS as usize],
            recent_acts: VecDeque::new(),
            last_col: None,
            earliest_read: SimTime::ZERO,
            refresh_busy_until: SimTime::ZERO,
        }
    }
}

fn violation(e: &TraceEntry, rule: &'static str, legal_at: SimTime) -> Diagnostic {
    Diagnostic::error(
        rule,
        e.at,
        format!(
            "[{}] issued at {}, earliest legal instant is {legal_at}",
            e.master, e.at
        ),
    )
    .with_commands(vec![e.cmd])
}

/// Lints `trace` against the JEDEC timing rulebook derived from `t`.
///
/// The trace is replayed in time order (entries are sorted by issue time
/// first, so interleaved multi-master captures are handled). Every finding
/// is an error-severity [`Diagnostic`] carrying the rule id, the instant
/// and the offending command.
pub fn lint_timing(trace: &[TraceEntry], t: &TimingParams) -> Vec<Diagnostic> {
    let mut entries: Vec<&TraceEntry> = trace.iter().collect();
    entries.sort_by_key(|e| e.at);

    let mut rank = RankLint::new();
    let mut out = Vec::new();

    for e in entries {
        // Silicon is unavailable while the cells refresh; everything except
        // DES is illegal before tRFC_base elapses.
        if !matches!(e.cmd, Command::Deselect) && e.at < rank.refresh_busy_until {
            out.push(violation(e, "timing/tRFC", rank.refresh_busy_until));
        }
        match e.cmd {
            Command::Activate { bank, .. } => lint_activate(e, bank, t, &mut rank, &mut out),
            Command::Read { bank, .. } | Command::Write { bank, .. } => {
                lint_column(e, bank, t, &mut rank, &mut out);
            }
            Command::Precharge { bank } => {
                lint_precharge(e, bank, t, &mut rank, &mut out);
            }
            Command::PrechargeAll => {
                for i in 0..BankAddr::COUNT {
                    lint_precharge(e, BankAddr::from_index(i), t, &mut rank, &mut out);
                }
            }
            Command::Refresh => lint_refresh(e, t, &mut rank, &mut out),
            Command::RefreshBank { bank, .. } => lint_refresh_bank(e, bank, t, &mut rank, &mut out),
            Command::SelfRefreshEnter
            | Command::SelfRefreshExit
            | Command::ModeRegisterSet { .. }
            | Command::ZqCalibration
            | Command::Deselect => {}
        }
    }
    out
}

fn lint_activate(
    e: &TraceEntry,
    bank: BankAddr,
    t: &TimingParams,
    rank: &mut RankLint,
    out: &mut Vec<Diagnostic>,
) {
    let group = usize::from(bank.group);
    if e.at < rank.earliest_act_any {
        out.push(violation(e, "timing/tRRD", rank.earliest_act_any));
    } else if e.at < rank.earliest_act_group[group] {
        out.push(violation(e, "timing/tRRD", rank.earliest_act_group[group]));
    }
    // Four-activate window.
    while let Some(&front) = rank.recent_acts.front() {
        if e.at.saturating_since(front) >= t.tfaw {
            rank.recent_acts.pop_front();
        } else {
            break;
        }
    }
    if rank.recent_acts.len() >= 4 {
        let legal = *rank.recent_acts.front().expect("non-empty") + t.tfaw;
        out.push(violation(e, "timing/tFAW", legal));
    }
    let b = &mut rank.banks[usize::from(bank.index())];
    if b.open {
        out.push(
            Diagnostic::error(
                "timing/bank-state",
                e.at,
                format!(
                    "[{}] ACTIVATE to {bank} which already has an open row",
                    e.master
                ),
            )
            .with_commands(vec![e.cmd]),
        );
    } else if e.at < b.earliest_act {
        out.push(violation(e, "timing/tRP", b.earliest_act));
    }
    b.open = true;
    b.last_act = e.at;
    b.earliest_rw = e.at + t.trcd;
    b.last_read = None;
    b.last_write_data_end = None;
    rank.recent_acts.push_back(e.at);
    rank.earliest_act_any = e.at + t.act_to_act_gap(false);
    rank.earliest_act_group[group] = e.at + t.act_to_act_gap(true);
}

fn lint_column(
    e: &TraceEntry,
    bank: BankAddr,
    t: &TimingParams,
    rank: &mut RankLint,
    out: &mut Vec<Diagnostic>,
) {
    let is_read = matches!(e.cmd, Command::Read { .. });
    // JEDEC column-to-column spacing: tCCD_L within a bank group, tCCD_S
    // across groups.
    if let Some((prev_at, prev_group)) = rank.last_col {
        let gap = t.col_to_col_gap(prev_group == bank.group);
        if e.at < prev_at + gap {
            out.push(violation(e, "timing/tCCD", prev_at + gap));
        }
    }
    // Write-to-read turnaround is rank-wide.
    if is_read && e.at < rank.earliest_read {
        out.push(violation(e, "timing/tWTR", rank.earliest_read));
    }
    let auto_precharge = matches!(
        e.cmd,
        Command::Read {
            auto_precharge: true,
            ..
        } | Command::Write {
            auto_precharge: true,
            ..
        }
    );
    let b = &mut rank.banks[usize::from(bank.index())];
    if !b.open {
        out.push(
            Diagnostic::error(
                "timing/bank-state",
                e.at,
                format!(
                    "[{}] column command to {bank} which has no open row (paper case C2)",
                    e.master
                ),
            )
            .with_commands(vec![e.cmd]),
        );
        b.open = true; // limp on so one broken entry yields one finding
        b.last_act = e.at;
        b.earliest_rw = e.at;
    } else if e.at < b.earliest_rw {
        out.push(violation(e, "timing/tRCD", b.earliest_rw));
    }
    // The recorded DQ burst must sit exactly tCL (reads) / tCWL (writes)
    // after the column command — a mismatch means the recorder or the data
    // path drifted from the rulebook.
    let rule = if is_read { "timing/tCL" } else { "timing/tCWL" };
    let expect = t.dq_window(e.at, is_read);
    if e.data != Some(expect) {
        out.push(
            Diagnostic::error(
                rule,
                e.at,
                format!(
                    "[{}] DQ occupancy {:?} does not match the {} + burst window {:?}",
                    e.master,
                    e.data,
                    if is_read { "tCL" } else { "tCWL" },
                    expect
                ),
            )
            .with_commands(vec![e.cmd]),
        );
    }
    let data_end = e.data.map_or(e.at, |(_, end)| end);
    if is_read {
        b.last_read = Some(e.at);
    } else {
        b.last_write_data_end = Some(data_end);
        rank.earliest_read = t.read_after_write(data_end);
    }
    if auto_precharge {
        let when = b.earliest_pre(t).max(data_end);
        b.open = false;
        b.earliest_act = b.earliest_act.max(when + t.trp);
    }
    rank.last_col = Some((e.at, bank.group));
}

fn lint_precharge(
    e: &TraceEntry,
    bank: BankAddr,
    t: &TimingParams,
    rank: &mut RankLint,
    out: &mut Vec<Diagnostic>,
) {
    let b = &mut rank.banks[usize::from(bank.index())];
    // Precharging an idle bank is a JEDEC NOP; only open banks have
    // interval obligations.
    if b.open {
        if e.at < b.last_act + t.tras {
            out.push(violation(e, "timing/tRAS", b.last_act + t.tras));
        }
        if let Some(rd) = b.last_read {
            if e.at < rd + t.trtp {
                out.push(violation(e, "timing/tRTP", rd + t.trtp));
            }
        }
        if let Some(wr_end) = b.last_write_data_end {
            if e.at < wr_end + t.twr {
                out.push(violation(e, "timing/tWR", wr_end + t.twr));
            }
        }
    }
    b.open = false;
    b.earliest_act = b.earliest_act.max(e.at + t.trp);
}

fn lint_refresh(e: &TraceEntry, t: &TimingParams, rank: &mut RankLint, out: &mut Vec<Diagnostic>) {
    for i in 0..BankAddr::COUNT {
        let b = &rank.banks[usize::from(i)];
        if b.open {
            out.push(
                Diagnostic::error(
                    "timing/bank-state",
                    e.at,
                    format!(
                        "[{}] REFRESH with {} open (PREA required first)",
                        e.master,
                        BankAddr::from_index(i)
                    ),
                )
                .with_commands(vec![e.cmd]),
            );
        } else if e.at < b.earliest_act {
            out.push(violation(e, "timing/tRP", b.earliest_act));
        }
    }
    rank.refresh_busy_until = t.refresh_silicon_ready(e.at);
    for b in &mut rank.banks {
        b.open = false;
        b.earliest_act = b.earliest_act.max(rank.refresh_busy_until);
    }
}

/// Per-bank refresh (REFpb): only the target bank must be precharged and
/// past tRP, and only it is blocked — for `tRFCpb`, not the rank tRFC.
fn lint_refresh_bank(
    e: &TraceEntry,
    bank: BankAddr,
    t: &TimingParams,
    rank: &mut RankLint,
    out: &mut Vec<Diagnostic>,
) {
    let b = &mut rank.banks[usize::from(bank.index())];
    if b.open {
        out.push(
            Diagnostic::error(
                "timing/bank-state",
                e.at,
                format!(
                    "[{}] per-bank REFRESH to {bank} with a row open (PRE required first)",
                    e.master
                ),
            )
            .with_commands(vec![e.cmd]),
        );
    } else if e.at < b.earliest_act {
        out.push(violation(e, "timing/tRP", b.earliest_act));
    }
    b.open = false;
    b.earliest_act = b.earliest_act.max(t.refresh_silicon_ready_pb(e.at));
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::{BusMaster, SpeedBin};
    use nvdimmc_sim::SimDuration;

    fn t() -> TimingParams {
        TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
    }

    fn entry(at: SimTime, cmd: Command) -> TraceEntry {
        TraceEntry::observe(BusMaster::HostImc, at, cmd, &t())
    }

    fn act(at: SimTime, bank: BankAddr) -> TraceEntry {
        entry(at, Command::Activate { bank, row: 1 })
    }

    fn rd(at: SimTime, bank: BankAddr) -> TraceEntry {
        entry(
            at,
            Command::Read {
                bank,
                col: 0,
                auto_precharge: false,
            },
        )
    }

    fn wr(at: SimTime, bank: BankAddr) -> TraceEntry {
        entry(
            at,
            Command::Write {
                bank,
                col: 0,
                auto_precharge: false,
            },
        )
    }

    fn pre(at: SimTime, bank: BankAddr) -> TraceEntry {
        entry(at, Command::Precharge { bank })
    }

    #[test]
    fn legal_open_read_close_sequence_is_clean() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let rd_at = t0 + p.trcd;
        let pre_at = (t0 + p.tras).max(rd_at + p.trtp);
        let trace = vec![act(t0, b), rd(rd_at, b), pre(pre_at, b)];
        let diags = lint_timing(&trace, &p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn early_read_fires_trcd() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let trace = vec![act(t0, b), rd(t0 + SimDuration::from_ns(1), b)];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tRCD");
        assert_eq!(diags[0].commands.len(), 1);
    }

    #[test]
    fn early_reactivate_fires_trp() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let pre_at = t0 + p.tras;
        let trace = vec![
            act(t0, b),
            pre(pre_at, b),
            act(pre_at + SimDuration::from_ns(1), b),
        ];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tRP");
    }

    #[test]
    fn early_precharge_fires_tras() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let trace = vec![act(t0, b), pre(t0 + SimDuration::from_ns(5), b)];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tRAS");
    }

    #[test]
    fn back_to_back_activates_fire_trrd() {
        let p = t();
        let t0 = SimTime::from_ns(100);
        let trace = vec![
            act(t0, BankAddr::new(0, 0)),
            act(t0 + SimDuration::from_ns(1), BankAddr::new(1, 0)),
        ];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tRRD");
    }

    #[test]
    fn five_activates_in_window_fire_tfaw() {
        let p = t();
        let t0 = SimTime::from_ns(100);
        // Five ACTs to distinct groups at exactly tRRD_S spacing: legal for
        // tRRD but the fifth lands inside the four-activate window.
        let spacing = p.trrd_s;
        assert!(spacing * 4 < p.tfaw, "test premise");
        let trace: Vec<TraceEntry> = (0..5)
            .map(|i| {
                act(
                    t0 + spacing * i,
                    BankAddr::new((i % 4) as u8, (i / 4) as u8),
                )
            })
            .collect();
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tFAW");
    }

    #[test]
    fn write_then_early_read_fires_twtr() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let col_at = t0 + p.trcd;
        let trace = vec![act(t0, b), wr(col_at, b), rd(col_at + p.tccd_l, b)];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tWTR");
    }

    #[test]
    fn write_then_early_precharge_fires_twr() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let wr_at = t0 + p.trcd;
        // Past tRAS but inside write recovery.
        let pre_at = (t0 + p.tras).max(wr_at + p.tcwl + p.burst_time());
        let trace = vec![act(t0, b), wr(wr_at, b), pre(pre_at, b)];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tWR");
    }

    #[test]
    fn tight_column_commands_fire_tccd() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let rd_at = t0 + p.trcd;
        let trace = vec![act(t0, b), rd(rd_at, b), rd(rd_at + p.tccd_s, b)];
        // Same bank group: tCCD_L applies, tCCD_S spacing is too tight.
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tCCD");
    }

    #[test]
    fn command_during_refresh_fires_trfc() {
        let p = t();
        let t0 = SimTime::from_ns(100);
        let trace = vec![
            entry(t0, Command::Refresh),
            act(t0 + SimDuration::from_ns(10), BankAddr::new(0, 0)),
        ];
        let diags = lint_timing(&trace, &p);
        assert!(diags.iter().any(|d| d.rule == "timing/tRFC"), "{diags:?}");
    }

    #[test]
    fn per_bank_refresh_blocks_only_its_bank() {
        let p = t();
        let target = BankAddr::new(1, 2);
        let other = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let trace = vec![
            entry(
                t0,
                Command::RefreshBank {
                    bank: target,
                    stretch: 0,
                },
            ),
            // Other banks stay usable during tRFCpb.
            act(t0 + p.trrd_s, other),
            // The refreshing bank itself must wait out tRFCpb.
            act(t0 + SimDuration::from_ns(10), target),
        ];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tRP");
    }

    #[test]
    fn per_bank_refresh_to_open_bank_is_bank_state() {
        let p = t();
        let b = BankAddr::new(2, 1);
        let t0 = SimTime::from_ns(100);
        let trace = vec![
            act(t0, b),
            entry(
                t0 + p.tras,
                Command::RefreshBank {
                    bank: b,
                    stretch: 3,
                },
            ),
        ];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/bank-state");
    }

    #[test]
    fn column_to_closed_bank_is_case_c2() {
        let p = t();
        let trace = vec![rd(SimTime::from_ns(100), BankAddr::new(0, 0))];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/bank-state");
    }

    #[test]
    fn corrupted_dq_interval_fires_tcl() {
        let p = t();
        let b = BankAddr::new(0, 0);
        let t0 = SimTime::from_ns(100);
        let mut bad = rd(t0 + p.trcd, b);
        let (s, e) = bad.data.unwrap();
        bad.data = Some((s - SimDuration::from_ns(1), e));
        let trace = vec![act(t0, b), bad];
        let diags = lint_timing(&trace, &p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "timing/tCL");
    }
}
