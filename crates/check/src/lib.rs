//! # nvdimmc-check — trace-based protocol verifier and lint pass
//!
//! A static-analysis layer over the rest of the simulator. Nothing here
//! affects simulated behaviour; every pass replays *recorded* evidence —
//! a bus-command trace, a persistence journal, or a configuration — and
//! reports violations as structured [`Diagnostic`]s, so a bug in the
//! inline enforcement (bus, device, bank layers) cannot silently vouch
//! for itself.
//!
//! The passes:
//!
//! - [`lint_timing`] — an independent JEDEC DDR4 timing linter
//!   (tRCD/tCL/tRP/tRAS/tRRD/tFAW/tWR/tRTP/tWTR/tCCD/tRFC) over a
//!   [`TraceEntry`] trace captured by
//!   [`TraceRecorder`](nvdimmc_ddr::TraceRecorder);
//! - [`detect_races`] — multi-master CA-slot and DQ-burst interval
//!   overlap detection (paper Figure 2a, case C1);
//! - [`check_refresh_windows`] — proves every NVMC command falls strictly
//!   inside an extra-tRFC window `[tRFC_base, tRFC_total)` after a snooped
//!   REF — or, in per-bank mode, inside its own bank's REFpb window — that
//!   the host honours its programmed tRFC and stays out of refreshing
//!   banks, that no per-bank window carries more data than its span
//!   allows, and that out-of-order window placement never starves a bank
//!   past its tREFI budget;
//! - [`check_persistence`] — pmemcheck-style replay of a
//!   [`PersistEvent`](nvdimmc_host::PersistEvent) journal: every durable
//!   claim must be flush-then-fence ordered;
//! - [`lint_config`] — static [`NvdimmCConfig`](nvdimmc_core::NvdimmCConfig)
//!   invariants (window capacity, tREFI/tRFC ratio, cache-vs-media
//!   geometry), with [`assert_config_clean`] for example/bench entry
//!   points;
//! - [`check_crash`] — the crash-sweep persistence oracle: replays a
//!   power-cut trial's expectation ledger against the parsed
//!   post-recovery record stamps (acked-persisted data survives, no
//!   invented generations, no torn multi-sector records, balanced
//!   power-cut ledger);
//! - [`check_recovery`] — audits a fault campaign's merged
//!   [`RecoveryStats`](nvdimmc_core::RecoveryStats) ledger: every
//!   injected fault must be recovered or surfaced as a typed error,
//!   never silently absorbed;
//! - [`check_health`] — replays a shard's recorded health-transition log
//!   and rebuild ledger: only legal state-machine edges, monotone
//!   timestamps, and no re-admission without a clean rebuild audit
//!   ([`check_system_health`] runs it over every shard).
//!
//! # Example
//!
//! ```
//! use nvdimmc_core::{BlockDevice, NvdimmCConfig, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = System::new(NvdimmCConfig::small_for_tests())?;
//! sys.set_trace_capture(true);
//! sys.write_at(0, &[0xA5u8; 4096])?;
//! let trace = sys.take_trace();
//! let report = nvdimmc_check::check_trace(&trace, &sys.config().timing);
//! assert!(report.is_clean(), "{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod crash;
pub mod diag;
pub mod health;
pub mod persist;
pub mod qos;
pub mod races;
pub mod recovery;
pub mod refresh;
pub mod shards;
pub mod timing;

pub use config::{assert_config_clean, lint_config};
pub use crash::{check_crash, CrashObservation, RecordExpectation, SectorView};
pub use diag::{Diagnostic, Report, Severity};
pub use health::{check_health, check_system_health};
pub use persist::check_persistence;
pub use qos::check_qos;
pub use races::detect_races;
pub use recovery::check_recovery;
pub use refresh::check_refresh_windows;
pub use shards::{check_conservation, check_shards};
pub use timing::lint_timing;

use nvdimmc_ddr::{TimingParams, TraceEntry};

/// Runs every trace-based pass — timing linter, race detector and
/// refresh-window checker — over one recorded trace and merges the
/// findings into a single [`Report`].
pub fn check_trace(trace: &[TraceEntry], timing: &TimingParams) -> Report {
    let mut report = Report::new();
    report.merge(Report::from_diagnostics(lint_timing(trace, timing)));
    report.merge(Report::from_diagnostics(detect_races(trace)));
    report.merge(Report::from_diagnostics(check_refresh_windows(
        trace, timing,
    )));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::{BankAddr, BusMaster, Command, SpeedBin};
    use nvdimmc_sim::SimTime;

    #[test]
    fn check_trace_merges_all_passes() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        // One entry that is simultaneously an NVMC command outside any
        // window AND a column command to a closed bank.
        let e = TraceEntry::observe(
            BusMaster::Nvmc,
            SimTime::from_ns(100),
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
            &t,
        );
        let report = check_trace(&[e], &t);
        assert!(report.by_rule("timing/bank-state").count() == 1, "{report}");
        assert!(
            report.by_rule("refresh/nvmc-outside-window").count() == 1,
            "{report}"
        );
    }

    #[test]
    fn empty_trace_is_clean() {
        let t = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        assert!(check_trace(&[], &t).is_clean());
    }
}
