//! Health-state-machine auditor: proves a shard's recorded lifecycle
//! followed the legal state machine and that every re-admission was
//! earned.
//!
//! The per-shard health machine (see `nvdimmc_core::health`) allows
//! exactly four edges:
//!
//! ```text
//! Healthy ──► Degraded ──► Rebuilding ──► Healthy
//!                 ▲────────────┘
//! ```
//!
//! This pass replays the *recorded* [`HealthTransition`] log and the
//! [`RebuildReport`] ledger — not the live state — so a bug in the
//! transition code cannot vouch for itself. It proves:
//!
//! 1. **Legal edges only.** No shard ever jumped Healthy → Rebuilding
//!    (a rebuild without a fault) or Degraded → Healthy (a re-admission
//!    without a rebuild).
//! 2. **Unbroken chain.** Each transition departs from the state the
//!    previous one arrived at, starting from `Healthy` (the boot state;
//!    a power-cycle rebuild restarts both the clock and the log).
//! 3. **Monotone time.** Transition timestamps never run backwards.
//! 4. **Audited re-admission.** Every `Rebuilding → Healthy` edge is
//!    backed by a rebuild report that was re-admitted with a clean
//!    conservation audit ([`RebuildReport::audit`]): handshake done,
//!    every resident slot scrubbed, every dirty slot written back or
//!    its loss surfaced.

use crate::diag::Diagnostic;
use nvdimmc_core::{HealthState, HealthTransition, MultiChannelSystem, RebuildReport};

/// True for the four edges the health state machine allows.
fn legal_edge(from: HealthState, to: HealthState) -> bool {
    matches!(
        (from, to),
        (HealthState::Healthy, HealthState::Degraded { .. })
            | (HealthState::Degraded { .. }, HealthState::Rebuilding { .. })
            | (HealthState::Rebuilding { .. }, HealthState::Healthy)
            | (HealthState::Rebuilding { .. }, HealthState::Degraded { .. })
    )
}

/// Audits one shard's health-transition log against its rebuild ledger.
///
/// `shard` only labels the diagnostics. The rebuild ledger spans power
/// cycles while the transition log restarts with the clock, so the
/// re-admission rule is an inequality: the log cannot contain more
/// re-admissions than the ledger has clean, re-admitted rebuilds.
pub fn check_health(
    shard: usize,
    log: &[HealthTransition],
    rebuilds: &[RebuildReport],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut readmissions = 0u64;
    for (i, t) in log.iter().enumerate() {
        if !legal_edge(t.from, t.to) {
            out.push(Diagnostic::error_untimed(
                "health/illegal-edge",
                format!(
                    "shard {shard} transition {i}: {} → {} is not a legal edge",
                    t.from.name(),
                    t.to.name()
                ),
            ));
        }
        let prev_to = if i == 0 {
            HealthState::Healthy
        } else {
            log[i - 1].to
        };
        if t.from != prev_to {
            out.push(Diagnostic::error_untimed(
                "health/broken-chain",
                format!(
                    "shard {shard} transition {i} departs from {} but the shard was in {}",
                    t.from.name(),
                    prev_to.name()
                ),
            ));
        }
        if i > 0 && t.at < log[i - 1].at {
            out.push(Diagnostic::error_untimed(
                "health/time-regression",
                format!(
                    "shard {shard} transition {i} at {} precedes transition {} at {}",
                    t.at,
                    i - 1,
                    log[i - 1].at
                ),
            ));
        }
        if t.from.is_rebuilding() && t.to.is_healthy() {
            readmissions += 1;
        }
    }

    let mut clean_readmitted = 0u64;
    for (i, r) in rebuilds.iter().enumerate() {
        match (r.readmitted, r.audit()) {
            (true, Err(why)) => out.push(Diagnostic::error_untimed(
                "health/unclean-readmission",
                format!("shard {shard} rebuild {i} was re-admitted with a dirty ledger: {why}"),
            )),
            (true, Ok(())) => clean_readmitted += 1,
            (false, _) => {}
        }
    }
    if readmissions > clean_readmitted {
        out.push(Diagnostic::error_untimed(
            "health/readmission-unaudited",
            format!(
                "shard {shard} log shows {readmissions} re-admissions but only \
                 {clean_readmitted} rebuilds passed a clean audit"
            ),
        ));
    }

    out
}

/// Runs [`check_health`] over every shard of a multi-channel system.
pub fn check_system_health(sys: &MultiChannelSystem) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, s) in sys.shards().iter().enumerate() {
        out.extend(check_health(i, s.health_log(), s.rebuild_reports()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::DegradeReason;
    use nvdimmc_sim::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    fn degraded(since: SimTime) -> HealthState {
        HealthState::Degraded {
            reason: DegradeReason::Requested,
            since,
        }
    }

    fn rebuilding(attempt: u32, since: SimTime) -> HealthState {
        HealthState::Rebuilding { attempt, since }
    }

    fn edge(from: HealthState, to: HealthState, at: SimTime) -> HealthTransition {
        HealthTransition { from, to, at }
    }

    fn clean_report() -> RebuildReport {
        RebuildReport {
            attempt: 1,
            started: t(10),
            finished: t(20),
            handshake_ok: true,
            resident_at_start: 4,
            dirty_at_start: 2,
            slots_scrubbed: 4,
            clean_healed: 0,
            dirty_written_back: 2,
            pages_lost: Vec::new(),
            readmitted: true,
        }
    }

    #[test]
    fn full_repair_cycle_is_clean() {
        let log = [
            edge(HealthState::Healthy, degraded(t(10)), t(10)),
            edge(degraded(t(10)), rebuilding(1, t(12)), t(12)),
            edge(rebuilding(1, t(12)), HealthState::Healthy, t(20)),
        ];
        let diags = check_health(0, &log, &[clean_report()]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn empty_log_is_clean() {
        assert!(check_health(0, &[], &[]).is_empty());
    }

    #[test]
    fn healthy_to_rebuilding_is_illegal() {
        let log = [edge(HealthState::Healthy, rebuilding(1, t(5)), t(5))];
        let diags = check_health(0, &log, &[]);
        assert!(diags.iter().any(|d| d.rule == "health/illegal-edge"));
    }

    #[test]
    fn degraded_to_healthy_shortcut_is_illegal() {
        let log = [
            edge(HealthState::Healthy, degraded(t(10)), t(10)),
            edge(degraded(t(10)), HealthState::Healthy, t(11)),
        ];
        let diags = check_health(0, &log, &[]);
        assert!(diags.iter().any(|d| d.rule == "health/illegal-edge"));
    }

    #[test]
    fn chain_must_start_healthy_and_connect() {
        let log = [edge(degraded(t(5)), rebuilding(1, t(5)), t(5))];
        let diags = check_health(0, &log, &[]);
        assert!(diags.iter().any(|d| d.rule == "health/broken-chain"));

        let log = [
            edge(HealthState::Healthy, degraded(t(10)), t(10)),
            // Departs from a *different* degraded state than we arrived in.
            edge(degraded(t(99)), rebuilding(1, t(12)), t(12)),
        ];
        let diags = check_health(0, &log, &[]);
        assert!(diags.iter().any(|d| d.rule == "health/broken-chain"));
    }

    #[test]
    fn time_regression_is_an_error() {
        let log = [
            edge(HealthState::Healthy, degraded(t(10)), t(10)),
            edge(degraded(t(10)), rebuilding(1, t(5)), t(5)),
        ];
        let diags = check_health(0, &log, &[]);
        assert!(diags.iter().any(|d| d.rule == "health/time-regression"));
    }

    #[test]
    fn readmission_without_clean_rebuild_is_an_error() {
        let log = [
            edge(HealthState::Healthy, degraded(t(10)), t(10)),
            edge(degraded(t(10)), rebuilding(1, t(12)), t(12)),
            edge(rebuilding(1, t(12)), HealthState::Healthy, t(20)),
        ];
        let diags = check_health(0, &log, &[]);
        assert!(diags
            .iter()
            .any(|d| d.rule == "health/readmission-unaudited"));
    }

    #[test]
    fn dirty_ledger_readmission_is_an_error() {
        let mut r = clean_report();
        r.slots_scrubbed = 3; // one resident slot never scrubbed
        let diags = check_health(0, &[], &[r]);
        assert!(diags.iter().any(|d| d.rule == "health/unclean-readmission"));
    }

    #[test]
    fn failed_rebuild_that_stays_out_is_clean() {
        let mut r = clean_report();
        r.readmitted = false;
        r.slots_scrubbed = 0; // interrupted before the scrub
        let log = [
            edge(HealthState::Healthy, degraded(t(10)), t(10)),
            edge(degraded(t(10)), rebuilding(1, t(12)), t(12)),
            edge(rebuilding(1, t(12)), degraded(t(15)), t(15)),
        ];
        let diags = check_health(0, &log, &[r]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
