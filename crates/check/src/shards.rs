//! Multi-channel verification: per-shard trace checks plus cross-shard
//! request conservation.
//!
//! Each channel of a `MultiChannelSystem` has its own bus, so its trace
//! is verified independently with the full single-channel pass — one
//! shard's refresh phase tells you nothing about another's. What *is*
//! global is the front-end scheduler's accounting: every request accepted
//! into a shard queue must eventually complete there. A mismatch means
//! the front-end dropped or double-counted work, which no per-shard
//! timing check would ever notice.

use crate::diag::{Diagnostic, Report};
use nvdimmc_ddr::{TimingParams, TraceEntry};

/// Verifies each shard's trace independently with the full trace pass
/// (timing linter, race detector, refresh-window checker). The returned
/// reports are indexed by shard.
pub fn check_shards(traces: &[Vec<TraceEntry>], timing: &TimingParams) -> Vec<Report> {
    traces
        .iter()
        .map(|t| crate::check_trace(t, timing))
        .collect()
}

/// Checks the scheduler's cross-shard request conservation: for every
/// shard, `enqueued == completed` once the system is quiescent. Input is
/// the per-shard `(enqueued, completed)` pairs (e.g. from
/// `RequestScheduler::conservation`).
pub fn check_conservation(counts: &[(u64, u64)]) -> Report {
    let mut report = Report::new();
    for (shard, &(enqueued, completed)) in counts.iter().enumerate() {
        if enqueued != completed {
            report.push(Diagnostic::error_untimed(
                "sched/conservation",
                format!(
                    "shard {shard}: {enqueued} requests enqueued but {completed} completed \
                     ({} {})",
                    enqueued.abs_diff(completed),
                    if enqueued > completed {
                        "lost in the queues"
                    } else {
                        "completed without being enqueued"
                    }
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::{BankAddr, BusMaster, Command, SpeedBin};
    use nvdimmc_sim::SimTime;

    fn timing() -> TimingParams {
        TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
    }

    #[test]
    fn shards_are_verified_independently() {
        let t = timing();
        // Shard 1 carries an NVMC command outside any window; shard 0 is
        // empty (clean). The violation must stay on shard 1's report.
        let bad = TraceEntry::observe(
            BusMaster::Nvmc,
            SimTime::from_ns(100),
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
            &t,
        );
        let reports = check_shards(&[vec![], vec![bad]], &t);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].is_clean());
        assert!(!reports[1].is_clean());
        assert!(
            reports[1].by_rule("refresh/nvmc-outside-window").count() == 1,
            "{}",
            reports[1]
        );
    }

    #[test]
    fn conservation_mismatch_is_flagged_per_shard() {
        let report = check_conservation(&[(10, 10), (7, 5), (3, 4)]);
        let diags: Vec<_> = report.by_rule("sched/conservation").collect();
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("shard 1"), "{}", diags[0].message);
        assert!(diags[0].message.contains("lost in the queues"));
        assert!(diags[1].message.contains("shard 2"));
        assert!(diags[1].message.contains("without being enqueued"));
    }

    #[test]
    fn balanced_counts_are_clean() {
        assert!(check_conservation(&[(0, 0), (42, 42)]).is_clean());
        assert!(check_conservation(&[]).is_clean());
    }
}
