//! Structured diagnostics shared by every checker in this crate.

use nvdimmc_ddr::Command;
use nvdimmc_sim::SimTime;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong (e.g. a config that starves the
    /// host without breaking correctness).
    Warning,
    /// A protocol, timing or persistence violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: which rule fired, how severe, when, and the commands
/// involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `timing/tRCD` or `race/dq-overlap`.
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Simulated instant the finding anchors to, when it has one
    /// (trace-based rules do; config lints do not).
    pub at: Option<SimTime>,
    /// The offending command(s), where applicable.
    pub commands: Vec<Command>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// An error finding anchored at `at`.
    pub fn error(rule: &'static str, at: SimTime, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            at: Some(at),
            commands: Vec::new(),
            message: message.into(),
        }
    }

    /// An error finding with no time anchor (journal replays anchor to
    /// event indices, not simulated time).
    pub fn error_untimed(rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            at: None,
            commands: Vec::new(),
            message: message.into(),
        }
    }

    /// A warning finding with no time anchor (config lints).
    pub fn warning(rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            at: None,
            commands: Vec::new(),
            message: message.into(),
        }
    }

    /// Attaches the offending commands.
    #[must_use]
    pub fn with_commands(mut self, commands: Vec<Command>) -> Self {
        self.commands = commands;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.rule)?;
        if let Some(at) = self.at {
            write!(f, " at {at}")?;
        }
        write!(f, ": {}", self.message)?;
        if !self.commands.is_empty() {
            write!(f, " (commands: ")?;
            for (i, c) in self.commands.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c:?}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The aggregate result of one or more checker passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Wraps a list of diagnostics.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding from `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in the order they were produced.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Findings at error severity.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Findings at warning severity.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether nothing fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report holds no findings.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics whose rule id matches `rule` exactly.
    pub fn by_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "nvdimmc-check: clean (0 diagnostics)");
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        writeln!(f, "nvdimmc-check: {errors} error(s), {warnings} warning(s)")?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_filters() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.push(Diagnostic::error("timing/tRCD", SimTime::from_ns(5), "x"));
        r.push(Diagnostic::warning("config/host-share-low", "y"));
        assert!(!r.is_clean());
        assert_eq!(r.len(), 2);
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.by_rule("timing/tRCD").count(), 1);
        assert_eq!(r.by_rule("timing/tRP").count(), 0);
    }

    #[test]
    fn display_mentions_rule_and_time() {
        let d = Diagnostic::error("race/dq-overlap", SimTime::from_ns(42), "bursts overlap");
        let s = d.to_string();
        assert!(s.contains("race/dq-overlap"), "{s}");
        assert!(s.contains("42"), "{s}");
        let mut r = Report::new();
        r.push(d);
        assert!(r.to_string().contains("1 error(s)"));
    }

    #[test]
    fn clean_report_prints_clean() {
        assert!(Report::new().to_string().contains("clean"));
    }
}
