//! Persistence-ordering checker (pmemcheck-style).
//!
//! Replays a [`PersistEvent`] journal captured by the host CPU-cache model
//! and verifies the libpmem contract behind every durability claim: each
//! cacheline stored in a claimed range must have been `clflush`ed (or
//! `clwb`ed) *after* its last store, and an `sfence` must separate that
//! flush from the claim. A driver that "persists" without draining the CPU
//! cache — the §V-C failure the paper's power-fail experiments probe —
//! shows up here as:
//!
//! - `persist/unflushed` — a stored line was claimed durable with no flush
//!   at all;
//! - `persist/store-after-flush` — the line was flushed, then dirtied
//!   again before the claim;
//! - `persist/unfenced` — the flush happened but no `sfence` ordered it
//!   before the claim.
//!
//! Stores that are *never* claimed are intentionally not findings: losing
//! unflushed scratch data on power failure is correct behaviour, and the
//! examples exercise exactly that.

use crate::diag::Diagnostic;
use nvdimmc_host::journal::JOURNAL_LINE;
use nvdimmc_host::PersistEvent;
use std::collections::HashMap;

/// Per-line journal state, tracked by event index.
#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    last_store: Option<usize>,
    last_flush: Option<usize>,
}

/// Checks every durability claim in `events` against the store / flush /
/// fence history that precedes it.
pub fn check_persistence(events: &[PersistEvent]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut lines: HashMap<u64, LineState> = HashMap::new();
    let mut last_fence: Option<usize> = None;

    for (i, ev) in events.iter().enumerate() {
        match *ev {
            PersistEvent::Store { addr, len } => {
                for line in lines_of(addr, len) {
                    lines.entry(line).or_default().last_store = Some(i);
                }
            }
            PersistEvent::Clflush { addr } | PersistEvent::Clwb { addr } => {
                let line = addr / JOURNAL_LINE * JOURNAL_LINE;
                lines.entry(line).or_default().last_flush = Some(i);
            }
            PersistEvent::Sfence => last_fence = Some(i),
            PersistEvent::Claim { addr, len } => {
                for line in lines_of(addr, len) {
                    let Some(state) = lines.get(&line) else {
                        continue; // never stored: nothing to prove
                    };
                    let Some(store) = state.last_store else {
                        continue;
                    };
                    match state.last_flush {
                        None => out.push(Diagnostic::error_untimed(
                            "persist/unflushed",
                            format!(
                                "line {line:#x} claimed durable (event {i}) but never flushed \
                                 after its store (event {store})"
                            ),
                        )),
                        Some(flush) if flush < store => out.push(Diagnostic::error_untimed(
                            "persist/store-after-flush",
                            format!(
                                "line {line:#x} was stored again (event {store}) after its \
                                     last flush (event {flush}) and before the claim (event {i})"
                            ),
                        )),
                        Some(flush) => {
                            if last_fence.is_none_or(|f| f <= flush) {
                                out.push(Diagnostic::error_untimed(
                                    "persist/unfenced",
                                    format!(
                                        "line {line:#x}: flush (event {flush}) was not \
                                             followed by an sfence before the claim (event {i})"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            PersistEvent::PowerFail { .. } => {
                // The failure point itself is not a finding; claims are
                // judged as they are made.
            }
        }
    }
    out
}

/// The line-aligned addresses covering `[addr, addr + len)`.
fn lines_of(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = addr / JOURNAL_LINE;
    let last = if len == 0 {
        first
    } else {
        (addr + len - 1) / JOURNAL_LINE
    };
    (first..=last).map(|l| l * JOURNAL_LINE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(addr: u64, len: u64) -> PersistEvent {
        PersistEvent::Store { addr, len }
    }

    fn flush(addr: u64) -> PersistEvent {
        PersistEvent::Clflush { addr }
    }

    fn claim(addr: u64, len: u64) -> PersistEvent {
        PersistEvent::Claim { addr, len }
    }

    #[test]
    fn flush_fence_claim_is_clean() {
        let events = [
            store(0x100, 16),
            flush(0x100),
            PersistEvent::Sfence,
            claim(0x100, 16),
        ];
        let diags = check_persistence(&events);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn claim_without_flush_is_flagged() {
        let events = [store(0x100, 16), PersistEvent::Sfence, claim(0x100, 16)];
        let diags = check_persistence(&events);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "persist/unflushed");
    }

    #[test]
    fn store_after_flush_is_flagged() {
        let events = [
            store(0x100, 8),
            flush(0x100),
            store(0x108, 8), // same line, re-dirtied
            PersistEvent::Sfence,
            claim(0x100, 16),
        ];
        let diags = check_persistence(&events);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "persist/store-after-flush");
    }

    #[test]
    fn flush_without_fence_is_flagged() {
        let events = [store(0x100, 16), flush(0x100), claim(0x100, 16)];
        let diags = check_persistence(&events);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "persist/unfenced");
    }

    #[test]
    fn fence_before_flush_does_not_count() {
        let events = [
            store(0x100, 16),
            PersistEvent::Sfence, // too early: orders nothing
            flush(0x100),
            claim(0x100, 16),
        ];
        let diags = check_persistence(&events);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "persist/unfenced");
    }

    #[test]
    fn unclaimed_scratch_stores_are_not_findings() {
        // Intentionally-lost data (the power-failure example's unflushed
        // scribble) must not produce diagnostics.
        let events = [
            store(0x100, 64),
            store(0x2000, 64), // scratch, never flushed, never claimed
            flush(0x100),
            PersistEvent::Sfence,
            claim(0x100, 64),
            PersistEvent::PowerFail { adr: false },
        ];
        let diags = check_persistence(&events);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn multi_line_claim_checks_every_line() {
        let events = [
            store(0x0, 128), // two lines
            flush(0x0),      // only the first flushed
            PersistEvent::Sfence,
            claim(0x0, 128),
        ];
        let diags = check_persistence(&events);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "persist/unflushed");
        assert!(diags[0].message.contains("0x40"), "{}", diags[0].message);
    }
}
