//! Persistence oracle for the crash-point sweep.
//!
//! After a simulated power cut and recovery, the crash-sweep harness
//! ([`crashsweep`] in `nvdimmc-workloads`) reads back every record it
//! wrote and hands this pass three things: the host-side expectation
//! ledger (what generation of each record was *acked persisted*, what
//! was merely written, which write was in flight when the power died),
//! the parsed post-recovery sector stamps, and the merged recovery
//! statistics. The rules:
//!
//! - `crash/persisted-lost` — a sector of an acked-persisted record came
//!   back older than the persisted generation (or unreadable). The ADR
//!   dump contract (§V-C): everything `clflush`+`sfence`ed before the
//!   cut survives it.
//! - `crash/future-data` — a sector carries a generation newer than any
//!   the host ever wrote: recovery invented data.
//! - `crash/unparseable-sector` — a sector is neither all-zero, nor a
//!   well-formed stamp for its own record and slot: a torn page or
//!   alien bytes (the classic weak-domain cache-line tear).
//! - `crash/torn-record` — a multi-sector record is observable in a
//!   state no crash point could produce: a record with no write in
//!   flight must be generation-uniform; the one record being written at
//!   the cut must be a clean prefix of the new generation over the old
//!   one (writes land page by page, in page order).
//! - `crash/ledger-unbalanced` — the merged [`RecoveryStats`] do not
//!   balance: fired power cuts must equal recovered power cuts.
//!
//! The rules are deliberately *strict*: they encode the strong (ADR)
//! persistence domain. A sweep run with `adr_works = false` is expected
//! to trip `crash/unparseable-sector` / `crash/torn-record` on written-
//! but-unpersisted data — that finding documents the §V-C weak-domain
//! hazard rather than a harness bug, and ships in the crash corpus.
//!
//! [`crashsweep`]: https://docs.rs/nvdimmc-workloads
//! [`RecoveryStats`]: nvdimmc_core::RecoveryStats

use crate::diag::Diagnostic;
use nvdimmc_core::RecoveryStats;

/// What the host can legitimately expect of one record after the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordExpectation {
    /// Record identifier (index into the sweep's record space).
    pub id: u64,
    /// Generation of the last *completed* write (0 = never written).
    pub written_gen: u64,
    /// Generation covered by the last *acked* persist (0 = never
    /// persisted). Always `<= written_gen`.
    pub persisted_gen: u64,
    /// `Some(gen)` when the power cut interrupted a write of this record
    /// at generation `gen` (= `written_gen + 1`); at most one record per
    /// trial carries this.
    pub in_flight: Option<u64>,
}

/// One post-recovery sector, as parsed from the read-back bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectorView {
    /// All-zero: the never-written state.
    Zero,
    /// A well-formed stamp: which record, which sector slot, which
    /// generation it claims.
    Valid {
        /// Record id embedded in the stamp.
        record: u64,
        /// Sector index embedded in the stamp.
        sector: u64,
        /// Write generation embedded in the stamp.
        gen: u64,
    },
    /// Neither zero nor a checksummed stamp: torn or alien bytes.
    Garbage,
}

/// The post-recovery observation of one record: its sectors in page
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashObservation {
    /// Record identifier (must match the paired expectation).
    pub record: u64,
    /// Parsed sectors, index 0 first.
    pub sectors: Vec<SectorView>,
}

/// Effective generation a sector view presents for record `id` at slot
/// `idx`: `Some(0)` for zero, `Some(gen)` for a matching stamp, `None`
/// for garbage or a stamp belonging elsewhere.
fn sector_gen(view: SectorView, id: u64, idx: u64) -> Option<u64> {
    match view {
        SectorView::Zero => Some(0),
        SectorView::Valid {
            record,
            sector,
            gen,
        } if record == id && sector == idx => Some(gen),
        _ => None,
    }
}

/// Runs the persistence oracle over one crash trial.
///
/// `expectations` and `observations` are paired by position and must
/// cover the same records in the same order.
///
/// # Panics
///
/// Panics if the two slices disagree on length or record ids — that is
/// a harness bug, not a persistence finding.
pub fn check_crash(
    expectations: &[RecordExpectation],
    observations: &[CrashObservation],
    stats: &RecoveryStats,
) -> Vec<Diagnostic> {
    assert_eq!(
        expectations.len(),
        observations.len(),
        "expectation/observation ledgers must cover the same records"
    );
    let mut out = Vec::new();
    for (exp, obs) in expectations.iter().zip(observations) {
        assert_eq!(exp.id, obs.record, "ledgers must pair record by record");
        check_record(exp, obs, &mut out);
    }
    if stats.power_fails_fired != stats.power_fails_recovered {
        out.push(Diagnostic::error_untimed(
            "crash/ledger-unbalanced",
            format!(
                "{} power cuts fired but {} recovered; the recovery ledger \
                 must balance after the reboot",
                stats.power_fails_fired, stats.power_fails_recovered
            ),
        ));
    }
    out
}

fn check_record(exp: &RecordExpectation, obs: &CrashObservation, out: &mut Vec<Diagnostic>) {
    let max_gen = exp.in_flight.unwrap_or(exp.written_gen);
    let mut gens = Vec::with_capacity(obs.sectors.len());
    for (idx, &view) in obs.sectors.iter().enumerate() {
        let idx = idx as u64;
        let Some(gen) = sector_gen(view, exp.id, idx) else {
            let rule = if exp.persisted_gen > 0 {
                // An acked-persisted record must stay readable whatever
                // else the cut did.
                "crash/persisted-lost"
            } else {
                "crash/unparseable-sector"
            };
            out.push(Diagnostic::error_untimed(
                rule,
                format!(
                    "record {} sector {idx}: not zero and not a well-formed \
                     stamp for this slot ({view:?}); written gen {}, \
                     persisted gen {}",
                    exp.id, exp.written_gen, exp.persisted_gen
                ),
            ));
            continue;
        };
        if gen > max_gen {
            out.push(Diagnostic::error_untimed(
                "crash/future-data",
                format!(
                    "record {} sector {idx} claims generation {gen} but the \
                     host never wrote past {max_gen}",
                    exp.id
                ),
            ));
        }
        if gen < exp.persisted_gen {
            out.push(Diagnostic::error_untimed(
                "crash/persisted-lost",
                format!(
                    "record {} sector {idx} rolled back to generation {gen} \
                     under an acked persist of generation {}",
                    exp.id, exp.persisted_gen
                ),
            ));
        }
        gens.push(gen);
    }
    // Record-level atomicity. Only fully parsed records are judged —
    // garbage sectors already carry their own finding.
    if gens.len() != obs.sectors.len() {
        return;
    }
    match exp.in_flight {
        None => {
            // No write in flight: every crash point leaves the record at
            // exactly one completed generation.
            if gens.windows(2).any(|w| w[0] != w[1]) {
                out.push(Diagnostic::error_untimed(
                    "crash/torn-record",
                    format!(
                        "record {} mixes generations {gens:?} with no write \
                         in flight at the cut",
                        exp.id
                    ),
                ));
            }
        }
        Some(new_gen) => {
            // The interrupted write lands page by page in page order, so
            // the only legal states are: a prefix (possibly empty or
            // full) at the new generation over the uniform old state.
            let split = gens.iter().take_while(|&&g| g == new_gen).count();
            let tail_ok = gens[split..]
                .iter()
                .all(|&g| g == exp.written_gen && g != new_gen);
            if !tail_ok {
                out.push(Diagnostic::error_untimed(
                    "crash/torn-record",
                    format!(
                        "record {} observed {gens:?} under an in-flight write \
                         of generation {new_gen} over {}: not a clean prefix",
                        exp.id, exp.written_gen
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(id: u64, written: u64, persisted: u64, in_flight: Option<u64>) -> RecordExpectation {
        RecordExpectation {
            id,
            written_gen: written,
            persisted_gen: persisted,
            in_flight,
        }
    }

    fn obs(record: u64, gens: &[u64]) -> CrashObservation {
        CrashObservation {
            record,
            sectors: gens
                .iter()
                .enumerate()
                .map(|(i, &g)| {
                    if g == 0 {
                        SectorView::Zero
                    } else {
                        SectorView::Valid {
                            record,
                            sector: i as u64,
                            gen: g,
                        }
                    }
                })
                .collect(),
        }
    }

    fn stats(fired: u64, recovered: u64) -> RecoveryStats {
        RecoveryStats {
            power_fails_fired: fired,
            power_fails_recovered: recovered,
            ..RecoveryStats::default()
        }
    }

    #[test]
    fn clean_trial_produces_no_findings() {
        let e = [exp(0, 2, 2, None), exp(1, 0, 0, None)];
        let o = [obs(0, &[2, 2]), obs(1, &[0, 0])];
        assert!(check_crash(&e, &o, &stats(1, 1)).is_empty());
    }

    #[test]
    fn in_flight_prefix_states_are_legal() {
        // Write of gen 3 over gen 2 interrupted: empty, partial and full
        // prefixes are all reachable.
        let e = [exp(0, 2, 2, Some(3))];
        for gens in [[2, 2, 2], [3, 2, 2], [3, 3, 2], [3, 3, 3]] {
            let o = [obs(0, &gens)];
            assert!(
                check_crash(&e, &o, &stats(1, 1)).is_empty(),
                "prefix {gens:?} must be legal"
            );
        }
    }

    #[test]
    fn non_prefix_mix_is_torn() {
        let e = [exp(0, 2, 2, Some(3))];
        let o = [obs(0, &[2, 3, 2])];
        let d = check_crash(&e, &o, &stats(1, 1));
        assert!(d.iter().any(|d| d.rule == "crash/torn-record"), "{d:?}");
    }

    #[test]
    fn mixed_generations_without_in_flight_are_torn() {
        let e = [exp(0, 5, 0, None)];
        let o = [obs(0, &[5, 4])];
        let d = check_crash(&e, &o, &stats(1, 1));
        assert!(d.iter().any(|d| d.rule == "crash/torn-record"), "{d:?}");
    }

    #[test]
    fn rollback_under_persist_is_flagged() {
        let e = [exp(0, 3, 3, None)];
        let o = [obs(0, &[2, 2])];
        let d = check_crash(&e, &o, &stats(1, 1));
        assert!(d.iter().any(|d| d.rule == "crash/persisted-lost"), "{d:?}");
    }

    #[test]
    fn future_generation_is_flagged() {
        let e = [exp(0, 1, 0, None)];
        let o = [obs(0, &[7, 7])];
        let d = check_crash(&e, &o, &stats(1, 1));
        assert!(d.iter().any(|d| d.rule == "crash/future-data"), "{d:?}");
    }

    #[test]
    fn garbage_sector_rule_depends_on_persist_state() {
        let garbage = CrashObservation {
            record: 0,
            sectors: vec![SectorView::Garbage],
        };
        let d = check_crash(
            &[exp(0, 1, 0, None)],
            std::slice::from_ref(&garbage),
            &stats(1, 1),
        );
        assert!(
            d.iter().any(|d| d.rule == "crash/unparseable-sector"),
            "{d:?}"
        );
        let d = check_crash(&[exp(0, 1, 1, None)], &[garbage], &stats(1, 1));
        assert!(d.iter().any(|d| d.rule == "crash/persisted-lost"), "{d:?}");
    }

    #[test]
    fn alien_stamp_is_unparseable() {
        // A well-formed stamp for the wrong record/slot is alien data.
        let o = CrashObservation {
            record: 0,
            sectors: vec![SectorView::Valid {
                record: 9,
                sector: 0,
                gen: 1,
            }],
        };
        let d = check_crash(&[exp(0, 0, 0, None)], &[o], &stats(1, 1));
        assert!(
            d.iter().any(|d| d.rule == "crash/unparseable-sector"),
            "{d:?}"
        );
    }

    #[test]
    fn unbalanced_power_ledger_is_flagged() {
        let d = check_crash(&[], &[], &stats(1, 0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "crash/ledger-unbalanced");
    }
}
