//! QoS conservation auditor: proves tokens and requests are conserved
//! per tenant.
//!
//! The QoS engine (see `nvdimmc_core::qos`) keeps two ledgers per
//! tenant and this pass re-checks both from the exported snapshot — the
//! arithmetic is redone here, not trusted from the engine:
//!
//! 1. **Token conservation.** For each bucket (bytes and ops), every
//!    token ever granted is either consumed by an admitted request,
//!    expired against the capacity cap, or still residual:
//!    `granted = consumed + expired + residual`.
//! 2. **Admission conservation.** Every submitted request was either
//!    throttled or admitted: `submitted = throttled + admitted`.
//! 3. **Completion conservation.** Every admitted request completed,
//!    failed, was shed, or is still in flight — the in-flight residue
//!    is non-negative by construction, so the audited inequality is
//!    `completed + failed + shed ≤ admitted`.
//! 4. **Ops-bucket coupling.** A metered ops bucket consumed exactly
//!    one token per admitted request.

use crate::diag::Diagnostic;
use nvdimmc_core::qos::{BucketLedger, QosSnapshot};

fn check_bucket(tenant: &str, which: &str, l: &BucketLedger, out: &mut Vec<Diagnostic>) {
    let spent = l
        .consumed
        .checked_add(l.expired)
        .and_then(|s| s.checked_add(l.residual));
    if spent != Some(l.granted) {
        out.push(Diagnostic::error_untimed(
            "qos/token-conservation",
            format!(
                "tenant {tenant} {which} bucket: granted {} != consumed {} + expired {} + \
                 residual {}",
                l.granted, l.consumed, l.expired, l.residual
            ),
        ));
    }
}

/// Audits one QoS snapshot: token conservation for both buckets and
/// request conservation for every tenant.
pub fn check_qos(snap: &QosSnapshot) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for t in &snap.tenants {
        let name = t.id.to_string();
        check_bucket(&name, "bytes", &t.bytes, &mut out);
        check_bucket(&name, "ops", &t.ops, &mut out);
        let s = t.stats;
        if s.throttled + s.admitted != s.submitted {
            out.push(Diagnostic::error_untimed(
                "qos/admission-conservation",
                format!(
                    "tenant {name}: submitted {} != throttled {} + admitted {}",
                    s.submitted, s.throttled, s.admitted
                ),
            ));
        }
        if s.completed + s.failed + s.shed > s.admitted {
            out.push(Diagnostic::error_untimed(
                "qos/completion-conservation",
                format!(
                    "tenant {name}: completed {} + failed {} + shed {} exceed admitted {}",
                    s.completed, s.failed, s.shed, s.admitted
                ),
            ));
        }
        // A metered ops bucket spends exactly one token per admission.
        if t.ops.limited && t.ops.consumed != s.admitted {
            out.push(Diagnostic::error_untimed(
                "qos/ops-coupling",
                format!(
                    "tenant {name}: ops bucket consumed {} tokens for {} admitted requests",
                    t.ops.consumed, s.admitted
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_core::qos::{QosEngine, TenantId, TenantSpec};
    use nvdimmc_sim::SimTime;

    #[test]
    fn live_engine_snapshot_is_clean() {
        let specs = [
            TenantSpec::foreground(TenantId(1)),
            TenantSpec::background(TenantId(2)).with_quota(8192, 2),
        ];
        let mut q = QosEngine::new(&specs);
        for i in 0..8 {
            let at = SimTime::from_us(i * 10);
            let _ = q.admit(TenantId(1), 4096, at);
            let _ = q.admit(TenantId(2), 4096, at);
        }
        q.note_completed(TenantId(1));
        q.note_failed(TenantId(1));
        q.note_shed(TenantId(2));
        let diags = check_qos(&q.snapshot());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cooked_ledger_is_rejected() {
        let specs = [TenantSpec::foreground(TenantId(1)).with_quota(8192, 4)];
        let mut q = QosEngine::new(&specs);
        q.admit(TenantId(1), 4096, SimTime::ZERO).unwrap();
        let mut snap = q.snapshot();
        snap.tenants[0].bytes.consumed += 1;
        let diags = check_qos(&snap);
        assert!(diags.iter().any(|d| d.rule == "qos/token-conservation"));
    }

    #[test]
    fn lost_request_is_rejected() {
        let specs = [TenantSpec::foreground(TenantId(1))];
        let mut q = QosEngine::new(&specs);
        q.admit(TenantId(1), 4096, SimTime::ZERO).unwrap();
        let mut snap = q.snapshot();
        snap.tenants[0].stats.submitted += 1;
        let diags = check_qos(&snap);
        assert!(diags.iter().any(|d| d.rule == "qos/admission-conservation"));
    }

    #[test]
    fn over_completion_is_rejected() {
        let specs = [TenantSpec::foreground(TenantId(1))];
        let mut q = QosEngine::new(&specs);
        q.admit(TenantId(1), 4096, SimTime::ZERO).unwrap();
        q.note_completed(TenantId(1));
        let mut snap = q.snapshot();
        snap.tenants[0].stats.completed += 1;
        let diags = check_qos(&snap);
        assert!(diags
            .iter()
            .any(|d| d.rule == "qos/completion-conservation"));
    }
}
