//! Recovery-accounting checker: proves a fault campaign left nothing
//! half-handled.
//!
//! The fault-injection subsystem ([`nvdimmc_core::FaultPlan`]) reports a
//! merged [`RecoveryStats`] after a campaign. This pass audits the ledger:
//! every injected fault must be either *recovered* (retry ladder, ack
//! retransmit, burst resume, scrub refill, power-cycle rebuild) or
//! *surfaced* as a typed error (uncorrectable media, dirty-slot
//! corruption, degraded shard). Anything that is neither — a corruption
//! the scrub never saw, a split burst that never resumed, a failed CP
//! transaction with no degraded shard — is exactly the "silent
//! corruption" a persistent-memory device must never exhibit.

use crate::diag::Diagnostic;
use nvdimmc_core::RecoveryStats;

/// Audits a campaign's merged [`RecoveryStats`] for recovery gaps.
///
/// Errors mean a fault was neither recovered nor surfaced; warnings mean
/// the campaign ended before a scheduled or armed fault got its chance to
/// fire (usually a drain loop that stopped too early).
pub fn check_recovery(s: &RecoveryStats) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Every uncorrectable NAND read must end in a retry-ladder rescue or
    // a typed Uncorrectable surfaced to the caller. (Surfaced may exceed
    // injected: a persistently poisoned page fails every later read.)
    if s.nand_retry_recovered + s.nand_uncorrectable_surfaced < s.nand_faults_injected {
        out.push(Diagnostic::error_untimed(
            "recovery/nand-unaccounted",
            format!(
                "{} uncorrectable NAND reads injected but only {} retry-recovered \
                 and {} surfaced — a media fault vanished",
                s.nand_faults_injected, s.nand_retry_recovered, s.nand_uncorrectable_surfaced
            ),
        ));
    }

    // Every lost ack (dropped, corrupted, or a mangled command the FPGA
    // refused) must cost the driver at least one attempt timeout — the
    // retransmit machinery cannot recover a loss it never noticed. A
    // power failure is the one legitimate exception: it can cut an
    // in-flight attempt short *after* its ack was lost but *before* its
    // ack-wait window expired (the nvdimmc-model checker found exactly
    // this interleaving: publish, execute, ack dropped, crash), and each
    // power fail interrupts at most one in-flight attempt per shard — so
    // it earns exactly one attempt of slack.
    let losses = s.acks_dropped + s.acks_corrupted + s.cmd_decode_failures;
    if losses > s.cp_attempt_timeouts + s.power_fails_fired {
        out.push(Diagnostic::error_untimed(
            "recovery/ack-loss-unaccounted",
            format!(
                "{losses} CP acks/commands lost but only {} attempt timeouts and \
                 {} power interruptions — the driver missed a loss",
                s.cp_attempt_timeouts, s.power_fails_fired
            ),
        ));
    }

    // A CP transaction that exhausted its retransmit budget must leave a
    // degraded shard behind; failing silently would let later writes
    // proceed against a dead mailbox.
    if s.cp_transactions_failed > s.degraded_entries {
        out.push(Diagnostic::error_untimed(
            "recovery/degraded-missing",
            format!(
                "{} CP transactions failed outright but only {} shards entered \
                 degraded mode",
                s.cp_transactions_failed, s.degraded_entries
            ),
        ));
    }

    // Every burst the FPGA split at a window edge must resume and finish
    // in a later window — an unmatched split is a torn page transfer.
    if s.bursts_split != s.bursts_resumed {
        out.push(Diagnostic::error_untimed(
            "recovery/burst-unresumed",
            format!(
                "{} bursts split at the window edge but {} resumed — a transfer \
                 was torn",
                s.bursts_split, s.bursts_resumed
            ),
        ));
    }

    // Injected DRAM-slot corruption must be seen by the scrub...
    if s.slots_corrupted > 0 && s.scrub_detected == 0 {
        out.push(Diagnostic::error_untimed(
            "recovery/corruption-undetected",
            format!(
                "{} cache slots corrupted and the scrub detected none of them",
                s.slots_corrupted
            ),
        ));
    }
    // ...the scrub must not see corruption nobody injected...
    if s.scrub_detected > s.slots_corrupted {
        out.push(Diagnostic::error_untimed(
            "recovery/scrub-phantom",
            format!(
                "scrub detected {} corruptions but only {} were injected",
                s.scrub_detected, s.slots_corrupted
            ),
        ));
    }
    // ...and every detection must resolve: refilled from Z-NAND, dropped
    // as a clean victim, or surfaced as dirty-slot data loss.
    if s.scrub_detected != s.scrub_refills + s.scrub_dropped_clean + s.cache_corruption_surfaced {
        out.push(Diagnostic::error_untimed(
            "recovery/scrub-unaccounted",
            format!(
                "{} scrub detections vs {} refills + {} clean drops + {} surfaced",
                s.scrub_detected,
                s.scrub_refills,
                s.scrub_dropped_clean,
                s.cache_corruption_surfaced
            ),
        ));
    }

    // Every rebuild that started must have finished one way or the
    // other: re-admitted after a clean audit, or failed (interrupted /
    // audit-rejected) and re-degraded. A started-but-unaccounted rebuild
    // is a shard that vanished mid-repair.
    if s.rebuilds_started != s.rebuilds_completed + s.rebuilds_failed {
        out.push(Diagnostic::error_untimed(
            "recovery/rebuild-unaccounted",
            format!(
                "{} rebuilds started but {} completed + {} failed",
                s.rebuilds_started, s.rebuilds_completed, s.rebuilds_failed
            ),
        ));
    }

    // Every injected power failure must be followed by a rebuild.
    if s.power_fails_fired != s.power_fails_recovered {
        out.push(Diagnostic::error_untimed(
            "recovery/power-unrecovered",
            format!(
                "{} power failures fired but {} recovered",
                s.power_fails_fired, s.power_fails_recovered
            ),
        ));
    }

    // Softer signals: the campaign ended with work outstanding.
    if s.faults_fired < s.faults_scheduled {
        out.push(Diagnostic::warning(
            "recovery/faults-pending",
            format!(
                "{} of {} scheduled faults fired — drain loop stopped early?",
                s.faults_fired, s.faults_scheduled
            ),
        ));
    }
    if s.bursts_split < s.overrun_stalls {
        out.push(Diagnostic::warning(
            "recovery/stall-unsplit",
            format!(
                "{} window stalls armed but only {} bursts split (a stall can \
                 land in a window too short to move even one chunk)",
                s.overrun_stalls, s.bursts_split
            ),
        ));
    }
    if s.scrub_detected < s.slots_corrupted {
        out.push(Diagnostic::warning(
            "recovery/scrub-partial",
            format!(
                "{} slots corrupted but scrub saw {} (double corruption of one \
                 slot detects once)",
                s.slots_corrupted, s.scrub_detected
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recovered_campaign() -> RecoveryStats {
        RecoveryStats {
            nand_faults_injected: 3,
            nand_read_retries: 5,
            nand_retry_recovered: 3,
            nand_retry_remaps: 3,
            acks_dropped: 2,
            acks_corrupted: 1,
            replayed_acks: 3,
            cp_attempt_timeouts: 3,
            cp_retransmits: 3,
            cp_recovered: 3,
            overrun_stalls: 2,
            bursts_split: 2,
            bursts_resumed: 2,
            slots_corrupted: 2,
            scrub_detected: 2,
            scrub_refills: 2,
            power_fails_fired: 1,
            power_fails_recovered: 1,
            faults_scheduled: 9,
            faults_fired: 9,
            ..RecoveryStats::default()
        }
    }

    #[test]
    fn zero_stats_are_clean() {
        assert!(check_recovery(&RecoveryStats::default()).is_empty());
    }

    #[test]
    fn fully_recovered_campaign_is_clean() {
        let diags = check_recovery(&recovered_campaign());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn vanished_nand_fault_is_an_error() {
        let mut s = recovered_campaign();
        s.nand_retry_recovered = 2;
        let diags = check_recovery(&s);
        assert!(diags.iter().any(|d| d.rule == "recovery/nand-unaccounted"));
    }

    #[test]
    fn surfaced_uncorrectable_balances_the_ledger() {
        let mut s = recovered_campaign();
        s.nand_faults_injected = 4;
        s.nand_uncorrectable_surfaced = 1;
        assert!(check_recovery(&s).is_empty());
    }

    #[test]
    fn missed_ack_loss_is_an_error() {
        let mut s = recovered_campaign();
        // 3 losses against 1 timeout + 1 power fail: still one loss the
        // driver never noticed.
        s.cp_attempt_timeouts = 1;
        let diags = check_recovery(&s);
        assert!(diags
            .iter()
            .any(|d| d.rule == "recovery/ack-loss-unaccounted"));
    }

    #[test]
    fn power_interrupted_attempt_excuses_one_missing_timeout() {
        // The nvdimmc-model counterexample: publish, execute, ack
        // dropped, power fail — one loss, zero timeouts, one power fail.
        // The loss is accounted for by the interruption, not missed.
        let s = RecoveryStats {
            acks_dropped: 1,
            power_fails_fired: 1,
            power_fails_recovered: 1,
            faults_scheduled: 2,
            faults_fired: 2,
            ..RecoveryStats::default()
        };
        let diags = check_recovery(&s);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn failed_cp_without_degraded_shard_is_an_error() {
        let mut s = recovered_campaign();
        s.cp_transactions_failed = 1;
        let diags = check_recovery(&s);
        assert!(diags.iter().any(|d| d.rule == "recovery/degraded-missing"));
        s.degraded_entries = 1;
        assert!(check_recovery(&s).is_empty());
    }

    #[test]
    fn torn_burst_is_an_error() {
        let mut s = recovered_campaign();
        s.bursts_resumed = 1;
        let diags = check_recovery(&s);
        assert!(diags.iter().any(|d| d.rule == "recovery/burst-unresumed"));
    }

    #[test]
    fn undetected_corruption_is_an_error_partial_is_a_warning() {
        let mut s = recovered_campaign();
        s.scrub_detected = 0;
        s.scrub_refills = 0;
        let diags = check_recovery(&s);
        assert!(diags
            .iter()
            .any(|d| d.rule == "recovery/corruption-undetected"));

        let mut s = recovered_campaign();
        s.slots_corrupted = 3;
        let diags = check_recovery(&s);
        assert!(diags.iter().all(|d| d.rule == "recovery/scrub-partial"));
    }

    #[test]
    fn phantom_scrub_detection_is_an_error() {
        let mut s = recovered_campaign();
        s.scrub_detected = 3;
        s.scrub_refills = 3;
        let diags = check_recovery(&s);
        assert!(diags.iter().any(|d| d.rule == "recovery/scrub-phantom"));
    }

    #[test]
    fn unaccounted_rebuild_is_an_error() {
        let mut s = recovered_campaign();
        s.rebuilds_started = 2;
        s.rebuilds_completed = 1;
        let diags = check_recovery(&s);
        assert!(diags
            .iter()
            .any(|d| d.rule == "recovery/rebuild-unaccounted"));
        s.rebuilds_failed = 1;
        assert!(check_recovery(&s).is_empty());
    }

    #[test]
    fn unrecovered_power_fail_is_an_error() {
        let mut s = recovered_campaign();
        s.power_fails_recovered = 0;
        let diags = check_recovery(&s);
        assert!(diags.iter().any(|d| d.rule == "recovery/power-unrecovered"));
    }

    #[test]
    fn pending_faults_and_unsplit_stalls_warn() {
        let mut s = recovered_campaign();
        s.faults_fired = 8;
        s.bursts_split = 1;
        s.bursts_resumed = 1;
        let diags = check_recovery(&s);
        assert!(diags.iter().any(|d| d.rule == "recovery/faults-pending"));
        assert!(diags.iter().any(|d| d.rule == "recovery/stall-unsplit"));
        assert!(diags.iter().all(|d| d.severity == crate::Severity::Warning));
    }
}
