//! Multi-master bus-race detector.
//!
//! NVDIMM-C hangs two masters — the host iMC and the module's NVMC — off
//! one DDR4 channel, so the failure the paper's whole tRFC mechanism
//! exists to prevent is *both driving the pins at once* (paper Figure 2a).
//! This pass re-derives pin occupancy from a recorded trace and reports
//! every interval collision:
//!
//! - `race/ca-overlap` — two commands whose CA (command/address) slots
//!   overlap; cross-master overlaps are the paper's case C1.
//! - `race/dq-overlap` — two data bursts whose DQ windows overlap; a
//!   read's burst arriving while another master's write burst is still on
//!   the pins corrupts both.

use crate::diag::Diagnostic;
use nvdimmc_ddr::TraceEntry;

/// Finds CA-slot and DQ-burst interval collisions in `trace`.
///
/// The trace may be in any order; entries are sorted by issue time first.
/// Each collision produces one error-severity [`Diagnostic`] naming both
/// masters and carrying both commands.
pub fn detect_races(trace: &[TraceEntry]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // CA slots are uniform (one tCK wide), so collisions are always between
    // neighbours in issue order.
    let mut by_at: Vec<&TraceEntry> = trace.iter().collect();
    by_at.sort_by_key(|e| e.at);
    for pair in by_at.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.at < a.ca_end {
            out.push(
                Diagnostic::error(
                    "race/ca-overlap",
                    b.at,
                    format!(
                        "CA slots overlap: [{}] {:?} at {} collides with [{}] {:?} at {}{}",
                        b.master,
                        b.cmd,
                        b.at,
                        a.master,
                        a.cmd,
                        a.at,
                        if a.master == b.master {
                            ""
                        } else {
                            " (multi-master, paper case C1)"
                        }
                    ),
                )
                .with_commands(vec![a.cmd, b.cmd]),
            );
        }
    }

    // DQ windows start at different offsets (tCL vs tCWL), so track the
    // latest burst end seen so far rather than only the neighbour.
    let mut bursts: Vec<&TraceEntry> = trace.iter().filter(|e| e.data.is_some()).collect();
    bursts.sort_by_key(|e| e.data.expect("filtered").0);
    let mut last: Option<&TraceEntry> = None;
    for e in bursts {
        let (start, _end) = e.data.expect("filtered");
        if let Some(prev) = last {
            let (_, prev_end) = prev.data.expect("filtered");
            if start < prev_end {
                out.push(
                    Diagnostic::error(
                        "race/dq-overlap",
                        start,
                        format!(
                            "DQ bursts overlap: [{}] {:?} occupies the data pins from {start} \
                             while [{}] {:?} holds them until {prev_end}{}",
                            e.master,
                            e.cmd,
                            prev.master,
                            prev.cmd,
                            if prev.master == e.master {
                                ""
                            } else {
                                " (multi-master)"
                            }
                        ),
                    )
                    .with_commands(vec![prev.cmd, e.cmd]),
                );
            }
        }
        let replace = match last {
            None => true,
            Some(prev) => e.data.expect("filtered").1 > prev.data.expect("filtered").1,
        };
        if replace {
            last = Some(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::{BankAddr, BusMaster, Command, SpeedBin, TimingParams};
    use nvdimmc_sim::{SimDuration, SimTime};

    fn t() -> TimingParams {
        TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600)
    }

    fn rd(master: BusMaster, at: SimTime) -> TraceEntry {
        TraceEntry::observe(
            master,
            at,
            Command::Read {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
            &t(),
        )
    }

    #[test]
    fn disjoint_slots_are_clean() {
        let p = t();
        let a = rd(BusMaster::HostImc, SimTime::from_ns(100));
        let b = rd(BusMaster::Nvmc, SimTime::from_ns(100) + p.tccd_l);
        assert!(detect_races(&[a, b]).is_empty());
    }

    #[test]
    fn same_cycle_commands_collide_on_ca() {
        let at = SimTime::from_ns(100);
        let a = rd(BusMaster::HostImc, at);
        let b = TraceEntry::observe(BusMaster::Nvmc, at, Command::PrechargeAll, &t());
        let diags = detect_races(&[a, b]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "race/ca-overlap");
        assert!(diags[0].message.contains("case C1"), "{}", diags[0].message);
        assert_eq!(diags[0].commands.len(), 2);
    }

    #[test]
    fn overlapping_bursts_collide_on_dq() {
        // Two reads one tCK apart: CA slots are adjacent (clean) but the
        // 4-tCK bursts overlap.
        let p = t();
        let at = SimTime::from_ns(100);
        let a = rd(BusMaster::HostImc, at);
        let b = rd(BusMaster::Nvmc, at + p.speed.tck());
        let diags = detect_races(&[a, b]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "race/dq-overlap");
        assert!(diags[0].message.contains("multi-master"));
    }

    #[test]
    fn read_after_write_gap_keeps_dq_clean() {
        // A write then a read spaced per tWTR: write data [at+tCWL,
        // +burst), read data well after.
        let p = t();
        let at = SimTime::from_ns(100);
        let w = TraceEntry::observe(
            BusMaster::HostImc,
            at,
            Command::Write {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
            &p,
        );
        let r = rd(BusMaster::HostImc, at + p.tcwl + p.burst_time() + p.twtr);
        assert!(detect_races(&[w, r]).is_empty());
    }

    #[test]
    fn out_of_order_input_is_sorted_first() {
        let p = t();
        let a = rd(BusMaster::HostImc, SimTime::from_ns(200));
        let b = rd(BusMaster::Nvmc, SimTime::from_ns(200) + p.speed.tck());
        // Deliver newest-first; the detector must still see the overlap.
        let diags = detect_races(&[b, a]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "race/dq-overlap");
    }

    #[test]
    fn contained_burst_is_caught_despite_shorter_neighbour() {
        // Burst A spans a long window; B starts inside A but after a later
        // C begins — the running-max logic must still flag B against A.
        let p = t();
        let at = SimTime::from_ns(100);
        let w = TraceEntry::observe(
            BusMaster::HostImc,
            at,
            Command::Write {
                bank: BankAddr::new(0, 0),
                col: 0,
                auto_precharge: false,
            },
            &p,
        );
        // Read issued just after: its burst starts after the write's burst
        // begins (tCL > tCWL) and overlaps it.
        let r = rd(BusMaster::Nvmc, at + SimDuration::from_ps(p.speed.tck_ps()));
        let diags = detect_races(&[w, r]);
        assert!(
            diags.iter().any(|d| d.rule == "race/dq-overlap"),
            "{diags:?}"
        );
    }
}
