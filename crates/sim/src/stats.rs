//! Measurement primitives: counters, latency histograms, bandwidth time
//! series and rate meters.
//!
//! Every experiment in the NVDIMM-C reproduction reports through these types
//! so that the figure harness can format results uniformly.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotonically increasing named counter.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::Counter;
///
/// let mut hits = Counter::new("dram_cache_hits");
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// A log-linear latency histogram over [`SimDuration`] samples.
///
/// Buckets are arranged in powers of two of nanoseconds with
/// `SUB_BUCKETS` linear sub-buckets each, giving bounded relative error
/// (~3%) without unbounded memory — the same scheme HdrHistogram-style
/// recorders use.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for us in [1.0, 2.0, 3.0, 100.0] {
///     h.record(SimDuration::from_us(us));
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) <= h.percentile(99.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    // bucket index -> count
    buckets: Vec<u64>,
    count: u64,
    sum_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Histogram {
    const SUB_BUCKETS: u64 = 32;
    // 64 power-of-two tiers of nanoseconds covers < 1ns .. > 500 years.
    const TIERS: usize = 64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; Self::TIERS * Self::SUB_BUCKETS as usize],
            count: 0,
            sum_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }

    fn index_for(ps: u64) -> usize {
        // Work in units of 1/SUB_BUCKETS ns so sub-ns samples still resolve.
        let v = ps.max(1);
        let tier = 63 - v.leading_zeros() as usize; // floor(log2 v)
        let tier = tier.min(Self::TIERS - 1);
        let base = 1u64 << tier;
        let sub = ((v - base) * Self::SUB_BUCKETS / base).min(Self::SUB_BUCKETS - 1);
        tier * Self::SUB_BUCKETS as usize + sub as usize
    }

    fn bucket_low(idx: usize) -> u64 {
        let tier = idx / Self::SUB_BUCKETS as usize;
        let sub = (idx % Self::SUB_BUCKETS as usize) as u64;
        let base = 1u64 << tier;
        base + base * sub / Self::SUB_BUCKETS
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        self.buckets[Self::index_for(ps)] += 1;
        self.count += 1;
        self.sum_ps += u128::from(ps);
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ps((self.sum_ps / u128::from(self.count)) as u64)
    }

    /// Smallest recorded sample; zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.min_ps)
        }
    }

    /// Largest recorded sample; zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.max_ps)
    }

    /// Value at percentile `p` (0–100), approximated by bucket lower bound;
    /// zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_ps(Self::bucket_low(idx).min(self.max_ps));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A bandwidth/throughput time series: bytes recorded into fixed-width time
/// bins, reported as MB/s per bin. Used to reproduce Figure 7's
/// throughput-over-time plot.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::{SimDuration, SimTime, TimeSeries};
///
/// let mut ts = TimeSeries::new(SimDuration::from_secs_f64(1.0));
/// ts.record(SimTime::from_us(10), 1 << 20);
/// let bins = ts.bins_mb_per_s();
/// assert_eq!(bins.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width: SimDuration,
    bytes_per_bin: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(bin_width > SimDuration::ZERO, "bin width must be non-zero");
        TimeSeries {
            bin_width,
            bytes_per_bin: Vec::new(),
        }
    }

    /// Records `bytes` transferred at instant `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let bin = (at.as_ps() / self.bin_width.as_ps()) as usize;
        if bin >= self.bytes_per_bin.len() {
            self.bytes_per_bin.resize(bin + 1, 0);
        }
        self.bytes_per_bin[bin] += bytes;
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Bytes recorded in each bin.
    pub fn bins_bytes(&self) -> &[u64] {
        &self.bytes_per_bin
    }

    /// Throughput per bin in MB/s (decimal megabytes, as the paper reports).
    pub fn bins_mb_per_s(&self) -> Vec<f64> {
        let secs = self.bin_width.as_secs_f64();
        self.bytes_per_bin
            .iter()
            .map(|&b| b as f64 / 1e6 / secs)
            .collect()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_bin.iter().sum()
    }
}

/// Aggregates operation count and bytes over a measured interval and reports
/// IOPS and MB/s, the two metrics every figure in the paper uses.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::{RateMeter, SimDuration};
///
/// let mut m = RateMeter::new();
/// m.record_op(4096);
/// m.record_op(4096);
/// m.finish(SimDuration::from_us(2.0));
/// assert!((m.kiops() - 1000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateMeter {
    ops: u64,
    bytes: u64,
    elapsed: SimDuration,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed operation of `bytes` size.
    pub fn record_op(&mut self, bytes: u64) {
        self.ops += 1;
        self.bytes += bytes;
    }

    /// Sets the measured wall-clock (simulated) interval.
    pub fn finish(&mut self, elapsed: SimDuration) {
        self.elapsed = elapsed;
    }

    /// Completed operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The measured interval.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Throughput in thousands of I/O operations per second.
    pub fn kiops(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e3
    }

    /// Bandwidth in decimal MB/s.
    pub fn mb_per_s(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Merges another meter measured over the *same* simulated interval
    /// (e.g. per-shard meters from a multi-channel run): ops and bytes
    /// accumulate, the elapsed interval is the longer of the two.
    pub fn merge(&mut self, other: &RateMeter) {
        self.ops += other.ops;
        self.bytes += other.bytes;
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.add(10);
        c.incr();
        assert_eq!(c.value(), 11);
        assert_eq!(c.name(), "x");
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_us(1.0));
        h.record(SimDuration::from_us(3.0));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), SimDuration::from_us(2.0));
        assert_eq!(h.min(), SimDuration::from_us(1.0));
        assert_eq!(h.max(), SimDuration::from_us(3.0));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_percentile_bounded_error() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_ns(i));
        }
        let p50 = h.percentile(50.0).as_ns_f64();
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        let p99 = h.percentile(99.0).as_ns_f64();
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Histogram::new();
        for i in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            h.record(SimDuration::from_ns(i));
        }
        let mut last = SimDuration::ZERO;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) regressed");
            last = v;
        }
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_us(1.0));
        b.record(SimDuration::from_us(9.0));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_us(5.0));
        assert_eq!(a.max(), SimDuration::from_us(9.0));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn histogram_percentile_range_checked() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn timeseries_bins_bytes() {
        let mut ts = TimeSeries::new(SimDuration::from_us(10.0));
        ts.record(SimTime::from_us(1), 100);
        ts.record(SimTime::from_us(5), 100);
        ts.record(SimTime::from_us(15), 300);
        assert_eq!(ts.bins_bytes(), &[200, 300]);
        assert_eq!(ts.total_bytes(), 500);
    }

    #[test]
    fn timeseries_mb_per_s() {
        let mut ts = TimeSeries::new(SimDuration::from_secs_f64(1.0));
        ts.record(SimTime::from_us(500), 500_000_000);
        let mb = ts.bins_mb_per_s();
        assert!((mb[0] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_reports_paper_units() {
        // 646 KIOPS of 4KB reads is 2646 MB/s-ish; check unit math.
        let mut m = RateMeter::new();
        for _ in 0..646 {
            m.record_op(4096);
        }
        m.finish(SimDuration::from_ms(1.0));
        assert!((m.kiops() - 646.0).abs() < 1e-9);
        assert!((m.mb_per_s() - 646.0 * 4096.0 / 1e3).abs() < 1e-6);
    }

    #[test]
    fn rate_meter_merge_aggregates_parallel_shards() {
        // Two shards moving 4KB ops over the same 1ms interval: aggregate
        // bandwidth doubles, the interval does not.
        let mut a = RateMeter::new();
        let mut b = RateMeter::new();
        for _ in 0..100 {
            a.record_op(4096);
            b.record_op(4096);
        }
        a.finish(SimDuration::from_ms(1.0));
        b.finish(SimDuration::from_ms(0.8));
        a.merge(&b);
        assert_eq!(a.ops(), 200);
        assert_eq!(a.elapsed(), SimDuration::from_ms(1.0));
        assert!((a.kiops() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn rate_meter_zero_interval_is_zero() {
        let mut m = RateMeter::new();
        m.record_op(4096);
        assert_eq!(m.kiops(), 0.0);
        assert_eq!(m.mb_per_s(), 0.0);
    }
}
