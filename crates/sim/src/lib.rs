//! # nvdimmc-sim — discrete-event simulation engine
//!
//! Foundation crate for the NVDIMM-C reproduction. It provides:
//!
//! - [`SimTime`] / [`SimDuration`] — integer picosecond simulation time, so
//!   that DDR4 clock arithmetic (e.g. 1.25 ns cycles at DDR4-1600) is exact;
//! - [`EventQueue`] — a deterministic, cancellable priority queue of timed
//!   events (ties broken by insertion order);
//! - [`ShardCalendar`] — the discrete-event fast path for multi-shard
//!   front-ends: per-shard next-event registration with deterministic
//!   pop-min ordering, so executors advance each shard's clock straight
//!   to its next scheduled event instead of ticking idle shards;
//! - [`stats`] — counters, latency histograms with percentiles, bandwidth
//!   time series and rate meters used by every experiment harness;
//! - [`rng`] — deterministic random number helpers (uniform, Zipfian) so
//!   every experiment is reproducible from a seed;
//! - [`queueing`] — a small closed-loop queueing model used to project
//!   multi-threaded throughput from single-stream service times.
//!
//! # Example
//!
//! ```
//! use nvdimmc_sim::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_ns(30), "late");
//! q.schedule(SimTime::from_ns(10), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_ns(10), "early"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod event;
pub mod queueing;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::ShardCalendar;
pub use event::{EventHandle, EventQueue};
pub use queueing::ClosedLoopModel;
pub use rng::{DeterministicRng, Zipf};
pub use stats::{Counter, Histogram, RateMeter, TimeSeries};
pub use time::{SimDuration, SimTime};
