//! A closed-loop queueing model for projecting multi-threaded throughput.
//!
//! The paper's thread-count sweeps (Figure 9) run N fio threads against one
//! device. We model each operation's service time as a *serializable* part
//! (demand on the shared bottleneck: the device, the shared memory channel,
//! or the tRFC window budget) plus a *parallel* part (per-thread CPU work
//! that scales with thread count). For a closed system with N customers,
//! throughput follows the classic bound
//!
//! ```text
//! X(N) = N / (S_par + N * S_serial)     (asymptotically 1 / S_serial)
//! ```
//!
//! which is exact for a two-station closed network with a delay station
//! (`S_par`) and a single queueing station (`S_serial`) under deterministic
//! service; it reproduces the saturation knees the paper reports (baseline
//! saturates near 8 threads, Uncached near 4).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Closed-loop throughput model with a single bottleneck station.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::{ClosedLoopModel, SimDuration};
///
/// // A device with 1.0us parallel work and 0.5us serialized work per op:
/// let m = ClosedLoopModel::new(SimDuration::from_us(1.0), SimDuration::from_us(0.5));
/// let x1 = m.throughput_ops_per_s(1);
/// let x16 = m.throughput_ops_per_s(16);
/// assert!(x16 > x1);
/// assert!(x16 <= m.saturation_ops_per_s() * 1.0001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopModel {
    /// Per-operation work that parallelises across threads (CPU-side driver
    /// path, libpmem copy setup, ...).
    pub parallel: SimDuration,
    /// Per-operation demand on the shared bottleneck (device service,
    /// window budget, memory channel).
    pub serial: SimDuration,
    /// Optional hard cap on aggregate throughput (ops/s), e.g. the paper's
    /// observed peak where scaling stops.
    pub cap_ops_per_s: Option<f64>,
}

impl ClosedLoopModel {
    /// Builds a model from the two service-time components.
    pub fn new(parallel: SimDuration, serial: SimDuration) -> Self {
        ClosedLoopModel {
            parallel,
            serial,
            cap_ops_per_s: None,
        }
    }

    /// Builds a model calibrated from two measured points: single-thread
    /// latency and saturated throughput.
    ///
    /// `x1` (ops/s) fixes `S_par + S_serial`; `xmax` fixes `S_serial`.
    ///
    /// # Panics
    ///
    /// Panics if `xmax < x1` (a device cannot saturate below its
    /// single-thread throughput).
    pub fn from_calibration(x1_ops_per_s: f64, xmax_ops_per_s: f64) -> Self {
        assert!(
            xmax_ops_per_s >= x1_ops_per_s,
            "saturated throughput below single-thread throughput"
        );
        let total = 1.0 / x1_ops_per_s; // seconds per op
        let serial = 1.0 / xmax_ops_per_s;
        let parallel = (total - serial).max(0.0);
        ClosedLoopModel {
            parallel: SimDuration::from_secs_f64(parallel),
            serial: SimDuration::from_secs_f64(serial),
            cap_ops_per_s: Some(xmax_ops_per_s),
        }
    }

    /// Adds a hard throughput cap (ops/s).
    pub fn with_cap(mut self, cap_ops_per_s: f64) -> Self {
        self.cap_ops_per_s = Some(cap_ops_per_s);
        self
    }

    /// Aggregate throughput for `n` closed-loop threads, in ops/s.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn throughput_ops_per_s(&self, n: u32) -> f64 {
        assert!(n > 0, "thread count must be positive");
        let n_f = f64::from(n);
        let denom = self.parallel.as_secs_f64() + n_f * self.serial.as_secs_f64();
        let x = if denom == 0.0 {
            f64::INFINITY
        } else {
            n_f / denom
        };
        match self.cap_ops_per_s {
            Some(cap) => x.min(cap),
            None => x,
        }
    }

    /// The asymptotic (N → ∞) throughput in ops/s.
    pub fn saturation_ops_per_s(&self) -> f64 {
        let x = if self.serial == SimDuration::ZERO {
            f64::INFINITY
        } else {
            1.0 / self.serial.as_secs_f64()
        };
        match self.cap_ops_per_s {
            Some(cap) => x.min(cap),
            None => x,
        }
    }

    /// Mean per-operation response time at `n` threads (Little's law).
    pub fn response_time(&self, n: u32) -> SimDuration {
        let x = self.throughput_ops_per_s(n);
        SimDuration::from_secs_f64(f64::from(n) / x)
    }

    /// The smallest thread count at which throughput reaches `frac`
    /// (e.g. 0.9) of saturation — the "knee" of the scaling curve.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `(0, 1]`.
    pub fn knee(&self, frac: f64) -> u32 {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0,1]");
        let target = self.saturation_ops_per_s() * frac;
        for n in 1..=1024 {
            if self.throughput_ops_per_s(n) >= target {
                return n;
            }
        }
        1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_matches_total_service() {
        let m = ClosedLoopModel::new(SimDuration::from_us(1.0), SimDuration::from_us(0.5));
        let x1 = m.throughput_ops_per_s(1);
        assert!((x1 - 1.0 / 1.5e-6).abs() / x1 < 1e-9);
    }

    #[test]
    fn throughput_is_monotone_in_threads() {
        let m = ClosedLoopModel::new(SimDuration::from_us(1.0), SimDuration::from_us(0.5));
        let mut last = 0.0;
        for n in 1..=64 {
            let x = m.throughput_ops_per_s(n);
            assert!(x >= last);
            last = x;
        }
    }

    #[test]
    fn saturation_is_inverse_serial() {
        let m = ClosedLoopModel::new(SimDuration::from_us(1.0), SimDuration::from_us(2.0));
        assert!((m.saturation_ops_per_s() - 500_000.0).abs() < 1.0);
    }

    #[test]
    fn calibration_reproduces_both_points() {
        // Baseline from the paper: 646 KIOPS at 1 thread, 2123 KIOPS peak.
        let m = ClosedLoopModel::from_calibration(646e3, 2123e3);
        let x1 = m.throughput_ops_per_s(1);
        assert!((x1 - 646e3).abs() / 646e3 < 1e-6);
        assert!((m.saturation_ops_per_s() - 2123e3).abs() / 2123e3 < 1e-6);
    }

    #[test]
    fn uncached_saturates_early() {
        // Uncached: ~14.3 KIOPS at 1 thread, 24.3 KIOPS saturated: the knee
        // (90% of saturation) should arrive within a handful of threads,
        // matching the paper's "saturated at four threads".
        let m = ClosedLoopModel::from_calibration(14.3e3, 24.3e3);
        assert!(m.knee(0.85) <= 5, "knee = {}", m.knee(0.85));
    }

    #[test]
    fn response_time_grows_with_contention() {
        let m = ClosedLoopModel::new(SimDuration::from_us(1.0), SimDuration::from_us(0.5));
        assert!(m.response_time(16) > m.response_time(1));
    }

    #[test]
    fn cap_limits_throughput() {
        let m =
            ClosedLoopModel::new(SimDuration::from_us(0.1), SimDuration::from_ns(1)).with_cap(1e6);
        assert_eq!(m.throughput_ops_per_s(64), 1e6);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_panics() {
        ClosedLoopModel::new(SimDuration::from_us(1.0), SimDuration::from_us(1.0))
            .throughput_ops_per_s(0);
    }
}
