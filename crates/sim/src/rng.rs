//! Deterministic randomness helpers.
//!
//! All stochastic behaviour in the reproduction (workload addresses, bit
//! error injection, think times) flows through [`DeterministicRng`], a
//! self-contained seeded xoshiro256** generator, so that every experiment
//! is exactly reproducible from its seed and the simulator carries no
//! external RNG dependency.

/// splitmix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random number generator with convenience samplers.
///
/// The core is xoshiro256** (Blackman & Vigna), seeded through splitmix64
/// as its authors recommend; it is small, fast, and has no external
/// dependencies, which keeps the whole workspace buildable offline.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::DeterministicRng;
///
/// let mut a = DeterministicRng::new(42);
/// let mut b = DeterministicRng::new(42);
/// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    s: [u64; 4],
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DeterministicRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// thread its own stream without cross-coupling.
    pub fn fork(&mut self, salt: u64) -> DeterministicRng {
        let s = self.gen_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DeterministicRng::new(s)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        range.start + self.bounded(span)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in 0..=1");
        self.gen_f64() < p
    }

    /// Uniform 64-bit value (one xoshiro256** step).
    pub fn gen_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Fills a byte slice with random data (for workload payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.gen_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniform value in `0..bound` via rejection sampling (no modulo bias).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.gen_u64() & (bound - 1);
        }
        // Reject the (tiny) biased tail of the 64-bit space.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.gen_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// A Zipfian sampler over `0..n` with skew `theta`, using the rejection
/// method of Gray et al. (as popularised by YCSB). Used by the TPC-H trace
/// generator to model hot tuples.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::{DeterministicRng, Zipf};
///
/// let mut rng = DeterministicRng::new(7);
/// let zipf = Zipf::new(1000, 0.99);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` (0 = uniform-ish,
    /// 0.99 = classic YCSB hot-spot).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation for large n keeps
        // construction O(1)-ish while staying accurate to <0.1%.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // integral of x^-theta from 10000 to n
            let a = 1.0 - theta;
            head + ((n as f64).powf(a) - 10_000f64.powf(a)) / a
        }
    }

    /// Draws one sample in `0..n`. Item 0 is the hottest.
    pub fn sample(&self, rng: &mut DeterministicRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let x = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        x.min(self.n - 1)
    }

    /// The population size.
    pub fn population(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..64).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = DeterministicRng::new(9);
        let mut root2 = DeterministicRng::new(9);
        let mut c1 = root1.fork(0);
        let mut c2 = root2.fork(0);
        assert_eq!(c1.gen_u64(), c2.gen_u64());
        let mut d1 = root1.fork(1);
        assert_ne!(c1.gen_u64(), d1.gen_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = DeterministicRng::new(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = DeterministicRng::new(11);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = DeterministicRng::new(12);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // All-zero after filling 13 bytes is astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DeterministicRng::new(4);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skews_toward_zero() {
        let mut rng = DeterministicRng::new(5);
        let zipf = Zipf::new(10_000, 0.99);
        let mut low = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if zipf.sample(&mut rng) < 100 {
                low += 1;
            }
        }
        // With theta=0.99 the hottest 1% of items should draw far more than
        // 1% of samples.
        assert!(
            f64::from(low) / N as f64 > 0.3,
            "hot fraction = {}",
            f64::from(low) / N as f64
        );
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut rng = DeterministicRng::new(6);
        let zipf = Zipf::new(17, 0.5);
        for _ in 0..5000 {
            assert!(zipf.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn zipf_large_population_constructs() {
        // 16 GB / 4 KB pages = 4M items; construction must stay fast.
        let zipf = Zipf::new(4 << 20, 0.9);
        assert_eq!(zipf.population(), 4 << 20);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 0.5);
    }
}
