//! The discrete-event fast path: a per-shard next-event calendar.
//!
//! A scaled-out front-end serves N independent shards, each with its own
//! clock and its own queue of pending requests. Ticking every shard every
//! cycle makes simulated time cost wall clock even when nothing happens;
//! the calendar inverts that: each shard registers the time of its *next
//! scheduled event* (head-of-ring request arrival, refresh window, repair
//! step) and the executor repeatedly takes the earliest one, advancing
//! that shard's clock straight to the event. Simulated time then scales
//! with *work*, not with the number of idle shards.
//!
//! Determinism: ties on the event time break by shard index, so the
//! service order — and therefore every downstream clock and counter — is
//! a pure function of the registered events, independent of worker count
//! or OS scheduling.
//!
//! # Example
//!
//! ```
//! use nvdimmc_sim::{ShardCalendar, SimTime};
//!
//! let mut cal = ShardCalendar::new(3);
//! cal.set(2, SimTime::from_ns(50));
//! cal.set(0, SimTime::from_ns(80));
//! cal.set(1, SimTime::from_ns(50));
//! assert_eq!(cal.pop(), Some((SimTime::from_ns(50), 1))); // tie → lower index
//! assert_eq!(cal.pop(), Some((SimTime::from_ns(50), 2)));
//! assert_eq!(cal.pop(), Some((SimTime::from_ns(80), 0)));
//! assert_eq!(cal.pop(), None);
//! ```

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-shard next-event registry with deterministic pop-min ordering.
///
/// At most one event per shard is live at a time (a shard's next event);
/// re-registering a shard supersedes its previous entry lazily — stale
/// heap entries are skipped on pop, so `set` is O(log n) even when it
/// replaces.
#[derive(Debug)]
pub struct ShardCalendar {
    heap: BinaryHeap<Reverse<(SimTime, usize, u64)>>,
    /// Latest registration id per shard; heap entries with an older id
    /// are stale.
    live: Vec<Option<u64>>,
    next_id: u64,
}

impl ShardCalendar {
    /// An empty calendar over `shards` shards.
    pub fn new(shards: usize) -> Self {
        ShardCalendar {
            heap: BinaryHeap::new(),
            live: vec![None; shards],
            next_id: 0,
        }
    }

    /// Number of shards the calendar covers.
    pub fn shards(&self) -> usize {
        self.live.len()
    }

    /// Registers (or replaces) `shard`'s next event at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn set(&mut self, shard: usize, time: SimTime) {
        let id = self.next_id;
        self.next_id += 1;
        self.live[shard] = Some(id);
        self.heap.push(Reverse((time, shard, id)));
    }

    /// Removes `shard`'s pending event, if any. Returns whether one was
    /// live.
    pub fn clear(&mut self, shard: usize) -> bool {
        self.live[shard].take().is_some()
    }

    /// The earliest live event without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, usize)> {
        while let Some(&Reverse((time, shard, id))) = self.heap.peek() {
            if self.live[shard] == Some(id) {
                return Some((time, shard));
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the earliest live event. Ties on time break by
    /// shard index (then registration order), so pops are deterministic.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        while let Some(Reverse((time, shard, id))) = self.heap.pop() {
            if self.live[shard] == Some(id) {
                self.live[shard] = None;
                return Some((time, shard));
            }
        }
        None
    }

    /// Drains every live event in event order: the deterministic service
    /// schedule for one executor batch.
    pub fn drain_order(&mut self) -> Vec<(SimTime, usize)> {
        std::iter::from_fn(|| self.pop()).collect()
    }

    /// Removes and returns the earliest live event only if it is due at
    /// or before `now`; later events stay registered. The polling
    /// primitive for maintenance slots: a caller sweeps due work without
    /// disturbing the future schedule.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, usize)> {
        match self.peek() {
            Some((time, _)) if time <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.live.iter().filter(|e| e.is_some()).count()
    }

    /// Whether no events are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn pops_in_time_then_shard_order() {
        let mut c = ShardCalendar::new(4);
        c.set(3, ns(20));
        c.set(1, ns(10));
        c.set(2, ns(20));
        c.set(0, ns(30));
        assert_eq!(
            c.drain_order(),
            vec![(ns(10), 1), (ns(20), 2), (ns(20), 3), (ns(30), 0)]
        );
        assert!(c.is_empty());
    }

    #[test]
    fn reregistering_supersedes() {
        let mut c = ShardCalendar::new(2);
        c.set(0, ns(100));
        c.set(0, ns(5)); // moved earlier
        c.set(1, ns(50));
        assert_eq!(c.pop(), Some((ns(5), 0)));
        assert_eq!(c.pop(), Some((ns(50), 1)));
        assert_eq!(c.pop(), None, "stale entry must not resurface");
    }

    #[test]
    fn clear_removes_live_event() {
        let mut c = ShardCalendar::new(2);
        c.set(0, ns(10));
        c.set(1, ns(20));
        assert!(c.clear(0));
        assert!(!c.clear(0), "double clear reports false");
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(), Some((ns(20), 1)));
    }

    #[test]
    fn peek_skips_stale_entries() {
        let mut c = ShardCalendar::new(1);
        c.set(0, ns(10));
        c.set(0, ns(30));
        assert_eq!(c.peek(), Some((ns(30), 0)));
        assert_eq!(c.pop(), Some((ns(30), 0)));
        assert!(c.peek().is_none());
    }

    #[test]
    fn same_shard_same_time_keeps_latest() {
        let mut c = ShardCalendar::new(1);
        c.set(0, ns(10));
        c.set(0, ns(10));
        assert_eq!(c.pop(), Some((ns(10), 0)));
        assert_eq!(c.pop(), None);
    }
}
