//! Simulation time in integer picoseconds.
//!
//! DDR4 timing parameters are defined in fractions of nanoseconds (a
//! DDR4-1600 clock period is 1.25 ns), so floating point time would
//! accumulate rounding error over millions of refresh cycles. All simulation
//! time in this workspace is therefore an integer number of picoseconds.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute point in simulation time, in picoseconds since simulation
/// start.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_ns(350);
/// assert_eq!(t.as_ps(), 350_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in picoseconds.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::SimDuration;
///
/// let trfc = SimDuration::from_ns(350);
/// let trefi = SimDuration::from_us(7.8);
/// assert!(trefi > trfc);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant at `ps` picoseconds after simulation start.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant at `ns` nanoseconds after simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant at `us` microseconds after simulation start.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since simulation start (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later instant"),
        )
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from a float number of nanoseconds (rounded).
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns >= 0.0, "duration must be non-negative");
        SimDuration((ns * 1e3).round() as u64)
    }

    /// Creates a duration from a float number of microseconds (rounded).
    pub fn from_us(us: f64) -> Self {
        assert!(us >= 0.0, "duration must be non-negative");
        SimDuration((us * 1e6).round() as u64)
    }

    /// Creates a duration from a float number of milliseconds (rounded).
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms >= 0.0, "duration must be non-negative");
        SimDuration((ms * 1e9).round() as u64)
    }

    /// Creates a duration from a float number of seconds (rounded).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e12).round() as u64)
    }

    /// Picoseconds in this duration.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds in this duration (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Nanoseconds in this duration, as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds in this duration, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a float factor (rounded).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division rounding up: the number of whole `step`s needed to
    /// cover this duration.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn div_ceil(self, step: SimDuration) -> u64 {
        assert!(step.0 > 0, "division step must be non-zero");
        self.0.div_ceil(step.0)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    /// Ratio of two durations.
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimTime::from_ns(350).as_ps(), 350_000);
        assert_eq!(SimTime::from_us(7).as_ns(), 7_000);
        assert_eq!(SimDuration::from_us(7.8).as_ns(), 7_800);
        assert_eq!(SimDuration::from_ns_f64(1.25).as_ps(), 1_250);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_ns(100);
        let d = SimDuration::from_ns(250);
        let t1 = t0 + d;
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_ns(10);
        let late = SimTime::from_ns(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_underflow() {
        let _ = SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn div_ceil_counts_windows() {
        // 23.4us of work split into 7.8us refresh windows -> exactly 3.
        let work = SimDuration::from_us(23.4);
        let win = SimDuration::from_us(7.8);
        assert_eq!(work.div_ceil(win), 3);
        // A hair more requires a 4th window.
        assert_eq!((work + SimDuration::from_ps(1)).div_ceil(win), 4);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_ns(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_ns(150));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_ns(350)), "350.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(7.8)), "7.800us");
        assert_eq!(format!("{}", SimDuration::from_ps(5)), "5ps");
    }

    #[test]
    fn ratio_of_durations() {
        let a = SimDuration::from_us(7.8);
        let b = SimDuration::from_us(3.9);
        assert!((a / b - 2.0).abs() < 1e-12);
    }
}
