//! A deterministic, cancellable event queue.
//!
//! Events are ordered by time, with ties broken by insertion order so that
//! simulations are fully deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Identifies a scheduled event so it can be cancelled.
///
/// Handles are unique within a single [`EventQueue`] for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` events.
///
/// Pops events in nondecreasing time order; events scheduled for the same
/// instant pop in insertion order.
///
/// # Example
///
/// ```
/// use nvdimmc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.schedule(SimTime::from_ns(5), "a");
/// q.schedule(SimTime::from_ns(5), "b");
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "b")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `time`, returning a handle that
    /// can later be passed to [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current clock: the simulation cannot
    /// schedule into the past.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({} < {})",
            time,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(handle.0)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its time. Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_ns(1), "a");
        q.schedule(SimTime::from_ns(2), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ns(2), "b")));
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(999)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_ns(1), "a");
        q.schedule(SimTime::from_ns(2), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(2), "b")));
    }

    #[test]
    fn periodic_schedule_pattern() {
        // The pattern used by the refresh engine: re-schedule on each pop.
        let mut q = EventQueue::new();
        let trefi = SimDuration::from_us(7.8);
        q.schedule(SimTime::ZERO + trefi, ());
        let mut count = 0;
        while let Some((t, ())) = q.pop() {
            count += 1;
            if count < 10 {
                q.schedule(t + trefi, ());
            }
        }
        assert_eq!(count, 10);
        assert_eq!(q.now(), SimTime::ZERO + trefi * 10);
    }
}
