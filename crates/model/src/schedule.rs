//! Replayable counterexample schedules: a plain-text artifact format,
//! deterministic replay, and greedy delete-minimization.
//!
//! A schedule file is self-contained — it embeds the [`ModelParams`]
//! that define the instance — so a counterexample found once is a
//! regression test forever:
//!
//! ```text
//! # nvdimmc-model schedule v1
//! # params shards=1 txns=2 windows=1 ... legacy=1 depth=4096
//! # violation persist/acked-unpersisted driver accepted ack ...
//! s0 publish
//! s0 fpga-poll
//! s0 window
//! ```
//!
//! Replay applies the actions in order with **skip-if-disabled**
//! semantics: an action that is not enabled in the current state is a
//! recorded no-op rather than an error. That makes every *subsequence*
//! of a valid schedule replayable, which is what lets the minimizer
//! greedily delete actions — any candidate deletion yields a schedule
//! that still replays deterministically, and it is kept exactly when
//! the same invariant still fires.

use crate::params::ModelParams;
use crate::shard::{ShardAction, Violation};
use crate::system::{Action, ModelState};
use std::fmt::Write as _;

/// Outcome of replaying a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayResult {
    /// Actions applied (enabled when their turn came).
    pub applied: u64,
    /// Actions skipped (disabled when their turn came).
    pub skipped: u64,
    /// The first violation hit: a transition invariant during replay,
    /// or a terminal-oracle error if the final state is terminal.
    pub violation: Option<Violation>,
    /// Whether the final state was terminal.
    pub terminal: bool,
}

/// Replays `schedule` from the initial state of `p`.
pub fn replay(p: &ModelParams, schedule: &[Action]) -> ReplayResult {
    let mut state = ModelState::new(p);
    let mut result = ReplayResult {
        applied: 0,
        skipped: 0,
        violation: None,
        terminal: false,
    };
    for &action in schedule {
        if !state.is_enabled(action, p) {
            result.skipped += 1;
            continue;
        }
        result.applied += 1;
        if let Some(v) = state.apply(action, p) {
            result.violation = Some(v);
            return result;
        }
    }
    result.terminal = state.is_terminal(p);
    if result.terminal {
        result.violation = state.oracle(p).into_iter().next();
    }
    result
}

/// Greedily minimizes a violating schedule: repeatedly tries deleting
/// each action and keeps any deletion after which replay still reports
/// a violation of the same rule, iterating to a fixpoint. The result
/// replays to the same verdict bit-identically.
pub fn minimize(p: &ModelParams, schedule: &[Action], rule: &str) -> Vec<Action> {
    let mut current = schedule.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            let same = replay(p, &candidate)
                .violation
                .is_some_and(|v| v.rule == rule);
            if same {
                current = candidate;
                shrunk = true;
                // Keep `i`: the next action slid into this slot.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Serialises a schedule artifact.
pub fn to_text(p: &ModelParams, schedule: &[Action], violation: Option<&Violation>) -> String {
    let mut out = String::new();
    out.push_str("# nvdimmc-model schedule v1\n");
    let _ = writeln!(out, "# params {}", p.to_header());
    if let Some(v) = violation {
        let _ = writeln!(
            out,
            "# violation {} {}",
            v.rule,
            v.message.replace('\n', " ")
        );
    }
    for a in schedule {
        let _ = writeln!(out, "s{} {}", a.shard, a.act.name());
    }
    out
}

/// Parses a schedule artifact back into its instance and action list.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn from_text(text: &str) -> Result<(ModelParams, Vec<Action>), String> {
    let mut params = None;
    let mut actions = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(header) = rest.strip_prefix("params ") {
                params = Some(ModelParams::from_header(header)?);
            }
            continue;
        }
        let (shard_tok, act_tok) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {}: expected `s<shard> <action>`", idx + 1))?;
        let shard: usize = shard_tok
            .strip_prefix('s')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("line {}: bad shard token {shard_tok:?}", idx + 1))?;
        let act = ShardAction::from_name(act_tok.trim())
            .ok_or_else(|| format!("line {}: unknown action {act_tok:?}", idx + 1))?;
        actions.push(Action { shard, act });
    }
    let params = params.ok_or("missing `# params` header")?;
    Ok((params, actions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn happy_path(p: &ModelParams) -> Vec<Action> {
        let mut state = ModelState::new(p);
        let mut schedule = Vec::new();
        while let Some(&a) = state.enabled_persistent(p).first() {
            assert!(state.apply(a, p).is_none());
            schedule.push(a);
            assert!(schedule.len() < 1000);
        }
        schedule
    }

    #[test]
    fn text_roundtrips() {
        let p = ModelParams::smoke();
        let schedule = happy_path(&p);
        let text = to_text(&p, &schedule, None);
        let (p2, s2) = from_text(&text).unwrap();
        assert_eq!(p2, p);
        assert_eq!(s2, schedule);
    }

    #[test]
    fn replay_is_deterministic_and_clean_on_happy_path() {
        let p = ModelParams {
            fault_budget: 0,
            crash_budget: 0,
            rebuild_budget: 0,
            ..ModelParams::smoke()
        };
        let schedule = happy_path(&p);
        let a = replay(&p, &schedule);
        let b = replay(&p, &schedule);
        assert_eq!(a, b, "replay diverged between runs");
        assert_eq!(a.violation, None);
        assert!(a.terminal);
        assert_eq!(a.skipped, 0);
    }

    #[test]
    fn disabled_actions_are_skipped_not_fatal() {
        let p = ModelParams::smoke();
        use crate::shard::ShardAction::*;
        let schedule = vec![
            Action {
                shard: 0,
                act: FpgaPoll,
            }, // nothing published yet
            Action {
                shard: 0,
                act: Publish,
            },
            Action {
                shard: 0,
                act: Repair,
            }, // not degraded
        ];
        let r = replay(&p, &schedule);
        assert_eq!(r.applied, 1);
        assert_eq!(r.skipped, 2);
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(from_text("s0 publish").is_err(), "missing params header");
        let bad = "# params shards=1 txns=1 windows=1 retransmits=0 backoff=1 \
                   faults=0 crashes=0 rebuilds=0 legacy=0 depth=64\nz0 publish";
        assert!(from_text(bad).is_err(), "bad shard token");
    }
}
