//! `nvdimmc-model` CLI: run an exploration, compare reduction modes, or
//! replay/minimize a schedule artifact.
//!
//! ```text
//! nvdimmc-model explore  [--preset smoke|ci|calibrate|micro|bughunt]
//!                        [--mode naive|tree|sleep|persistent] [--set key=value]
//!                        [--expect-violation RULE] [--write-schedule PATH] [--min-states N]
//! nvdimmc-model compare  [--preset calibrate]
//! nvdimmc-model replay   PATH [--expect-violation RULE]
//! nvdimmc-model minimize PATH OUT
//! ```
//!
//! Exit code 0 on success (including an *expected* violation), 1 on an
//! unexpected verdict, 2 on usage errors.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use nvdimmc_model::{
    explore, from_text, minimize, replay, to_text, ExploreReport, Mode, ModelParams,
};
use std::process::ExitCode;
use std::time::Instant;

fn preset(name: &str) -> Option<ModelParams> {
    match name {
        "smoke" => Some(ModelParams::smoke()),
        "ci" => Some(ModelParams::ci()),
        "calibrate" => Some(ModelParams::calibrate()),
        "micro" => Some(ModelParams::micro()),
        "bughunt" => Some(ModelParams::bug_hunt()),
        _ => None,
    }
}

fn print_report(label: &str, r: &ExploreReport, secs: f64) {
    println!(
        "{label}: states={} transitions={} terminals={} schedules={} \
         depth={} truncated={} wall={secs:.2}s",
        r.distinct_states, r.transitions, r.terminals, r.schedules, r.max_depth_seen, r.truncated,
    );
    if let Some(v) = &r.violation {
        println!(
            "{label}: VIOLATION [{}] shard {}: {} ({} actions)",
            v.violation.rule,
            v.violation.shard,
            v.violation.message,
            v.schedule.len()
        );
    }
}

struct ExploreArgs {
    params: ModelParams,
    mode: Mode,
    expect: Option<String>,
    write_schedule: Option<String>,
    min_states: u64,
}

fn parse_explore_args(args: &[String]) -> Result<ExploreArgs, String> {
    let mut out = ExploreArgs {
        params: ModelParams::ci(),
        mode: Mode::Persistent,
        expect: None,
        write_schedule: None,
        min_states: 0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--preset" => {
                let v = value("--preset")?;
                out.params = preset(&v).ok_or_else(|| format!("unknown preset {v:?}"))?;
            }
            "--mode" => {
                let v = value("--mode")?;
                out.mode = Mode::from_name(&v).ok_or_else(|| format!("unknown mode {v:?}"))?;
            }
            "--set" => {
                // Reuses the schedule-header grammar: `--set txns=2`.
                let v = value("--set")?;
                let merged = format!("{} {v}", out.params.to_header());
                out.params = ModelParams::from_header(&merged)?;
            }
            "--expect-violation" => out.expect = Some(value("--expect-violation")?),
            "--write-schedule" => out.write_schedule = Some(value("--write-schedule")?),
            "--min-states" => {
                let v = value("--min-states")?;
                out.min_states = v.parse().map_err(|e| format!("--min-states: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

fn cmd_explore(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_explore_args(args)?;
    let start = Instant::now();
    let r = explore(&a.params, a.mode);
    print_report(a.mode.name(), &r, start.elapsed().as_secs_f64());
    if let (Some(path), Some(found)) = (&a.write_schedule, &r.violation) {
        let minimal = minimize(&a.params, &found.schedule, &found.violation.rule);
        let text = to_text(&a.params, &minimal, Some(&found.violation));
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "minimized schedule ({} -> {} actions) written to {path}",
            found.schedule.len(),
            minimal.len()
        );
    }
    match (&a.expect, &r.violation) {
        (Some(rule), Some(found)) if found.violation.rule == *rule => Ok(ExitCode::SUCCESS),
        (Some(rule), Some(found)) => {
            eprintln!(
                "expected violation of {rule} but found {}",
                found.violation.rule
            );
            Ok(ExitCode::FAILURE)
        }
        (Some(rule), None) => {
            eprintln!("expected violation of {rule} but the exploration was clean");
            Ok(ExitCode::FAILURE)
        }
        (None, Some(_)) => Ok(ExitCode::FAILURE),
        (None, None) => {
            if r.distinct_states < a.min_states {
                eprintln!(
                    "explored {} states, below the required floor {}",
                    r.distinct_states, a.min_states
                );
                return Ok(ExitCode::FAILURE);
            }
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let mut params = ModelParams::calibrate();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--preset needs a value".to_string())?;
                params = preset(v).ok_or_else(|| format!("unknown preset {v:?}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    // State-level reduction at the requested (default: CI) bound:
    // naive vs persistent-set, both with fingerprint dedup.
    let mut runs = Vec::new();
    for mode in [Mode::Naive, Mode::Persistent] {
        let start = Instant::now();
        let r = explore(&params, mode);
        print_report(mode.name(), &r, start.elapsed().as_secs_f64());
        if r.violation.is_some() {
            return Ok(ExitCode::FAILURE);
        }
        runs.push(r);
    }
    if let [naive, reduced] = &runs[..] {
        if naive.terminals != reduced.terminals {
            eprintln!(
                "terminal counts diverge: naive {} vs persistent {}",
                naive.terminals, reduced.terminals
            );
            return Ok(ExitCode::FAILURE);
        }
        println!(
            "state reduction: {:.1}x ({} -> {}), {:.1}x transitions ({} -> {})",
            naive.distinct_states as f64 / reduced.distinct_states.max(1) as f64,
            naive.distinct_states,
            reduced.distinct_states,
            naive.transitions as f64 / reduced.transitions.max(1) as f64,
            naive.transitions,
            reduced.transitions,
        );
    }
    // Schedule-level reduction at the micro bound: the full schedule
    // tree is the honest sleep-set baseline (no state cache on either
    // side), but it is only tractable with adversarial budgets zeroed.
    let micro = ModelParams::micro();
    let mut runs = Vec::new();
    for mode in [Mode::Tree, Mode::SleepSet] {
        let start = Instant::now();
        let r = explore(&micro, mode);
        print_report(mode.name(), &r, start.elapsed().as_secs_f64());
        if r.violation.is_some() {
            return Ok(ExitCode::FAILURE);
        }
        runs.push(r);
    }
    if let [tree, sleep] = &runs[..] {
        println!(
            "schedule reduction (micro bound): {:.1}x ({} -> {})",
            tree.schedules as f64 / sleep.schedules.max(1) as f64,
            tree.schedules,
            sleep.schedules,
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("replay needs a schedule path")?;
    let expect = match args.get(1).map(String::as_str) {
        Some("--expect-violation") => Some(
            args.get(2)
                .ok_or("--expect-violation needs a value")?
                .clone(),
        ),
        Some(other) => return Err(format!("unknown argument {other:?}")),
        None => None,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let (params, schedule) = from_text(&text)?;
    let r = replay(&params, &schedule);
    println!(
        "{path}: applied={} skipped={} terminal={} violation={:?}",
        r.applied,
        r.skipped,
        r.terminal,
        r.violation.as_ref().map(|v| &v.rule)
    );
    let ok = match expect {
        Some(rule) => r.violation.as_ref().is_some_and(|v| v.rule == rule),
        None => r.violation.is_none(),
    };
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_minimize(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("minimize needs a schedule path")?;
    let out = args.get(1).ok_or("minimize needs an output path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let (params, schedule) = from_text(&text)?;
    let r = replay(&params, &schedule);
    let Some(v) = r.violation else {
        eprintln!("{path} does not violate anything; nothing to minimize");
        return Ok(ExitCode::FAILURE);
    };
    let minimal = minimize(&params, &schedule, &v.rule);
    std::fs::write(out, to_text(&params, &minimal, Some(&v)))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "{} -> {} actions, written to {out}",
        schedule.len(),
        minimal.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("explore", &args[..]),
    };
    let result = match cmd {
        "explore" => cmd_explore(rest),
        "compare" => cmd_compare(rest),
        "replay" => cmd_replay(rest),
        "minimize" => cmd_minimize(rest),
        other => Err(format!(
            "unknown command {other:?} (expected explore|compare|replay|minimize)"
        )),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nvdimmc-model: {msg}");
            ExitCode::from(2)
        }
    }
}
