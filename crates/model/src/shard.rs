//! The per-shard transition system: one driver, one FPGA, one mailbox,
//! one persistent medium — with every *decision* delegated to the pure
//! protocol layer in [`nvdimmc_core::proto`], so the checker verifies
//! the same code the simulator runs.
//!
//! The model abstracts data movement down to a single **generation
//! counter**: transaction *i* of a shard is a writeback that persists
//! generation *i + 1* (carried in the command's `nand_page` field, so
//! the FPGA-side replay detection keys on it exactly as it would on a
//! real page id). That is enough to state the three persistence
//! invariants precisely:
//!
//! - **acked-unpersisted** — the driver accepted an ack for generation
//!   *g* but the medium holds less than *g*: the protocol reported a
//!   writeback durable that never executed (the stale-ack bug class);
//! - **nacked-visible** — a nacked generation is on the medium anyway:
//!   a rejected write leaked;
//! - **nand-regression** — an execution wrote a generation at or below
//!   the medium's current one: a duplicate or reordered execution
//!   slipped past the FPGA's replay detection;
//! - **acked-lost** (checked at every crash point) — a power cycle
//!   rolled the medium back below an acknowledged generation.
//!
//! Time is a per-shard logical clock (one tick per applied action) used
//! only to timestamp health-transition evidence for the
//! [`nvdimmc_check::check_health`] oracle; the protocol itself never
//! reads it.

use crate::params::ModelParams;
use nvdimmc_core::cp::{ACK_ERR_NAND, ACK_OK};
use nvdimmc_core::{
    AckOutcome, CpAck, CpCommand, CpOpcode, DegradeReason, DriverTxn, FpgaProto, HealthState,
    HealthTransition, PollVerdict, RebuildReport, RecoveryStats, RetryOutcome,
};
use nvdimmc_sim::SimTime;
use std::hash::{Hash, Hasher};

/// One scheduler-visible atomic step of a shard.
///
/// The adversarial scheduler owns the interleaving of these actions;
/// the fault variants (`FpgaPollCorrupt`, `FpgaRunFail`, `FpgaAckDrop`,
/// `Crash`) each consume a per-shard budget, so the instance stays
/// finite and the injected-fault count is exact for the
/// [`nvdimmc_check::check_recovery`] ledger oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShardAction {
    /// The driver publishes its next transaction (or the rebuild probe).
    Publish,
    /// The FPGA polls the command word and classifies it.
    FpgaPoll,
    /// Fault: the FPGA's capture of a fresh command word is mangled
    /// (decode failure; the capture stays mangled until republish).
    FpgaPollCorrupt,
    /// The FPGA executes the classified command and stages the ack.
    FpgaRun,
    /// Fault: execution fails at the NAND backend — a nack is staged,
    /// nothing is written.
    FpgaRunFail,
    /// The staged ack is written into the persistent ack word.
    FpgaAck,
    /// Fault: the staged ack is lost in flight.
    FpgaAckDrop,
    /// The driver polls the ack word once.
    DriverPoll,
    /// One ack-wait window elapses on the driver (timeout/retransmit
    /// ladder progress).
    DriverWindow,
    /// The front-end starts an online repair of a degraded shard.
    Repair,
    /// Power-fail point: volatile state vanishes, the medium persists,
    /// the shard reboots and resumes.
    Crash,
}

/// Every action, in the fixed order the explorer enumerates successors.
pub const ALL_ACTIONS: [ShardAction; 11] = [
    ShardAction::Publish,
    ShardAction::FpgaPoll,
    ShardAction::FpgaPollCorrupt,
    ShardAction::FpgaRun,
    ShardAction::FpgaRunFail,
    ShardAction::FpgaAck,
    ShardAction::FpgaAckDrop,
    ShardAction::DriverPoll,
    ShardAction::DriverWindow,
    ShardAction::Repair,
    ShardAction::Crash,
];

impl ShardAction {
    /// Stable lower-case name used in schedule artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ShardAction::Publish => "publish",
            ShardAction::FpgaPoll => "fpga-poll",
            ShardAction::FpgaPollCorrupt => "fpga-poll-corrupt",
            ShardAction::FpgaRun => "fpga-run",
            ShardAction::FpgaRunFail => "fpga-run-fail",
            ShardAction::FpgaAck => "fpga-ack",
            ShardAction::FpgaAckDrop => "fpga-ack-drop",
            ShardAction::DriverPoll => "driver-poll",
            ShardAction::DriverWindow => "window",
            ShardAction::Repair => "repair",
            ShardAction::Crash => "crash",
        }
    }

    /// Parses a schedule-artifact action name.
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_ACTIONS.into_iter().find(|a| a.name() == name)
    }
}

/// A violated invariant, with the shard it fired on (filled in by
/// [`crate::system::ModelState`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id (`persist/...`, or an oracle rule from
    /// `nvdimmc-check` such as `health/illegal-edge`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// Which shard the violation fired on.
    pub shard: usize,
}

impl Violation {
    fn new(rule: &str, message: String) -> Self {
        Violation {
            rule: rule.to_string(),
            message,
            shard: 0,
        }
    }
}

/// Driver-side control state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Driver {
    /// Between transactions.
    Idle,
    /// A transaction's retransmit ladder is live.
    InFlight(DriverTxn),
}

/// FPGA-side work classified but not yet executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Staged {
    /// Genuinely new work.
    Fresh(CpCommand),
    /// A retransmit of completed work: re-ack with the recorded verdict.
    Replay(CpCommand, bool, u8),
}

/// Compact health state (times are logical-clock ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MHealth {
    Healthy,
    Degraded { reason: MReason, since: u32 },
    Rebuilding { attempt: u32, since: u32 },
}

/// Compact degradation reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MReason {
    CpExhausted { probe: bool, attempts: u32 },
    RebuildInterrupted,
    AuditFailed,
}

impl MHealth {
    fn materialize(self) -> HealthState {
        match self {
            MHealth::Healthy => HealthState::Healthy,
            MHealth::Degraded { reason, since } => HealthState::Degraded {
                reason: reason.materialize(),
                since: SimTime::from_ns(u64::from(since)),
            },
            MHealth::Rebuilding { attempt, since } => HealthState::Rebuilding {
                attempt,
                since: SimTime::from_ns(u64::from(since)),
            },
        }
    }

    /// Shape-only hash: the `since` timestamps are path artifacts that
    /// never change an oracle verdict, so they are excluded to let the
    /// explorer merge states that differ only in logical time.
    fn hash_shape<H: Hasher>(&self, h: &mut H) {
        match self {
            MHealth::Healthy => 0u8.hash(h),
            MHealth::Degraded { reason, .. } => {
                1u8.hash(h);
                reason.hash(h);
            }
            MHealth::Rebuilding { attempt, .. } => {
                2u8.hash(h);
                attempt.hash(h);
            }
        }
    }
}

impl MReason {
    fn materialize(self) -> DegradeReason {
        match self {
            MReason::CpExhausted { probe, attempts } => DegradeReason::CpExhausted {
                opcode: if probe {
                    CpOpcode::Probe
                } else {
                    CpOpcode::Writeback
                },
                attempts,
            },
            MReason::RebuildInterrupted => DegradeReason::RebuildInterrupted,
            MReason::AuditFailed => DegradeReason::AuditFailed,
        }
    }
}

/// One recorded health edge (times are logical-clock ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MEdge {
    from: MHealth,
    to: MHealth,
    at: u32,
}

/// One rebuild attempt's compact ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MReport {
    attempt: u32,
    started: u32,
    finished: u32,
    handshake_ok: bool,
    readmitted: bool,
}

impl MReport {
    fn materialize(self) -> RebuildReport {
        RebuildReport {
            attempt: self.attempt,
            started: SimTime::from_ns(u64::from(self.started)),
            finished: SimTime::from_ns(u64::from(self.finished)),
            handshake_ok: self.handshake_ok,
            readmitted: self.readmitted,
            ..RebuildReport::default()
        }
    }
}

/// The ledger counters a model run feeds the
/// [`nvdimmc_check::check_recovery`] oracle (the subset of
/// [`RecoveryStats`] the CP/health portion of the protocol can move).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ShardStats {
    pub(crate) acks_dropped: u64,
    pub(crate) cmd_decode_failures: u64,
    pub(crate) nand_errors_nacked: u64,
    pub(crate) replayed_acks: u64,
    pub(crate) cp_attempt_timeouts: u64,
    pub(crate) cp_retransmits: u64,
    pub(crate) cp_recovered: u64,
    pub(crate) cp_transactions_failed: u64,
    pub(crate) degraded_entries: u64,
    pub(crate) rebuilds_started: u64,
    pub(crate) rebuilds_completed: u64,
    pub(crate) rebuilds_failed: u64,
    pub(crate) power_fails_fired: u64,
    pub(crate) power_fails_recovered: u64,
    pub(crate) faults_fired: u64,
}

impl ShardStats {
    /// Expands into the full [`RecoveryStats`] ledger; every counter the
    /// model cannot move stays zero, and the injector-accounting pair is
    /// exact by construction (each fault action consumed budget).
    pub fn materialize(&self) -> RecoveryStats {
        RecoveryStats {
            acks_dropped: self.acks_dropped,
            cmd_decode_failures: self.cmd_decode_failures,
            nand_errors_nacked: self.nand_errors_nacked,
            replayed_acks: self.replayed_acks,
            cp_attempt_timeouts: self.cp_attempt_timeouts,
            cp_retransmits: self.cp_retransmits,
            cp_recovered: self.cp_recovered,
            cp_transactions_failed: self.cp_transactions_failed,
            degraded_entries: self.degraded_entries,
            rebuilds_started: self.rebuilds_started,
            rebuilds_completed: self.rebuilds_completed,
            rebuilds_failed: self.rebuilds_failed,
            power_fails_fired: self.power_fails_fired,
            power_fails_recovered: self.power_fails_recovered,
            faults_scheduled: self.faults_fired + self.power_fails_fired,
            faults_fired: self.faults_fired + self.power_fails_fired,
            ..RecoveryStats::default()
        }
    }
}

/// Complete state of one modelled shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardState {
    // Driver.
    driver: Driver,
    txn_index: u32,
    phase: u8,
    seq: u8,
    probe_pending: bool,
    // Mailbox (persistent DRAM words).
    cmd: Option<CpCommand>,
    cmd_corrupt: bool,
    ack: Option<CpAck>,
    ack_polled: bool,
    // FPGA.
    fproto: FpgaProto,
    staged: Option<Staged>,
    pending_ack: Option<CpAck>,
    // Persistent medium + what the host believes about it.
    nand_gen: u64,
    acked_gen: u64,
    nacked: Vec<u64>,
    // Health machine + evidence for the oracles.
    health: MHealth,
    log: Vec<MEdge>,
    reports: Vec<MReport>,
    attempt_ctr: u32,
    rebuild_started_at: u32,
    clock: u32,
    // Remaining adversary budgets.
    fault_budget: u32,
    crash_budget: u32,
    rebuild_budget: u32,
    stats: ShardStats,
}

impl Hash for ShardState {
    /// Protocol-shape hash: logical-clock values (`clock`,
    /// `rebuild_started_at`, the `since`/`at` fields inside health
    /// evidence) are excluded. Two states that differ only in logical
    /// time have identical enabled actions, identical successors modulo
    /// time, and identical oracle verdicts (the health oracle checks
    /// monotonicity, which both satisfy), so merging them is sound and
    /// shrinks the visited set.
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.driver.hash(h);
        self.txn_index.hash(h);
        self.phase.hash(h);
        self.seq.hash(h);
        self.probe_pending.hash(h);
        self.cmd.hash(h);
        self.cmd_corrupt.hash(h);
        self.ack.hash(h);
        self.ack_polled.hash(h);
        self.fproto.hash(h);
        self.staged.hash(h);
        self.pending_ack.hash(h);
        self.nand_gen.hash(h);
        self.acked_gen.hash(h);
        self.nacked.hash(h);
        self.health.hash_shape(h);
        self.log.len().hash(h);
        for e in &self.log {
            e.from.hash_shape(h);
            e.to.hash_shape(h);
        }
        self.reports.len().hash(h);
        for r in &self.reports {
            (r.attempt, r.handshake_ok, r.readmitted).hash(h);
        }
        self.attempt_ctr.hash(h);
        self.fault_budget.hash(h);
        self.crash_budget.hash(h);
        self.rebuild_budget.hash(h);
        self.stats.hash(h);
    }
}

impl ShardState {
    /// A freshly booted shard: healthy, idle, empty mailbox, zeroed
    /// medium, full budgets.
    pub fn new(p: &ModelParams) -> Self {
        ShardState {
            driver: Driver::Idle,
            txn_index: 0,
            phase: 0,
            seq: 0,
            probe_pending: false,
            cmd: None,
            cmd_corrupt: false,
            ack: None,
            ack_polled: false,
            fproto: FpgaProto::new(),
            staged: None,
            pending_ack: None,
            nand_gen: 0,
            acked_gen: 0,
            nacked: Vec::new(),
            health: MHealth::Healthy,
            log: Vec::new(),
            reports: Vec::new(),
            attempt_ctr: 0,
            rebuild_started_at: 0,
            clock: 0,
            fault_budget: p.fault_budget,
            crash_budget: p.crash_budget,
            rebuild_budget: p.rebuild_budget,
            stats: ShardStats::default(),
        }
    }

    /// The 16-byte command word as the FPGA captures it (mangled when
    /// the capture fault is armed — same byte the simulator's injector
    /// flips: the opcode nibble becomes invalid, the phase survives).
    fn mailbox_word(&self) -> Option<[u8; 16]> {
        let mut word = self.cmd.as_ref()?.encode();
        if self.cmd_corrupt {
            word[7] |= 0x0F;
        }
        Some(word)
    }

    /// True when the mailbox holds a capture the FPGA has not acted on.
    fn fresh_capture(&self) -> bool {
        match (&self.cmd, self.cmd_corrupt) {
            (Some(c), false) => Some(c.phase) != self.fproto.last_phase(),
            // A mangled capture is classified (and counted) once, inside
            // `FpgaPollCorrupt` itself; repeat polls of the same garbage
            // are deduplicated no-ops, so nothing stays enabled.
            _ => false,
        }
    }

    /// Whether `action` may fire in this state.
    pub fn is_enabled(&self, action: ShardAction, p: &ModelParams) -> bool {
        let fpga_idle = self.staged.is_none() && self.pending_ack.is_none();
        match action {
            ShardAction::Publish => {
                matches!(self.driver, Driver::Idle)
                    && match self.health {
                        MHealth::Healthy => self.txn_index < p.txns_per_shard,
                        MHealth::Rebuilding { .. } => self.probe_pending,
                        MHealth::Degraded { .. } => false,
                    }
            }
            ShardAction::FpgaPoll => fpga_idle && self.fresh_capture(),
            ShardAction::FpgaPollCorrupt => {
                self.fault_budget > 0
                    && fpga_idle
                    && !self.cmd_corrupt
                    && self
                        .cmd
                        .as_ref()
                        .is_some_and(|c| Some(c.phase) != self.fproto.last_phase())
            }
            ShardAction::FpgaRun => self.staged.is_some(),
            ShardAction::FpgaRunFail => {
                self.fault_budget > 0 && matches!(self.staged, Some(Staged::Fresh(_)))
            }
            ShardAction::FpgaAck => self.pending_ack.is_some(),
            ShardAction::FpgaAckDrop => self.fault_budget > 0 && self.pending_ack.is_some(),
            ShardAction::DriverPoll => {
                matches!(self.driver, Driver::InFlight(_)) && self.ack.is_some() && !self.ack_polled
            }
            ShardAction::DriverWindow => matches!(self.driver, Driver::InFlight(_)),
            ShardAction::Repair => {
                self.rebuild_budget > 0 && matches!(self.health, MHealth::Degraded { .. })
            }
            ShardAction::Crash => self.crash_budget > 0,
        }
    }

    /// True when no action of this shard is enabled.
    pub fn is_terminal(&self, p: &ModelParams) -> bool {
        ALL_ACTIONS.iter().all(|&a| !self.is_enabled(a, p))
    }

    fn log_edge(&mut self, to: MHealth) {
        self.log.push(MEdge {
            from: self.health,
            to,
            at: self.clock,
        });
        self.health = to;
    }

    fn record_rebuild_end(&mut self, handshake_ok: bool, readmitted: bool) {
        self.reports.push(MReport {
            attempt: self.attempt_ctr,
            started: self.rebuild_started_at,
            finished: self.clock,
            handshake_ok,
            readmitted,
        });
    }

    /// Applies one enabled action; returns the first invariant violated
    /// by its effects, if any. Calling with a disabled action is a
    /// deterministic no-op (replay of minimized schedules relies on
    /// this).
    pub fn apply(&mut self, action: ShardAction, p: &ModelParams) -> Option<Violation> {
        if !self.is_enabled(action, p) {
            return None;
        }
        self.clock += 1;
        match action {
            ShardAction::Publish => self.publish(p),
            ShardAction::FpgaPoll => self.fpga_poll(),
            ShardAction::FpgaPollCorrupt => self.fpga_poll_corrupt(),
            ShardAction::FpgaRun => self.fpga_run(),
            ShardAction::FpgaRunFail => self.fpga_run_fail(),
            ShardAction::FpgaAck => {
                self.ack = self.pending_ack.take();
                self.ack_polled = false;
                None
            }
            ShardAction::FpgaAckDrop => {
                self.pending_ack = None;
                self.fault_budget -= 1;
                self.stats.faults_fired += 1;
                self.stats.acks_dropped += 1;
                None
            }
            ShardAction::DriverPoll => self.driver_poll(p),
            ShardAction::DriverWindow => self.driver_window(),
            ShardAction::Repair => self.repair(),
            ShardAction::Crash => self.crash(),
        }
    }

    fn publish(&mut self, p: &ModelParams) -> Option<Violation> {
        let probe = matches!(self.health, MHealth::Rebuilding { .. });
        let (opcode, page) = if probe {
            self.probe_pending = false;
            (CpOpcode::Probe, 0)
        } else {
            (CpOpcode::Writeback, u64::from(self.txn_index) + 1)
        };
        self.seq = self.seq.wrapping_add(1);
        self.phase = (self.phase % 15) + 1;
        let cmd = CpCommand {
            phase: self.phase,
            seq: self.seq,
            opcode,
            dram_slot: 0,
            nand_page: page,
            wb_nand_page: None,
        };
        self.driver = Driver::InFlight(DriverTxn::new(cmd, &p.recovery_params()));
        self.cmd = Some(cmd);
        self.cmd_corrupt = false;
        self.ack_polled = false;
        None
    }

    fn fpga_poll(&mut self) -> Option<Violation> {
        let word = self.mailbox_word()?;
        match self.fproto.classify(&word) {
            PollVerdict::Execute(c) => self.staged = Some(Staged::Fresh(c)),
            PollVerdict::Replay { cmd, ok, code } => {
                self.stats.replayed_acks += 1;
                self.staged = Some(Staged::Replay(cmd, ok, code));
            }
            PollVerdict::Garbage { count } => {
                if count {
                    self.stats.cmd_decode_failures += 1;
                }
            }
            PollVerdict::Stale => {}
        }
        None
    }

    fn fpga_poll_corrupt(&mut self) -> Option<Violation> {
        self.cmd_corrupt = true;
        self.fault_budget -= 1;
        self.stats.faults_fired += 1;
        let word = self.mailbox_word()?;
        if let PollVerdict::Garbage { count: true } = self.fproto.classify(&word) {
            self.stats.cmd_decode_failures += 1;
        }
        None
    }

    fn fpga_run(&mut self) -> Option<Violation> {
        match self.staged.take()? {
            Staged::Fresh(c) => {
                if c.opcode == CpOpcode::Writeback {
                    if c.nand_page <= self.nand_gen {
                        return Some(Violation::new(
                            "persist/nand-regression",
                            format!(
                                "execution wrote generation {} over medium generation {} \
                                 (duplicate or reordered execution)",
                                c.nand_page, self.nand_gen
                            ),
                        ));
                    }
                    self.nand_gen = c.nand_page;
                }
                self.pending_ack = Some(self.fproto.complete(&c, true, ACK_OK));
            }
            Staged::Replay(c, ok, code) => {
                self.pending_ack = Some(self.fproto.complete(&c, ok, code));
            }
        }
        None
    }

    fn fpga_run_fail(&mut self) -> Option<Violation> {
        if let Some(Staged::Fresh(c)) = self.staged.take() {
            self.fault_budget -= 1;
            self.stats.faults_fired += 1;
            self.stats.nand_errors_nacked += 1;
            self.pending_ack = Some(self.fproto.complete(&c, false, ACK_ERR_NAND));
        }
        None
    }

    fn driver_poll(&mut self, p: &ModelParams) -> Option<Violation> {
        self.ack_polled = true;
        let Driver::InFlight(txn) = &self.driver else {
            return None;
        };
        let ack = self.ack?;
        let outcome = if p.legacy_phase_match {
            // The pre-seq-echo protocol: phase equality alone accepts.
            if ack.phase == txn.command().phase {
                if ack.ok {
                    AckOutcome::Accepted {
                        recovered: txn.attempts_made() > 1,
                    }
                } else {
                    AckOutcome::Nacked { code: ack.code }
                }
            } else {
                AckOutcome::Ignored
            }
        } else {
            txn.on_ack(Some(&ack))
        };
        let cmd = *txn.command();
        match outcome {
            AckOutcome::Ignored => None,
            AckOutcome::Accepted { recovered } => {
                if recovered {
                    self.stats.cp_recovered += 1;
                }
                self.driver = Driver::Idle;
                if cmd.opcode == CpOpcode::Probe {
                    self.stats.rebuilds_completed += 1;
                    self.record_rebuild_end(true, true);
                    self.log_edge(MHealth::Healthy);
                    self.attempt_ctr = 0;
                    None
                } else {
                    self.txn_index += 1;
                    if self.nand_gen < cmd.nand_page {
                        return Some(Violation::new(
                            "persist/acked-unpersisted",
                            format!(
                                "driver accepted ack (phase {}, seq {}) for generation {} \
                                 but the medium holds generation {}: a never-executed \
                                 writeback was reported durable",
                                ack.phase, ack.seq, cmd.nand_page, self.nand_gen
                            ),
                        ));
                    }
                    self.acked_gen = self.acked_gen.max(cmd.nand_page);
                    None
                }
            }
            AckOutcome::Nacked { .. } => {
                self.driver = Driver::Idle;
                if cmd.opcode == CpOpcode::Probe {
                    self.stats.rebuilds_failed += 1;
                    self.stats.degraded_entries += 1;
                    self.record_rebuild_end(false, false);
                    self.log_edge(MHealth::Degraded {
                        reason: MReason::AuditFailed,
                        since: self.clock,
                    });
                    None
                } else {
                    self.txn_index += 1;
                    if self.nand_gen == cmd.nand_page {
                        return Some(Violation::new(
                            "persist/nacked-visible",
                            format!(
                                "generation {} was nacked yet sits on the medium",
                                cmd.nand_page
                            ),
                        ));
                    }
                    self.nacked.push(cmd.nand_page);
                    None
                }
            }
        }
    }

    fn driver_window(&mut self) -> Option<Violation> {
        let Driver::InFlight(txn) = &mut self.driver else {
            return None;
        };
        if !txn.on_window() {
            return None;
        }
        self.stats.cp_attempt_timeouts += 1;
        match txn.next_attempt() {
            RetryOutcome::Retransmit => {
                self.stats.cp_retransmits += 1;
                self.phase = (self.phase % 15) + 1;
                let cmd = txn.republish(self.phase);
                self.cmd = Some(cmd);
                self.cmd_corrupt = false;
                self.ack_polled = false;
                None
            }
            RetryOutcome::Exhausted => {
                let cmd = *txn.command();
                let attempts = txn.attempts_made();
                self.driver = Driver::Idle;
                self.stats.cp_transactions_failed += 1;
                self.stats.degraded_entries += 1;
                let probe = cmd.opcode == CpOpcode::Probe;
                if probe {
                    self.stats.rebuilds_failed += 1;
                    self.record_rebuild_end(false, false);
                } else {
                    self.txn_index += 1;
                }
                self.log_edge(MHealth::Degraded {
                    reason: MReason::CpExhausted { probe, attempts },
                    since: self.clock,
                });
                None
            }
        }
    }

    fn repair(&mut self) -> Option<Violation> {
        self.rebuild_budget -= 1;
        self.stats.rebuilds_started += 1;
        self.attempt_ctr += 1;
        self.rebuild_started_at = self.clock;
        self.log_edge(MHealth::Rebuilding {
            attempt: self.attempt_ctr,
            since: self.clock,
        });
        // Fresh sequence epoch for the re-handshake, as the simulator's
        // repair path does.
        self.seq = self.seq.wrapping_add(0x10);
        self.probe_pending = true;
        None
    }

    fn crash(&mut self) -> Option<Violation> {
        self.crash_budget -= 1;
        self.stats.power_fails_fired += 1;
        self.stats.power_fails_recovered += 1;
        let was_rebuilding = matches!(self.health, MHealth::Rebuilding { .. });
        // What the fresh boot's log must open with: a rebuild cut by
        // power becomes RebuildInterrupted; an already-degraded shard
        // re-degrades for its original reason; a healthy shard boots
        // with an empty log.
        let relog = match self.health {
            MHealth::Rebuilding { .. } => Some(MReason::RebuildInterrupted),
            MHealth::Degraded { reason, .. } => Some(reason),
            MHealth::Healthy => None,
        };
        if was_rebuilding {
            self.stats.rebuilds_failed += 1;
            self.record_rebuild_end(false, false);
        }
        if let Driver::InFlight(txn) = &self.driver {
            // The interrupted transaction surfaces as a power error to
            // its caller: neither acked nor nacked, and — critically for
            // the recovery ledger — its cut-short attempt never reaches
            // an ack-wait timeout.
            if txn.command().opcode != CpOpcode::Probe {
                self.txn_index += 1;
            }
        }
        self.driver = Driver::Idle;
        self.probe_pending = false;
        // Volatile state vanishes: the CP mailbox region is
        // re-initialised and the FPGA reboots fresh.
        self.cmd = None;
        self.cmd_corrupt = false;
        self.ack = None;
        self.ack_polled = false;
        self.fproto = FpgaProto::new();
        self.staged = None;
        self.pending_ack = None;
        // A power-cycle restart restarts both the clock and the health
        // log (the check_health contract).
        self.clock = 0;
        self.log.clear();
        self.health = MHealth::Healthy;
        if let Some(reason) = relog {
            self.log_edge(MHealth::Degraded { reason, since: 0 });
        }
        // Crash consistency: the medium must still hold every
        // acknowledged generation.
        if self.acked_gen > self.nand_gen {
            return Some(Violation::new(
                "persist/acked-lost",
                format!(
                    "after power fail the medium holds generation {} but generation {} \
                     was acknowledged durable",
                    self.nand_gen, self.acked_gen
                ),
            ));
        }
        None
    }

    /// Evidence for [`nvdimmc_check::check_health`]: the replayable
    /// transition log and rebuild ledger of the current boot epoch.
    pub fn health_evidence(&self) -> (Vec<HealthTransition>, Vec<RebuildReport>) {
        let log = self
            .log
            .iter()
            .map(|e| HealthTransition {
                from: e.from.materialize(),
                to: e.to.materialize(),
                at: SimTime::from_ns(u64::from(e.at)),
            })
            .collect();
        let reports = self.reports.iter().map(|r| r.materialize()).collect();
        (log, reports)
    }

    /// The shard's recovery-ledger counters.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Number of data transactions the driver has retired (acked,
    /// nacked, abandoned or interrupted).
    pub fn txns_retired(&self) -> u32 {
        self.txn_index
    }

    /// Highest generation on the persistent medium.
    pub fn nand_generation(&self) -> u64 {
        self.nand_gen
    }

    /// Highest generation the driver believes durable.
    pub fn acked_generation(&self) -> u64 {
        self.acked_gen
    }
}
