//! Exploration bounds: how big a protocol instance the checker
//! enumerates exhaustively.
//!
//! Every bound is finite and small by design — the point of a model
//! checker is an *exhaustive* sweep of a small instance, not a sampled
//! sweep of a big one. The presets encode the three configurations the
//! project ships: a [`ModelParams::smoke`] instance for unit tests, the
//! [`ModelParams::ci`] instance the CI gate explores on every push, and
//! the [`ModelParams::bug_hunt`] instance that reproduces the stale-ack
//! phase-aliasing bug against the legacy (phase-only) ack matcher.

use nvdimmc_core::RecoveryParams;

/// Bounds of one model-checking run.
///
/// Fault, crash and rebuild budgets are **per shard**: shards share no
/// state, so a per-shard budget keeps every action of shard *i*
/// independent of every action of shard *j* — the property the
/// persistent-set reduction in [`crate::explore()`] relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelParams {
    /// Number of independent channel shards.
    pub shards: usize,
    /// Writeback transactions each shard's driver issues.
    pub txns_per_shard: u32,
    /// Ack-wait window budget of a ladder attempt (`cp_timeout_windows`).
    pub timeout_windows: u32,
    /// Retransmit budget (`cp_max_retransmits`); attempts = this + 1.
    pub max_retransmits: u32,
    /// Backoff multiplier applied to the window budget per retransmit.
    pub backoff: u32,
    /// Per-shard injected-fault budget (ack drop, command-capture
    /// corruption, NAND nack).
    pub fault_budget: u32,
    /// Per-shard power-fail budget: how many crash points the scheduler
    /// may inject on that shard.
    pub crash_budget: u32,
    /// Per-shard online-repair budget (degraded → rebuilding edges).
    pub rebuild_budget: u32,
    /// Match acks by phase alone, the pre-seq-echo protocol. The shipped
    /// protocol matches phase *and* seq; this knob keeps the bug that
    /// motivated the seq echo reproducible as a regression.
    pub legacy_phase_match: bool,
    /// Hard cap on schedule length (cycle/blow-up guard; shipped bounds
    /// never reach it).
    pub max_depth: usize,
}

impl ModelParams {
    /// Tiny instance for unit tests: one shard, strict matching, one
    /// fault + one crash point + one rebuild. 2,014 distinct states —
    /// explores in well under a second even unoptimised.
    pub fn smoke() -> Self {
        ModelParams {
            shards: 1,
            txns_per_shard: 1,
            timeout_windows: 1,
            max_retransmits: 1,
            backoff: 2,
            fault_budget: 1,
            crash_budget: 1,
            rebuild_budget: 1,
            legacy_phase_match: false,
            max_depth: 4096,
        }
    }

    /// The CI gate instance: two shards, each with one transaction, one
    /// fault, one crash point and one rebuild, strict matching. Under
    /// the persistent-set reduction this is 573,301 distinct states
    /// (~2 s in release); the naive sweep of the same instance is
    /// 7,458,361 states (~51 s) — a measured 13× reduction.
    pub fn ci() -> Self {
        ModelParams {
            shards: 2,
            txns_per_shard: 1,
            timeout_windows: 1,
            max_retransmits: 1,
            backoff: 2,
            fault_budget: 1,
            crash_budget: 1,
            rebuild_budget: 1,
            legacy_phase_match: false,
            max_depth: 4096,
        }
    }

    /// Reduction-calibration instance: identical bounds to
    /// [`ModelParams::ci`], kept as a separate named preset so the
    /// calibration run (`nvdimmc-model compare`) is pinned to the
    /// shipped CI bound even if the gate instance grows later. Small
    /// enough that the *naive* interleaving sweep also finishes, so the
    /// partial-order reduction factor is measured rather than asserted.
    pub fn calibrate() -> Self {
        ModelParams::ci()
    }

    /// Micro instance for the *schedule-level* baseline: the full
    /// schedule tree ([`crate::Mode::Tree`], no state cache, no sleep
    /// sets) is only tractable with adversarial budgets zeroed and no
    /// retransmit ladder — 6,300 schedules, against which the sleep-set
    /// sweep's 80 is a measured 79× reduction. (One retransmit already
    /// pushes the tree to 3.8 × 10⁸ schedules.)
    pub fn micro() -> Self {
        ModelParams {
            shards: 2,
            txns_per_shard: 1,
            timeout_windows: 1,
            max_retransmits: 0,
            backoff: 1,
            fault_budget: 0,
            crash_budget: 0,
            rebuild_budget: 0,
            legacy_phase_match: false,
            max_depth: 256,
        }
    }

    /// The configuration that finds the stale-ack phase-aliasing bug:
    /// one shard, a 15-attempt ladder (so the 4-bit phase wraps onto the
    /// previous transaction's persistent ack word) and **zero** fault
    /// budget — the only adversarial power needed is scheduling (an FPGA
    /// that stops polling).
    pub fn bug_hunt() -> Self {
        ModelParams {
            shards: 1,
            txns_per_shard: 2,
            timeout_windows: 1,
            max_retransmits: 14,
            backoff: 1,
            fault_budget: 0,
            crash_budget: 0,
            rebuild_budget: 0,
            legacy_phase_match: true,
            max_depth: 4096,
        }
    }

    /// The driver-ladder parameters this instance hands to
    /// [`nvdimmc_core::DriverTxn::new`].
    pub fn recovery_params(&self) -> RecoveryParams {
        RecoveryParams {
            cp_timeout_windows: self.timeout_windows,
            cp_max_retransmits: self.max_retransmits,
            cp_backoff: self.backoff,
            ..RecoveryParams::default()
        }
    }

    /// Serialises the bounds as the `# params` header line of a schedule
    /// artifact (see [`crate::schedule`]).
    pub fn to_header(&self) -> String {
        format!(
            "shards={} txns={} windows={} retransmits={} backoff={} \
             faults={} crashes={} rebuilds={} legacy={} depth={}",
            self.shards,
            self.txns_per_shard,
            self.timeout_windows,
            self.max_retransmits,
            self.backoff,
            self.fault_budget,
            self.crash_budget,
            self.rebuild_budget,
            u8::from(self.legacy_phase_match),
            self.max_depth,
        )
    }

    /// Parses a `# params` header line produced by
    /// [`ModelParams::to_header`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed `key=value` field.
    pub fn from_header(line: &str) -> Result<Self, String> {
        let mut p = ModelParams::smoke();
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed params field {field:?}"))?;
            let v: u64 = value
                .parse()
                .map_err(|e| format!("params field {key}: {e}"))?;
            match key {
                "shards" => p.shards = v as usize,
                "txns" => p.txns_per_shard = v as u32,
                "windows" => p.timeout_windows = v as u32,
                "retransmits" => p.max_retransmits = v as u32,
                "backoff" => p.backoff = v as u32,
                "faults" => p.fault_budget = v as u32,
                "crashes" => p.crash_budget = v as u32,
                "rebuilds" => p.rebuild_budget = v as u32,
                "legacy" => p.legacy_phase_match = v != 0,
                "depth" => p.max_depth = v as usize,
                other => return Err(format!("unknown params field {other:?}")),
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        for p in [
            ModelParams::smoke(),
            ModelParams::ci(),
            ModelParams::calibrate(),
            ModelParams::micro(),
            ModelParams::bug_hunt(),
        ] {
            let line = p.to_header();
            assert_eq!(ModelParams::from_header(&line), Ok(p), "{line}");
        }
    }

    #[test]
    fn bad_headers_are_rejected_with_context() {
        assert!(ModelParams::from_header("shards").is_err());
        assert!(ModelParams::from_header("shards=x").is_err());
        assert!(ModelParams::from_header("quux=3").is_err());
    }
}
