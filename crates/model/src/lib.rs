//! # nvdimmc-model — exhaustive CP-protocol model checker
//!
//! A bounded, deterministic state-space explorer for the NVDIMM-C
//! control-path protocol. It model-checks, under an adversarial
//! scheduler that may starve either side, drop or corrupt messages and
//! cut power at any instant:
//!
//! - the **CP mailbox protocol** — sequence numbers and epochs, the
//!   bounded retransmit ladder with backoff, FPGA ack replay by
//!   transaction key, and the `Probe` re-handshake — via the *same*
//!   pure transition functions ([`nvdimmc_core::DriverTxn`],
//!   [`nvdimmc_core::FpgaProto`]) the simulator executes;
//! - the **shard health state machine** (`Healthy → Degraded →
//!   Rebuilding → …`), including rebuilds interrupted by power failure;
//! - **crash consistency**, by enumerating a power-fail point at every
//!   state (every persistence boundary) and checking that acknowledged
//!   writebacks survive the reboot.
//!
//! Properties come from two places: transition-level persistence
//! invariants (acked data must be on the medium, nacked data must not
//! be, executions never regress the medium) checked on every applied
//! action, and the `nvdimmc-check` passes ([`nvdimmc_check::check_health`],
//! [`nvdimmc_check::check_recovery`]) replayed as the oracle on every
//! terminal state — so the model checker and the simulator's fault
//! campaigns are audited by one shared set of predicates.
//!
//! Exploration offers sleep-set DPOR and a persistent-set reduction
//! with 64-bit state-fingerprint hashing (see [`explore()`]); violations
//! are emitted as minimized, bit-identically replayable schedule
//! artifacts (see [`schedule`]). The checker's first catch — a stale
//! ack aliasing the 4-bit phase of a 15-attempt retransmit ladder and
//! being accepted for a never-executed writeback — is kept reproducible
//! via [`ModelParams::bug_hunt`] and fixed in the shipped protocol by
//! the ack sequence-number echo.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod explore;
pub mod params;
pub mod schedule;
pub mod shard;
pub mod system;

pub use explore::{explore, ExploreReport, FoundViolation, Mode};
pub use params::ModelParams;
pub use schedule::{from_text, minimize, replay, to_text, ReplayResult};
pub use shard::{ShardAction, ShardState, Violation};
pub use system::{Action, ModelState};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_instance_is_clean_in_hashed_modes() {
        let p = ModelParams::smoke();
        for mode in [Mode::Naive, Mode::Persistent] {
            let r = explore(&p, mode);
            assert!(r.violation.is_none(), "{}: {:?}", mode.name(), r.violation);
            assert_eq!(r.truncated, 0, "{}", mode.name());
            assert!(r.distinct_states > 10, "{}", mode.name());
        }
    }

    #[test]
    fn micro_instance_is_clean_in_schedule_modes_and_sleep_reduces() {
        // The schedule-enumeration modes carry no state cache, so they
        // are only run at the micro bound (adversarial budgets zeroed).
        let p = ModelParams::micro();
        let tree = explore(&p, Mode::Tree);
        let sleep = explore(&p, Mode::SleepSet);
        for (name, r) in [("tree", &tree), ("sleep", &sleep)] {
            assert!(r.violation.is_none(), "{name}: {:?}", r.violation);
            assert_eq!(r.truncated, 0, "{name}");
            assert!(r.schedules > 1, "{name}");
        }
        assert!(
            sleep.schedules < tree.schedules,
            "sleep sets explored {} schedules vs the tree's {}",
            sleep.schedules,
            tree.schedules
        );
    }

    #[test]
    fn legacy_phase_matching_is_refuted_with_a_replayable_schedule() {
        let p = ModelParams::bug_hunt();
        let r = explore(&p, Mode::Persistent);
        let found = r.violation.expect("the phase-alias bug must be found");
        assert_eq!(found.violation.rule, "persist/acked-unpersisted");
        // The counterexample replays bit-identically...
        let replayed = replay(&p, &found.schedule);
        assert_eq!(
            replayed.violation.as_ref().map(|v| &v.rule[..]),
            Some("persist/acked-unpersisted")
        );
        // ...and still does after minimization.
        let minimal = minimize(&p, &found.schedule, &found.violation.rule);
        assert!(minimal.len() <= found.schedule.len());
        let replayed = replay(&p, &minimal);
        assert_eq!(
            replayed.violation.as_ref().map(|v| &v.rule[..]),
            Some("persist/acked-unpersisted")
        );
    }

    #[test]
    fn shipped_protocol_survives_the_bug_hunt_instance() {
        let p = ModelParams {
            legacy_phase_match: false,
            ..ModelParams::bug_hunt()
        };
        let r = explore(&p, Mode::Persistent);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.terminals > 0);
    }

    #[test]
    fn naive_and_persistent_agree_on_verdicts_and_terminals() {
        // Two-shard instance with a fault budget (so interleavings are
        // non-trivial) but small enough that the naive sweep stays
        // debug-build fast; the full CI-bound comparison runs in CI via
        // `nvdimmc-model compare`.
        let p = ModelParams {
            fault_budget: 1,
            ..ModelParams::micro()
        };
        let naive = explore(&p, Mode::Naive);
        let reduced = explore(&p, Mode::Persistent);
        assert_eq!(naive.violation, reduced.violation);
        assert_eq!(
            naive.terminals, reduced.terminals,
            "the reduction must reach every terminal combination"
        );
        assert!(
            reduced.distinct_states <= naive.distinct_states,
            "reduction made things worse: {} > {}",
            reduced.distinct_states,
            naive.distinct_states
        );
    }
}
