//! The global model state: a vector of independent [`ShardState`]s plus
//! the terminal-state oracle that reuses the `nvdimmc-check` passes.
//!
//! Shards share nothing — no mailbox, no medium, no budgets — so every
//! action of shard *i* commutes with every action of shard *j ≠ i*.
//! That independence is what makes the persistent-set reduction in
//! [`crate::explore()`] sound, and it is stated here (rather than proved
//! per action) because the type owns the only cross-shard coupling
//! point: the merged [`RecoveryStats`] ledger, which is only ever read
//! at *terminal* states, where every interleaving has produced the same
//! per-shard counters.

use crate::params::ModelParams;
use crate::shard::{ShardAction, ShardState, Violation, ALL_ACTIONS};
use nvdimmc_check::{check_health, check_recovery, Severity};
use nvdimmc_core::RecoveryStats;
use std::hash::{Hash, Hasher};

/// One scheduler step: which shard, which of its actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Action {
    /// Target shard index.
    pub shard: usize,
    /// The shard-local action.
    pub act: ShardAction,
}

impl Action {
    /// Two actions are independent exactly when they touch different
    /// shards (shards share no state).
    pub fn independent(&self, other: &Action) -> bool {
        self.shard != other.shard
    }
}

/// The complete state of a model-checking run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelState {
    shards: Vec<ShardState>,
}

impl ModelState {
    /// The initial state: every shard freshly booted.
    pub fn new(p: &ModelParams) -> Self {
        ModelState {
            shards: (0..p.shards).map(|_| ShardState::new(p)).collect(),
        }
    }

    /// Read access to the per-shard states.
    pub fn shards(&self) -> &[ShardState] {
        &self.shards
    }

    /// Whether `a` may fire here.
    pub fn is_enabled(&self, a: Action, p: &ModelParams) -> bool {
        self.shards
            .get(a.shard)
            .is_some_and(|s| s.is_enabled(a.act, p))
    }

    /// Every enabled action, shard-major in the fixed action order.
    pub fn enabled(&self, p: &ModelParams) -> Vec<Action> {
        let mut out = Vec::new();
        for (shard, s) in self.shards.iter().enumerate() {
            for &act in &ALL_ACTIONS {
                if s.is_enabled(act, p) {
                    out.push(Action { shard, act });
                }
            }
        }
        out
    }

    /// A persistent set: all enabled actions of the lowest-indexed shard
    /// that has any. Sound because actions of distinct shards are fully
    /// independent (they commute and neither enables nor disables the
    /// other), so delaying every other shard's actions cannot lose a
    /// reachable local state or terminal combination.
    pub fn enabled_persistent(&self, p: &ModelParams) -> Vec<Action> {
        for (shard, s) in self.shards.iter().enumerate() {
            let acts: Vec<Action> = ALL_ACTIONS
                .iter()
                .filter(|&&act| s.is_enabled(act, p))
                .map(|&act| Action { shard, act })
                .collect();
            if !acts.is_empty() {
                return acts;
            }
        }
        Vec::new()
    }

    /// Applies one action (a disabled action is a deterministic no-op)
    /// and reports the first invariant its effects violated.
    pub fn apply(&mut self, a: Action, p: &ModelParams) -> Option<Violation> {
        let s = self.shards.get_mut(a.shard)?;
        s.apply(a.act, p).map(|mut v| {
            v.shard = a.shard;
            v
        })
    }

    /// True when no shard has an enabled action.
    pub fn is_terminal(&self, p: &ModelParams) -> bool {
        self.shards.iter().all(|s| s.is_terminal(p))
    }

    /// Deterministic 64-bit fingerprint for the visited set.
    ///
    /// `DefaultHasher` is keyed with fixed constants, so fingerprints
    /// are stable across runs and platforms — a prerequisite for
    /// bit-identical replay of recorded explorations.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.shards.hash(&mut h);
        h.finish()
    }

    /// The terminal-state property oracle: replays each shard's health
    /// evidence through [`check_health`] and the merged recovery ledger
    /// through [`check_recovery`], returning every error-severity
    /// diagnostic as a [`Violation`]. Ledger violations carry
    /// `shard == shards.len()` (the merged ledger has no single shard).
    pub fn oracle(&self, _p: &ModelParams) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut merged = RecoveryStats::default();
        for (shard, s) in self.shards.iter().enumerate() {
            let (log, reports) = s.health_evidence();
            for d in check_health(shard, &log, &reports) {
                if d.severity == Severity::Error {
                    out.push(Violation {
                        rule: d.rule.to_string(),
                        message: d.message,
                        shard,
                    });
                }
            }
            merged.merge(&s.stats().materialize());
        }
        for d in check_recovery(&merged) {
            if d.severity == Severity::Error {
                out.push(Violation {
                    rule: d.rule.to_string(),
                    message: d.message,
                    shard: self.shards.len(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one shard through its happy path by always taking the
    /// first enabled action under the persistent-set policy.
    #[test]
    fn run_to_terminal_is_clean_without_adversary() {
        let p = ModelParams {
            fault_budget: 0,
            crash_budget: 0,
            rebuild_budget: 0,
            ..ModelParams::smoke()
        };
        let mut s = ModelState::new(&p);
        let mut steps = 0;
        while let Some(&a) = s.enabled_persistent(&p).first() {
            assert!(s.apply(a, &p).is_none(), "violation on {a:?}");
            steps += 1;
            assert!(steps < 1000, "no terminal state reached");
        }
        assert!(s.is_terminal(&p));
        assert_eq!(s.oracle(&p), vec![], "oracle flagged the happy path");
        assert_eq!(s.shards()[0].txns_retired(), p.txns_per_shard);
        assert_eq!(
            s.shards()[0].acked_generation(),
            u64::from(p.txns_per_shard),
            "every transaction acked"
        );
    }

    #[test]
    fn fingerprint_ignores_logical_time_but_not_protocol_state() {
        let p = ModelParams::smoke();
        let a = ModelState::new(&p);
        let mut b = ModelState::new(&p);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let v = b.apply(
            Action {
                shard: 0,
                act: ShardAction::Publish,
            },
            &p,
        );
        assert!(v.is_none());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn disabled_actions_are_noops() {
        let p = ModelParams::smoke();
        let mut s = ModelState::new(&p);
        let before = s.clone();
        // Nothing is in flight: every FPGA/driver action is disabled.
        for act in [
            ShardAction::FpgaPoll,
            ShardAction::FpgaRun,
            ShardAction::FpgaAck,
            ShardAction::DriverPoll,
            ShardAction::DriverWindow,
            ShardAction::Repair,
        ] {
            assert!(s.apply(Action { shard: 0, act }, &p).is_none());
        }
        assert_eq!(s, before, "disabled actions mutated state");
    }
}
