//! The state-space explorer: exhaustive DFS with three successor
//! policies.
//!
//! - [`Mode::Naive`] — every enabled action of every shard, with
//!   64-bit state-fingerprint deduplication. The ground truth (and the
//!   baseline the reduction factor is measured against).
//! - [`Mode::SleepSet`] — classic sleep-set DPOR over *schedules*: after
//!   a branch explores action `a`, sibling branches carry `a` in their
//!   sleep set and skip it until a dependent action (same shard) wakes
//!   it. No state cache — this mode measures pure schedule-level
//!   reduction and is only practical at small bounds.
//! - [`Mode::Persistent`] — the CI workhorse: at every state, expand
//!   only the enabled actions of the lowest-indexed shard that has any
//!   (a persistent set, since actions of distinct shards are fully
//!   independent), combined with fingerprint deduplication.
//!
//! Soundness note: the properties are all *per-shard* (persistence
//! invariants are checked inside the shard transition; the health
//! oracle is per shard; the recovery-ledger oracle reads per-shard
//! counters summed at terminal states, and every interleaving of
//! independent actions retires with identical per-shard counters). For
//! such properties a persistent set loses nothing: every reachable
//! shard-local state and every reachable combination of terminal shard
//! states is still visited. A future *cross*-shard invariant checked at
//! non-terminal states would need the dependency relation coarsened.
//!
//! Determinism: successor order is fixed (shard-major, declared action
//! order), the visited set is only ever queried by fingerprint, and
//! fingerprints are stable across runs — so explorations, including the
//! counterexample schedules they emit, replay bit-identically.

use crate::params::ModelParams;
use crate::shard::Violation;
use crate::system::{Action, ModelState};
use std::collections::HashSet;

/// Successor-expansion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// All enabled actions + state-fingerprint dedup (baseline for the
    /// state-level reduction factor).
    Naive,
    /// Full schedule enumeration: all enabled actions, no state cache,
    /// no sleep sets (baseline for the schedule-level reduction factor;
    /// only tractable at micro bounds).
    Tree,
    /// Sleep-set DPOR over schedules, no state cache.
    SleepSet,
    /// Persistent-set reduction + state-fingerprint dedup (CI default).
    Persistent,
}

impl Mode {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Naive => "naive",
            Mode::Tree => "tree",
            Mode::SleepSet => "sleep",
            Mode::Persistent => "persistent",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "naive" => Some(Mode::Naive),
            "tree" => Some(Mode::Tree),
            "sleep" => Some(Mode::SleepSet),
            "persistent" => Some(Mode::Persistent),
            _ => None,
        }
    }
}

/// A violation together with the schedule that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundViolation {
    /// What fired.
    pub violation: Violation,
    /// The action sequence from the initial state to the violation
    /// (inclusive of the violating action for transition invariants;
    /// the full path for terminal-oracle violations).
    pub schedule: Vec<Action>,
}

/// Exploration metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Distinct states visited (fingerprint-deduplicated modes) or
    /// nodes expanded (sleep-set mode).
    pub distinct_states: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Terminal states reached (post-dedup).
    pub terminals: u64,
    /// Complete or pruned schedules (meaningful in sleep-set mode).
    pub schedules: u64,
    /// Deepest schedule seen.
    pub max_depth_seen: usize,
    /// Paths cut by the `max_depth` guard (0 at shipped bounds).
    pub truncated: u64,
    /// The first violation found, with its reaching schedule.
    pub violation: Option<FoundViolation>,
}

/// Exhaustively explores the instance `p` under `mode`, stopping at the
/// first invariant violation (transition invariants are checked on
/// every applied action, the `nvdimmc-check` oracles on every terminal
/// state).
pub fn explore(p: &ModelParams, mode: Mode) -> ExploreReport {
    let mut report = ExploreReport::default();
    match mode {
        Mode::Naive | Mode::Persistent => dfs_hashed(p, mode, &mut report),
        Mode::SleepSet | Mode::Tree => {
            let root = ModelState::new(p);
            let mut path = Vec::new();
            sleep_dfs(
                p,
                &root,
                &[],
                mode == Mode::SleepSet,
                &mut path,
                &mut report,
            );
        }
    }
    report
}

/// One DFS stack entry of the hashed modes.
struct Frame {
    state: ModelState,
    actions: Vec<Action>,
    next: usize,
}

/// Iterative DFS with fingerprint deduplication (naive / persistent).
fn dfs_hashed(p: &ModelParams, mode: Mode, report: &mut ExploreReport) {
    let successors = |s: &ModelState| match mode {
        Mode::Naive => s.enabled(p),
        _ => s.enabled_persistent(p),
    };

    let mut visited: HashSet<u64> = HashSet::new();
    let root = ModelState::new(p);
    visited.insert(root.fingerprint());
    report.distinct_states = 1;
    let root_actions = successors(&root);
    if root_actions.is_empty() {
        report.terminals += 1;
        report.schedules += 1;
        if let Some(v) = terminal_violation(&root, p, &[]) {
            report.violation = Some(v);
        }
        return;
    }
    let mut path: Vec<Action> = Vec::new();
    let mut stack = vec![Frame {
        state: root,
        actions: root_actions,
        next: 0,
    }];

    while let Some(frame) = stack.last_mut() {
        if frame.next >= frame.actions.len() {
            stack.pop();
            path.pop();
            continue;
        }
        let action = frame.actions[frame.next];
        frame.next += 1;
        let mut child = frame.state.clone();
        report.transitions += 1;
        if let Some(violation) = child.apply(action, p) {
            let mut schedule = path.clone();
            schedule.push(action);
            report.max_depth_seen = report.max_depth_seen.max(schedule.len());
            report.violation = Some(FoundViolation {
                violation,
                schedule,
            });
            return;
        }
        if !visited.insert(child.fingerprint()) {
            continue;
        }
        report.distinct_states += 1;
        report.max_depth_seen = report.max_depth_seen.max(path.len() + 1);
        let actions = successors(&child);
        if actions.is_empty() {
            report.terminals += 1;
            report.schedules += 1;
            path.push(action);
            let found = terminal_violation(&child, p, &path);
            path.pop();
            if let Some(v) = found {
                report.violation = Some(v);
                return;
            }
            continue;
        }
        if path.len() + 1 >= p.max_depth {
            report.truncated += 1;
            continue;
        }
        path.push(action);
        stack.push(Frame {
            state: child,
            actions,
            next: 0,
        });
    }
}

/// Recursive DFS over schedules (no state cache); with `use_sleep` it
/// is classic sleep-set DPOR, without it the full schedule tree.
/// Returns `true` when exploration must stop (violation recorded).
fn sleep_dfs(
    p: &ModelParams,
    state: &ModelState,
    sleep: &[Action],
    use_sleep: bool,
    path: &mut Vec<Action>,
    report: &mut ExploreReport,
) -> bool {
    report.distinct_states += 1;
    report.max_depth_seen = report.max_depth_seen.max(path.len());
    let enabled = state.enabled(p);
    if enabled.is_empty() {
        report.terminals += 1;
        report.schedules += 1;
        if let Some(v) = terminal_violation(state, p, path) {
            report.violation = Some(v);
            return true;
        }
        return false;
    }
    let explore_set: Vec<Action> = enabled
        .iter()
        .copied()
        .filter(|a| !sleep.contains(a))
        .collect();
    if explore_set.is_empty() {
        // Every enabled action sleeps: this schedule is a redundant
        // reordering of one already explored.
        report.schedules += 1;
        return false;
    }
    if path.len() >= p.max_depth {
        report.truncated += 1;
        return false;
    }
    let mut grown: Vec<Action> = sleep.to_vec();
    for action in explore_set {
        let mut child = state.clone();
        report.transitions += 1;
        if let Some(violation) = child.apply(action, p) {
            let mut schedule = path.clone();
            schedule.push(action);
            report.violation = Some(FoundViolation {
                violation,
                schedule,
            });
            return true;
        }
        // The child keeps only sleepers independent of the action just
        // taken; dependent sleepers wake up.
        let child_sleep: Vec<Action> = grown
            .iter()
            .copied()
            .filter(|b| b.independent(&action))
            .collect();
        path.push(action);
        let stop = sleep_dfs(p, &child, &child_sleep, use_sleep, path, report);
        path.pop();
        if stop {
            return true;
        }
        // Later siblings may skip re-exploring this action's
        // commutations (sleep-set mode only; tree mode re-explores
        // everything — that *is* the baseline).
        if use_sleep {
            grown.push(action);
        }
    }
    false
}

/// Runs the terminal oracle and packages its first error, if any, with
/// the schedule that reached the terminal state.
fn terminal_violation(
    state: &ModelState,
    p: &ModelParams,
    path: &[Action],
) -> Option<FoundViolation> {
    state
        .oracle(p)
        .into_iter()
        .next()
        .map(|violation| FoundViolation {
            violation,
            schedule: path.to_vec(),
        })
}
