//! The front-end request scheduler: bounded per-shard queues with
//! FR-FCFS-style arbitration hooks.
//!
//! The multi-channel front-end never calls into a shard directly; every
//! operation becomes one [`ShardRequest`] per interleave segment,
//! enqueued here and drained by the serving loop. The queues are bounded
//! (a full queue bounces the request back to the issuer — backpressure,
//! not silent growth), per-shard so channels never contend on a lock,
//! and instrumented: enqueue/complete counters per shard let
//! `nvdimmc-check` assert request conservation, and the FR-FCFS policy
//! counts both its locality promotions and the starvation breaks where
//! fairness overrode locality.

use nvdimmc_ddr::{BankAddr, TimingParams};
use nvdimmc_sim::{ShardCalendar, SimDuration, SimTime};
use std::collections::VecDeque;

use crate::config::PAGE_BYTES;
use crate::qos::TenantId;

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read `len` bytes.
    Read,
    /// Write the carried data.
    Write,
}

/// One queued request against a single shard's local address space.
#[derive(Debug, Clone)]
pub struct ShardRequest {
    /// Global issue order (ties broken by this — deterministic).
    pub seq: u64,
    /// Issuing tenant ([`TenantId::HOST`] for pre-tenancy call sites).
    pub tenant: TenantId,
    /// Issuing workload thread.
    pub thread: u32,
    /// Direction.
    pub kind: ReqKind,
    /// Byte offset in the shard's local space.
    pub local_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Earliest instant the device phase may start (issuer's ready time
    /// plus its software cost).
    pub not_before: SimTime,
    /// Payload for writes (empty for reads).
    pub data: Vec<u8>,
}

impl ShardRequest {
    fn local_page(&self) -> u64 {
        self.local_offset / PAGE_BYTES
    }
}

/// Arbitration policy for picking the next request off a shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Strict arrival order.
    Fcfs,
    /// First-ready FCFS flavour: prefer a request hitting the same local
    /// page as the one just served (row-buffer/cache-slot locality), but
    /// never defer the oldest request more than `starvation_limit` times.
    FrFcfs {
        /// How many times the queue head may be passed over before
        /// fairness forces it out next.
        starvation_limit: u32,
    },
}

/// Scheduler counters (all shards summed on demand; kept per shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Requests accepted into a queue.
    pub enqueued: u64,
    /// Requests completed (popped and served).
    pub completed: u64,
    /// Requests bounced because the queue was full.
    pub rejected_full: u64,
    /// Requests bounced because the shard was not admitted (rebuilding).
    pub rejected_unhealthy: u64,
    /// FR-FCFS picks that jumped the queue for page locality.
    pub locality_promotions: u64,
    /// Times the fairness counter forced the oldest request through.
    pub starvation_breaks: u64,
}

impl SchedStats {
    /// Accumulates another shard's counters.
    pub fn merge(&mut self, other: &SchedStats) {
        self.enqueued += other.enqueued;
        self.completed += other.completed;
        self.rejected_full += other.rejected_full;
        self.rejected_unhealthy += other.rejected_unhealthy;
        self.locality_promotions += other.locality_promotions;
        self.starvation_breaks += other.starvation_breaks;
    }
}

/// Bounded per-shard request queues with pluggable arbitration.
#[derive(Debug)]
pub struct RequestScheduler {
    queues: Vec<VecDeque<ShardRequest>>,
    depth: usize,
    policy: ArbitrationPolicy,
    last_page: Vec<Option<u64>>,
    head_deferrals: Vec<u32>,
    stats: Vec<SchedStats>,
    next_seq: u64,
    /// Admission gate per shard: the front-end closes it while the shard
    /// rebuilds, so no new request reaches a quiesced shard.
    admitted: Vec<bool>,
}

impl RequestScheduler {
    /// Builds queues for `shards` shards, each holding at most `depth`
    /// requests.
    pub fn new(shards: usize, depth: usize, policy: ArbitrationPolicy) -> Self {
        RequestScheduler {
            queues: vec![VecDeque::new(); shards],
            depth: depth.max(1),
            policy,
            last_page: vec![None; shards],
            head_deferrals: vec![0; shards],
            stats: vec![SchedStats::default(); shards],
            next_seq: 0,
            admitted: vec![true; shards],
        }
    }

    /// Number of shards served.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Queue bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The active arbitration policy.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// Stamps and enqueues `req` on `shard`. A full queue bounces the
    /// request back (`Err`) so the issuer can drain and retry —
    /// backpressure instead of unbounded growth.
    ///
    /// # Errors
    ///
    /// Returns the request itself when the shard queue is at depth.
    pub fn enqueue(&mut self, shard: usize, mut req: ShardRequest) -> Result<(), ShardRequest> {
        if !self.admitted[shard] {
            self.stats[shard].rejected_unhealthy += 1;
            return Err(req);
        }
        if self.queues[shard].len() >= self.depth {
            self.stats[shard].rejected_full += 1;
            return Err(req);
        }
        req.seq = self.next_seq;
        self.next_seq += 1;
        self.stats[shard].enqueued += 1;
        self.queues[shard].push_back(req);
        Ok(())
    }

    /// Picks the next request for `shard` under the arbitration policy.
    pub fn pop(&mut self, shard: usize) -> Option<ShardRequest> {
        let q = &mut self.queues[shard];
        if q.is_empty() {
            return None;
        }
        let pick = match self.policy {
            ArbitrationPolicy::Fcfs => 0,
            ArbitrationPolicy::FrFcfs { starvation_limit } => {
                if self.head_deferrals[shard] >= starvation_limit {
                    // Fairness: the head has waited long enough.
                    self.stats[shard].starvation_breaks += 1;
                    0
                } else {
                    match self.last_page[shard]
                        .and_then(|page| q.iter().position(|r| r.local_page() == page))
                    {
                        Some(i) if i > 0 => {
                            self.stats[shard].locality_promotions += 1;
                            i
                        }
                        Some(_) | None => 0,
                    }
                }
            }
        };
        if pick == 0 {
            self.head_deferrals[shard] = 0;
        } else {
            self.head_deferrals[shard] += 1;
        }
        let req = q.remove(pick)?;
        self.last_page[shard] = Some(req.local_page());
        Some(req)
    }

    /// Records a served request (pairs with [`RequestScheduler::pop`]).
    pub fn complete(&mut self, shard: usize) {
        self.stats[shard].completed += 1;
    }

    /// Opens or closes the admission gate for `shard`. Closed while the
    /// shard rebuilds; requests already queued stay queued.
    pub fn set_admitted(&mut self, shard: usize, admitted: bool) {
        self.admitted[shard] = admitted;
    }

    /// Whether `shard` currently admits new requests.
    pub fn is_admitted(&self, shard: usize) -> bool {
        self.admitted[shard]
    }

    /// Outstanding requests on `shard`.
    pub fn pending(&self, shard: usize) -> usize {
        self.queues[shard].len()
    }

    /// Per-shard counters.
    pub fn stats(&self, shard: usize) -> SchedStats {
        self.stats[shard]
    }

    /// All shards' counters summed.
    pub fn total_stats(&self) -> SchedStats {
        let mut t = SchedStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }

    /// Per-shard `(enqueued, completed)` pairs for the conservation check:
    /// with empty queues, every accepted request must have completed.
    pub fn conservation(&self) -> Vec<(u64, u64)> {
        self.stats
            .iter()
            .map(|s| (s.enqueued, s.completed))
            .collect()
    }
}

/// Places per-bank refresh windows for one shard: which bank the next
/// REFpb targets and how far its NVMC window stretches.
///
/// Placement is demand-driven with a deadline backstop, tracked in a
/// [`ShardCalendar`] keyed by bank index (the same deterministic pop-min
/// structure the executor uses for shards):
///
/// 1. a bank whose per-bank deadline (one refresh per tREFI, the JEDEC
///    average-interval budget) has passed is refreshed first — correctness
///    before throughput;
/// 2. otherwise the bank the FPGA's FSM needs next (demand placement:
///    the window lands where the NVMC actually has data to move, which is
///    what lets windows run *out of order* under write bursts);
/// 3. otherwise the earliest-deadline bank.
///
/// Window *size* comes from the per-shard queue depth: an idle queue lets
/// the window stretch to the rank-mode maximum (the NVMC can hog the
/// bank), a deep queue shrinks it toward the base window so host requests
/// get their banks back sooner.
#[derive(Debug)]
pub struct RefreshPlanner {
    /// Per-bank refresh deadlines; calendar slot = bank index.
    deadlines: ShardCalendar,
    /// Deadline spacing: every bank must be refreshed once per interval.
    interval: SimDuration,
    /// Latest queue-depth hint from the executor.
    queue_depth: usize,
    /// Windows placed on FPGA demand rather than by deadline.
    demand_placed: u64,
    /// Windows forced by an expired deadline.
    deadline_forced: u64,
}

impl RefreshPlanner {
    /// A planner whose banks are all due one `interval` from time zero.
    pub fn new(interval: SimDuration) -> Self {
        let mut deadlines = ShardCalendar::new(usize::from(BankAddr::COUNT));
        for b in 0..usize::from(BankAddr::COUNT) {
            deadlines.set(b, SimTime::ZERO + interval);
        }
        RefreshPlanner {
            deadlines,
            interval,
            queue_depth: 0,
            demand_placed: 0,
            deadline_forced: 0,
        }
    }

    /// Records the shard's current request-queue depth (sizing input).
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.queue_depth = depth;
    }

    /// Stretch code for the next demand-placed window: idle queue → the
    /// full rank-equivalent window, deep queue → shrink toward the base
    /// per-bank window.
    pub fn stretch_hint(&self) -> u8 {
        TimingParams::MAX_STRETCH.saturating_sub(self.queue_depth.min(15) as u8)
    }

    /// Picks the bank and stretch for the next REFpb issued at (or after)
    /// `now`, given the bank the FPGA wants serviced next.
    pub fn choose(&mut self, now: SimTime, wanted: Option<BankAddr>) -> (BankAddr, u8) {
        if let Some((due, idx)) = self.deadlines.peek() {
            if due <= now {
                self.deadline_forced += 1;
                let bank = BankAddr::from_index(idx as u8);
                // A backstop refresh is pure duty: no NVMC demand behind
                // it, so keep the window minimal unless it happens to be
                // the wanted bank anyway.
                let stretch = if wanted == Some(bank) {
                    self.stretch_hint()
                } else {
                    0
                };
                return (bank, stretch);
            }
        }
        if let Some(bank) = wanted {
            self.demand_placed += 1;
            return (bank, self.stretch_hint());
        }
        let idx = self.deadlines.peek().map_or(0, |(_, b)| b);
        (BankAddr::from_index(idx as u8), 0)
    }

    /// Records a REFpb actually issued to `bank` at `at`, pushing its
    /// deadline out one interval.
    pub fn note_refreshed(&mut self, bank: BankAddr, at: SimTime) {
        self.deadlines
            .set(usize::from(bank.index()), at + self.interval);
    }

    /// `(demand_placed, deadline_forced)` placement counters.
    pub fn placement_counts(&self) -> (u64, u64) {
        (self.demand_placed, self.deadline_forced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(thread: u32, local_offset: u64) -> ShardRequest {
        ShardRequest {
            seq: 0,
            tenant: TenantId::HOST,
            thread,
            kind: ReqKind::Read,
            local_offset,
            len: 64,
            not_before: SimTime::ZERO,
            data: Vec::new(),
        }
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut s = RequestScheduler::new(1, 8, ArbitrationPolicy::Fcfs);
        for t in 0..4 {
            s.enqueue(0, req(t, u64::from(t) * PAGE_BYTES)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop(0)).map(|r| r.thread).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn frfcfs_promotes_same_page_requests() {
        let mut s = RequestScheduler::new(
            1,
            8,
            ArbitrationPolicy::FrFcfs {
                starvation_limit: 4,
            },
        );
        s.enqueue(0, req(0, 0)).unwrap(); // page 0
        s.enqueue(0, req(1, PAGE_BYTES)).unwrap(); // page 1
        s.enqueue(0, req(2, 100)).unwrap(); // page 0 again
        assert_eq!(s.pop(0).unwrap().thread, 0);
        // Page locality jumps thread 2 ahead of thread 1.
        assert_eq!(s.pop(0).unwrap().thread, 2);
        assert_eq!(s.pop(0).unwrap().thread, 1);
        assert_eq!(s.stats(0).locality_promotions, 1);
    }

    #[test]
    fn starvation_limit_forces_head_through() {
        let mut s = RequestScheduler::new(
            1,
            16,
            ArbitrationPolicy::FrFcfs {
                starvation_limit: 2,
            },
        );
        s.enqueue(0, req(0, 0)).unwrap();
        assert_eq!(s.pop(0).unwrap().thread, 0); // last_page = 0
        s.enqueue(0, req(1, PAGE_BYTES)).unwrap(); // head, page 1
        for t in 2..6 {
            s.enqueue(0, req(t, 64 * u64::from(t))).unwrap(); // page 0
        }
        // Two promotions pass the head over; the third pop must take it.
        assert_eq!(s.pop(0).unwrap().thread, 2);
        assert_eq!(s.pop(0).unwrap().thread, 3);
        assert_eq!(s.pop(0).unwrap().thread, 1, "fairness break");
        assert_eq!(s.stats(0).starvation_breaks, 1);
    }

    #[test]
    fn bounded_queue_bounces_back() {
        let mut s = RequestScheduler::new(2, 2, ArbitrationPolicy::Fcfs);
        s.enqueue(0, req(0, 0)).unwrap();
        s.enqueue(0, req(1, 0)).unwrap();
        let bounced = s.enqueue(0, req(2, 0)).unwrap_err();
        assert_eq!(bounced.thread, 2);
        assert_eq!(s.stats(0).rejected_full, 1);
        // The other shard's queue is unaffected.
        s.enqueue(1, req(3, 0)).unwrap();
        assert_eq!(s.pending(0), 2);
        assert_eq!(s.pending(1), 1);
    }

    #[test]
    fn closed_admission_gate_bounces_without_losing_queued_work() {
        let mut s = RequestScheduler::new(2, 4, ArbitrationPolicy::Fcfs);
        s.enqueue(0, req(0, 0)).unwrap();
        s.set_admitted(0, false);
        assert!(!s.is_admitted(0));
        assert!(s.enqueue(0, req(1, 0)).is_err());
        assert_eq!(s.stats(0).rejected_unhealthy, 1);
        // Work queued before the gate closed survives and still pops.
        assert_eq!(s.pending(0), 1);
        assert_eq!(s.pop(0).unwrap().thread, 0);
        // The other shard is unaffected; reopening restores admission.
        s.enqueue(1, req(2, 0)).unwrap();
        s.set_admitted(0, true);
        s.enqueue(0, req(3, 0)).unwrap();
    }

    #[test]
    fn planner_prefers_demand_until_a_deadline_expires() {
        let trefi = SimDuration::from_us(7.8);
        let mut p = RefreshPlanner::new(trefi);
        let hot = BankAddr::new(1, 2);
        // Nothing overdue yet: the FPGA's wanted bank wins, full stretch.
        let now = SimTime::ZERO + trefi / 2;
        let (bank, stretch) = p.choose(now, Some(hot));
        assert_eq!(bank, hot);
        assert_eq!(stretch, TimingParams::MAX_STRETCH);
        p.note_refreshed(hot, now);
        // Past the first deadline every *other* bank is overdue: the
        // backstop preempts demand, minimal window.
        let later = SimTime::ZERO + trefi * 2;
        let (bank, stretch) = p.choose(later, Some(hot));
        assert_ne!(bank, hot, "overdue bank preempts the demand bank");
        assert_eq!(stretch, 0, "backstop refresh keeps the window minimal");
        let (demand, forced) = p.placement_counts();
        assert_eq!((demand, forced), (1, 1));
    }

    #[test]
    fn planner_meets_every_bank_deadline_under_sticky_demand() {
        let trefi = SimDuration::from_us(7.8);
        let tick = trefi / u64::from(BankAddr::COUNT);
        let mut p = RefreshPlanner::new(trefi);
        let hot = BankAddr::new(0, 0);
        let mut last = vec![SimTime::ZERO; usize::from(BankAddr::COUNT)];
        let mut now = SimTime::ZERO;
        for _ in 0..512 {
            now += tick;
            // The FPGA always wants the same bank; deadlines must still
            // rotate every other bank through.
            let (bank, _) = p.choose(now, Some(hot));
            p.note_refreshed(bank, now);
            let idx = usize::from(bank.index());
            let gap = now.since(last[idx]);
            // Steady state spaces every bank exactly one tREFI apart; the
            // startup convoy (all banks due at once, drained one per slot)
            // bounds the worst case just under two.
            assert!(gap < trefi * 2, "bank {bank} waited {} us", gap.as_us_f64());
            last[idx] = now;
        }
        // Every bank got refreshed at least once near the cadence.
        for (idx, &t) in last.iter().enumerate() {
            assert!(t > SimTime::ZERO, "bank index {idx} never refreshed");
        }
    }

    #[test]
    fn planner_stretch_shrinks_with_queue_depth() {
        let mut p = RefreshPlanner::new(SimDuration::from_us(7.8));
        p.note_queue_depth(0);
        assert_eq!(p.stretch_hint(), TimingParams::MAX_STRETCH);
        p.note_queue_depth(6);
        assert_eq!(p.stretch_hint(), TimingParams::MAX_STRETCH - 6);
        p.note_queue_depth(64);
        assert_eq!(p.stretch_hint(), 0, "deep queue collapses the window");
    }

    #[test]
    fn conservation_accounts_for_every_request() {
        let mut s = RequestScheduler::new(2, 8, ArbitrationPolicy::Fcfs);
        for i in 0..6u32 {
            s.enqueue((i % 2) as usize, req(i, 0)).unwrap();
        }
        for shard in 0..2 {
            while s.pop(shard).is_some() {
                s.complete(shard);
            }
        }
        assert_eq!(s.conservation(), vec![(3, 3), (3, 3)]);
        let t = s.total_stats();
        assert_eq!((t.enqueued, t.completed), (6, 6));
    }
}
