//! The front-end request scheduler: bounded per-shard queues with
//! FR-FCFS-style arbitration hooks.
//!
//! The multi-channel front-end never calls into a shard directly; every
//! operation becomes one [`ShardRequest`] per interleave segment,
//! enqueued here and drained by the serving loop. The queues are bounded
//! (a full queue bounces the request back to the issuer — backpressure,
//! not silent growth), per-shard so channels never contend on a lock,
//! and instrumented: enqueue/complete counters per shard let
//! `nvdimmc-check` assert request conservation, and the FR-FCFS policy
//! counts both its locality promotions and the starvation breaks where
//! fairness overrode locality.

use nvdimmc_sim::SimTime;
use std::collections::VecDeque;

use crate::config::PAGE_BYTES;
use crate::qos::TenantId;

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read `len` bytes.
    Read,
    /// Write the carried data.
    Write,
}

/// One queued request against a single shard's local address space.
#[derive(Debug, Clone)]
pub struct ShardRequest {
    /// Global issue order (ties broken by this — deterministic).
    pub seq: u64,
    /// Issuing tenant ([`TenantId::HOST`] for pre-tenancy call sites).
    pub tenant: TenantId,
    /// Issuing workload thread.
    pub thread: u32,
    /// Direction.
    pub kind: ReqKind,
    /// Byte offset in the shard's local space.
    pub local_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Earliest instant the device phase may start (issuer's ready time
    /// plus its software cost).
    pub not_before: SimTime,
    /// Payload for writes (empty for reads).
    pub data: Vec<u8>,
}

impl ShardRequest {
    fn local_page(&self) -> u64 {
        self.local_offset / PAGE_BYTES
    }
}

/// Arbitration policy for picking the next request off a shard queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Strict arrival order.
    Fcfs,
    /// First-ready FCFS flavour: prefer a request hitting the same local
    /// page as the one just served (row-buffer/cache-slot locality), but
    /// never defer the oldest request more than `starvation_limit` times.
    FrFcfs {
        /// How many times the queue head may be passed over before
        /// fairness forces it out next.
        starvation_limit: u32,
    },
}

/// Scheduler counters (all shards summed on demand; kept per shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Requests accepted into a queue.
    pub enqueued: u64,
    /// Requests completed (popped and served).
    pub completed: u64,
    /// Requests bounced because the queue was full.
    pub rejected_full: u64,
    /// Requests bounced because the shard was not admitted (rebuilding).
    pub rejected_unhealthy: u64,
    /// FR-FCFS picks that jumped the queue for page locality.
    pub locality_promotions: u64,
    /// Times the fairness counter forced the oldest request through.
    pub starvation_breaks: u64,
}

impl SchedStats {
    /// Accumulates another shard's counters.
    pub fn merge(&mut self, other: &SchedStats) {
        self.enqueued += other.enqueued;
        self.completed += other.completed;
        self.rejected_full += other.rejected_full;
        self.rejected_unhealthy += other.rejected_unhealthy;
        self.locality_promotions += other.locality_promotions;
        self.starvation_breaks += other.starvation_breaks;
    }
}

/// Bounded per-shard request queues with pluggable arbitration.
#[derive(Debug)]
pub struct RequestScheduler {
    queues: Vec<VecDeque<ShardRequest>>,
    depth: usize,
    policy: ArbitrationPolicy,
    last_page: Vec<Option<u64>>,
    head_deferrals: Vec<u32>,
    stats: Vec<SchedStats>,
    next_seq: u64,
    /// Admission gate per shard: the front-end closes it while the shard
    /// rebuilds, so no new request reaches a quiesced shard.
    admitted: Vec<bool>,
}

impl RequestScheduler {
    /// Builds queues for `shards` shards, each holding at most `depth`
    /// requests.
    pub fn new(shards: usize, depth: usize, policy: ArbitrationPolicy) -> Self {
        RequestScheduler {
            queues: vec![VecDeque::new(); shards],
            depth: depth.max(1),
            policy,
            last_page: vec![None; shards],
            head_deferrals: vec![0; shards],
            stats: vec![SchedStats::default(); shards],
            next_seq: 0,
            admitted: vec![true; shards],
        }
    }

    /// Number of shards served.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Queue bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The active arbitration policy.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// Stamps and enqueues `req` on `shard`. A full queue bounces the
    /// request back (`Err`) so the issuer can drain and retry —
    /// backpressure instead of unbounded growth.
    ///
    /// # Errors
    ///
    /// Returns the request itself when the shard queue is at depth.
    pub fn enqueue(&mut self, shard: usize, mut req: ShardRequest) -> Result<(), ShardRequest> {
        if !self.admitted[shard] {
            self.stats[shard].rejected_unhealthy += 1;
            return Err(req);
        }
        if self.queues[shard].len() >= self.depth {
            self.stats[shard].rejected_full += 1;
            return Err(req);
        }
        req.seq = self.next_seq;
        self.next_seq += 1;
        self.stats[shard].enqueued += 1;
        self.queues[shard].push_back(req);
        Ok(())
    }

    /// Picks the next request for `shard` under the arbitration policy.
    pub fn pop(&mut self, shard: usize) -> Option<ShardRequest> {
        let q = &mut self.queues[shard];
        if q.is_empty() {
            return None;
        }
        let pick = match self.policy {
            ArbitrationPolicy::Fcfs => 0,
            ArbitrationPolicy::FrFcfs { starvation_limit } => {
                if self.head_deferrals[shard] >= starvation_limit {
                    // Fairness: the head has waited long enough.
                    self.stats[shard].starvation_breaks += 1;
                    0
                } else {
                    match self.last_page[shard]
                        .and_then(|page| q.iter().position(|r| r.local_page() == page))
                    {
                        Some(i) if i > 0 => {
                            self.stats[shard].locality_promotions += 1;
                            i
                        }
                        Some(_) | None => 0,
                    }
                }
            }
        };
        if pick == 0 {
            self.head_deferrals[shard] = 0;
        } else {
            self.head_deferrals[shard] += 1;
        }
        let req = q.remove(pick)?;
        self.last_page[shard] = Some(req.local_page());
        Some(req)
    }

    /// Records a served request (pairs with [`RequestScheduler::pop`]).
    pub fn complete(&mut self, shard: usize) {
        self.stats[shard].completed += 1;
    }

    /// Opens or closes the admission gate for `shard`. Closed while the
    /// shard rebuilds; requests already queued stay queued.
    pub fn set_admitted(&mut self, shard: usize, admitted: bool) {
        self.admitted[shard] = admitted;
    }

    /// Whether `shard` currently admits new requests.
    pub fn is_admitted(&self, shard: usize) -> bool {
        self.admitted[shard]
    }

    /// Outstanding requests on `shard`.
    pub fn pending(&self, shard: usize) -> usize {
        self.queues[shard].len()
    }

    /// Per-shard counters.
    pub fn stats(&self, shard: usize) -> SchedStats {
        self.stats[shard]
    }

    /// All shards' counters summed.
    pub fn total_stats(&self) -> SchedStats {
        let mut t = SchedStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }

    /// Per-shard `(enqueued, completed)` pairs for the conservation check:
    /// with empty queues, every accepted request must have completed.
    pub fn conservation(&self) -> Vec<(u64, u64)> {
        self.stats
            .iter()
            .map(|s| (s.enqueued, s.completed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(thread: u32, local_offset: u64) -> ShardRequest {
        ShardRequest {
            seq: 0,
            tenant: TenantId::HOST,
            thread,
            kind: ReqKind::Read,
            local_offset,
            len: 64,
            not_before: SimTime::ZERO,
            data: Vec::new(),
        }
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut s = RequestScheduler::new(1, 8, ArbitrationPolicy::Fcfs);
        for t in 0..4 {
            s.enqueue(0, req(t, u64::from(t) * PAGE_BYTES)).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.pop(0)).map(|r| r.thread).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn frfcfs_promotes_same_page_requests() {
        let mut s = RequestScheduler::new(
            1,
            8,
            ArbitrationPolicy::FrFcfs {
                starvation_limit: 4,
            },
        );
        s.enqueue(0, req(0, 0)).unwrap(); // page 0
        s.enqueue(0, req(1, PAGE_BYTES)).unwrap(); // page 1
        s.enqueue(0, req(2, 100)).unwrap(); // page 0 again
        assert_eq!(s.pop(0).unwrap().thread, 0);
        // Page locality jumps thread 2 ahead of thread 1.
        assert_eq!(s.pop(0).unwrap().thread, 2);
        assert_eq!(s.pop(0).unwrap().thread, 1);
        assert_eq!(s.stats(0).locality_promotions, 1);
    }

    #[test]
    fn starvation_limit_forces_head_through() {
        let mut s = RequestScheduler::new(
            1,
            16,
            ArbitrationPolicy::FrFcfs {
                starvation_limit: 2,
            },
        );
        s.enqueue(0, req(0, 0)).unwrap();
        assert_eq!(s.pop(0).unwrap().thread, 0); // last_page = 0
        s.enqueue(0, req(1, PAGE_BYTES)).unwrap(); // head, page 1
        for t in 2..6 {
            s.enqueue(0, req(t, 64 * u64::from(t))).unwrap(); // page 0
        }
        // Two promotions pass the head over; the third pop must take it.
        assert_eq!(s.pop(0).unwrap().thread, 2);
        assert_eq!(s.pop(0).unwrap().thread, 3);
        assert_eq!(s.pop(0).unwrap().thread, 1, "fairness break");
        assert_eq!(s.stats(0).starvation_breaks, 1);
    }

    #[test]
    fn bounded_queue_bounces_back() {
        let mut s = RequestScheduler::new(2, 2, ArbitrationPolicy::Fcfs);
        s.enqueue(0, req(0, 0)).unwrap();
        s.enqueue(0, req(1, 0)).unwrap();
        let bounced = s.enqueue(0, req(2, 0)).unwrap_err();
        assert_eq!(bounced.thread, 2);
        assert_eq!(s.stats(0).rejected_full, 1);
        // The other shard's queue is unaffected.
        s.enqueue(1, req(3, 0)).unwrap();
        assert_eq!(s.pending(0), 2);
        assert_eq!(s.pending(1), 1);
    }

    #[test]
    fn closed_admission_gate_bounces_without_losing_queued_work() {
        let mut s = RequestScheduler::new(2, 4, ArbitrationPolicy::Fcfs);
        s.enqueue(0, req(0, 0)).unwrap();
        s.set_admitted(0, false);
        assert!(!s.is_admitted(0));
        assert!(s.enqueue(0, req(1, 0)).is_err());
        assert_eq!(s.stats(0).rejected_unhealthy, 1);
        // Work queued before the gate closed survives and still pops.
        assert_eq!(s.pending(0), 1);
        assert_eq!(s.pop(0).unwrap().thread, 0);
        // The other shard is unaffected; reopening restores admission.
        s.enqueue(1, req(2, 0)).unwrap();
        s.set_admitted(0, true);
        s.enqueue(0, req(3, 0)).unwrap();
    }

    #[test]
    fn conservation_accounts_for_every_request() {
        let mut s = RequestScheduler::new(2, 8, ArbitrationPolicy::Fcfs);
        for i in 0..6u32 {
            s.enqueue((i % 2) as usize, req(i, 0)).unwrap();
        }
        for shard in 0..2 {
            while s.pop(shard).is_some() {
                s.complete(shard);
            }
        }
        assert_eq!(s.conservation(), vec![(3, 3), (3, 3)]);
        let t = s.total_stats();
        assert_eq!((t.enqueued, t.completed), (6, 6));
    }
}
