//! # nvdimmc-core — the NVDIMM-C device, driver and baseline
//!
//! This crate assembles the paper's contribution on top of the substrate
//! crates:
//!
//! - [`refresh`] — the FPGA's CA-bus snooping pipeline: 1:8 deserializers
//!   plus the refresh-state decoder (paper §IV-A, Figure 4);
//! - [`cp`] — the 64-bit communication-protocol mailbox between the nvdc
//!   driver and the FPGA (§IV-C);
//! - [`proto`] — the pure CP transition layer (driver retransmit ladder,
//!   FPGA mailbox classification) shared with the `nvdimmc-model`
//!   exhaustive model checker;
//! - [`cache`] — the fully-associative 4 KB-slot DRAM cache with LRC
//!   (paper), LRU and CLOCK policies (§IV-B, §VII-B5);
//! - [`fpga`] — the window-serialized DMA engine: one protocol action per
//!   extra-tRFC window, real DDR4 commands on the shared bus (§III-B);
//! - [`layout`] — the reserved-region map: CP area, metadata, slots
//!   (Figure 5);
//! - [`shard`] — [`ChannelShard`]: one fully assembled memory channel,
//!   the [`BlockDevice`] the workloads drive, power-failure semantics
//!   (§V-C) and the [`QueuedDevice`] serve interface ([`System`] is the
//!   single-channel alias — the paper's artifact);
//! - [`interleave`] — the address-interleaving map that stripes the
//!   global byte space over channels at a configurable granularity;
//! - [`sched`] — the bounded per-shard request queues with FCFS /
//!   FR-FCFS arbitration and fairness counters;
//! - [`front`] — [`MultiChannelSystem`]: N shards behind the interleaver
//!   and scheduler, with cross-shard persist ordering;
//! - [`ring`] — the bounded per-shard SPSC inbound rings feeding the
//!   executor;
//! - [`mod@coalesce`] — adjacent-request merging in front of the DMA engine;
//! - [`exec`] — [`ShardExecutor`]: the batched, lock-light worker pool
//!   that serves ready shards in discrete-event order (scale-out request
//!   path, §VII-A);
//! - [`baseline`] — the emulated-NVDIMM `/dev/pmem0` comparator (§VI);
//! - [`perf`] — the calibrated software-path constants with their anchors;
//! - [`qos`] — multi-tenant quality of service: per-tenant token-bucket
//!   quotas, weighted fair dequeue, priority-aware cache eviction, and
//!   the idle-window maintenance scheduler.
//!
//! # Example
//!
//! ```
//! use nvdimmc_core::{BlockDevice, NvdimmCConfig, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = System::new(NvdimmCConfig::small_for_tests())?;
//! sys.write_at(0, &[0xA5u8; 4096])?;
//! let mut out = [0u8; 4096];
//! let latency = sys.read_at(0, &mut out)?;
//! assert_eq!(out[0], 0xA5);
//! // A DRAM-cache hit runs at DRAM speed (a few microseconds):
//! assert!(latency.as_us_f64() < 10.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod baseline;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod cp;
pub mod error;
pub mod exec;
pub mod faults;
pub mod fpga;
pub mod front;
pub mod health;
pub mod interleave;
pub mod layout;
pub mod perf;
pub mod proto;
pub mod qos;
pub mod refresh;
pub mod ring;
pub mod sched;
pub mod shard;

pub use baseline::EmulatedPmem;
pub use cache::DramCache;
pub use coalesce::{coalesce, CoalescedReq, ParentSpan};
pub use config::{Backend, EvictionPolicyKind, NvdimmCConfig, PAGE_BYTES};
pub use cp::{CpAck, CpCommand, CpOpcode};
pub use error::CoreError;
pub use exec::{Completion, ExecStats, ExecutorConfig, ShardExecutor, Submitted};
pub use faults::{FaultInjector, FaultKind, FaultPlan, RecoveryParams, RecoveryStats};
pub use fpga::{AckFault, Fpga};
pub use front::{MultiChannelConfig, MultiChannelSystem};
pub use health::{DegradeReason, FailoverPolicy, HealthState, HealthTransition, RebuildReport};
pub use interleave::{InterleaveMap, Segment};
pub use layout::Layout;
pub use perf::PerfParams;
pub use proto::{AckOutcome, DriverTxn, FpgaProto, PollVerdict, RetryOutcome};
pub use qos::{
    MaintStats, MaintenanceConfig, MaintenanceScheduler, Priority, QosEngine, QosSnapshot,
    SloClass, SloTargets, TenantId, TenantSpec, TenantStats, TokenBucket, WfqArbiter,
};
pub use refresh::{DetectorPipeline, RefreshDetector};
pub use ring::SpscRing;
pub use sched::{
    ArbitrationPolicy, RefreshPlanner, ReqKind, RequestScheduler, SchedStats, ShardRequest,
};
pub use shard::{
    BlockDevice, ChannelShard, CrashPoint, CrashPointKind, DumpReport, PowerFailReport,
    QueuedDevice, System, SystemStats,
};
