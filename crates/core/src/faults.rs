//! Deterministic fault injection and recovery accounting.
//!
//! A [`FaultPlan`] schedules faults by class and operation count from a
//! single seed; [`FaultPlan::build_injectors`] splits it into per-shard
//! [`FaultInjector`]s using forked RNG streams, so a plan is bit-stable
//! for a given seed regardless of channel count. The shard applies due
//! faults at the top of each block operation, recovers through the
//! mechanisms under test — the NAND read-retry ladder, CP-mailbox
//! retransmits, window-overrun burst splitting, DRAM-cache scrubbing,
//! the power-fail dump — and every injection and recovery lands in
//! [`RecoveryStats`], which `nvdimmc-check`'s recovery pass audits: no
//! fault may go unaccounted, and none may be silently absorbed.

use nvdimmc_sim::DeterministicRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Number of distinct fault classes.
pub const FAULT_KINDS: usize = 8;

/// An injectable fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A transient uncorrectable NAND read (two bit flips in one ECC
    /// word, this read only): the FTL's read-retry ladder recovers it.
    NandTransient,
    /// A persistent uncorrectable NAND page: retries exhaust and a typed
    /// error surfaces to the host.
    NandPersistent,
    /// A CP acknowledgement lost in flight: the driver times out and
    /// retransmits; the FPGA replays the ack.
    AckDrop,
    /// A CP acknowledgement mangled on the bus (reads as empty).
    AckCorrupt,
    /// An NVMC transfer starting so late that it overruns the extended
    /// tRFC window and must abort and resume next window.
    WindowOverrun,
    /// Bit corruption in a clean DRAM cache slot: the driver's CRC scrub
    /// detects it and refills from Z-NAND.
    SlotCorruption,
    /// Power failure mid-operation: the battery-backed dump plus reboot
    /// recover.
    PowerFail,
    /// A CP *command* word whose FPGA-side capture is mangled: the FPGA
    /// drops it as a decode failure and never executes or acks, so the
    /// driver's full attempt timeout elapses before the retransmit
    /// recovers. The model-checker counterexample for the stale-ack
    /// aliasing bug needs exactly this shape of loss (an [`AckDrop`]
    /// still executes the command).
    ///
    /// [`AckDrop`]: FaultKind::AckDrop
    CmdCorrupt,
}

impl FaultKind {
    /// Every fault class, in schedule order.
    pub const ALL: [FaultKind; FAULT_KINDS] = [
        FaultKind::NandTransient,
        FaultKind::NandPersistent,
        FaultKind::AckDrop,
        FaultKind::AckCorrupt,
        FaultKind::WindowOverrun,
        FaultKind::SlotCorruption,
        FaultKind::PowerFail,
        FaultKind::CmdCorrupt,
    ];

    /// Stable index into per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::NandTransient => 0,
            FaultKind::NandPersistent => 1,
            FaultKind::AckDrop => 2,
            FaultKind::AckCorrupt => 3,
            FaultKind::WindowOverrun => 4,
            FaultKind::SlotCorruption => 5,
            FaultKind::PowerFail => 6,
            FaultKind::CmdCorrupt => 7,
        }
    }

    /// Human-readable class name for reports and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NandTransient => "nand-transient",
            FaultKind::NandPersistent => "nand-persistent",
            FaultKind::AckDrop => "ack-drop",
            FaultKind::AckCorrupt => "ack-corrupt",
            FaultKind::WindowOverrun => "window-overrun",
            FaultKind::SlotCorruption => "slot-corruption",
            FaultKind::PowerFail => "power-fail",
            FaultKind::CmdCorrupt => "cmd-corrupt",
        }
    }
}

/// Driver-side recovery parameters (part of
/// [`crate::NvdimmCConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryParams {
    /// Refresh windows the driver waits for a CP ack before declaring
    /// one attempt timed out. The default (512 windows ≈ 4 ms at the
    /// PoC's 7.8 µs tREFI) sits far above the worst legitimate stall
    /// (NVMC write-buffer backpressure behind a garbage-collection
    /// erase, ~1–2 ms) — and a spurious timeout is harmless anyway: the
    /// retransmit carries the same sequence number, so the FPGA replays
    /// the ack instead of re-executing.
    pub cp_timeout_windows: u32,
    /// Retransmits after the first attempt before the shard gives up
    /// and degrades.
    pub cp_max_retransmits: u32,
    /// Multiplier applied to the timeout after each failed attempt
    /// (exponential backoff).
    pub cp_backoff: u32,
    /// NAND read-retry ladder depth: how many times the FTL re-reads an
    /// uncorrectable page before surfacing the error. Overrides the
    /// FTL-level `read_retries` at shard assembly so every recovery
    /// knob lives in one place.
    pub nand_read_retries: u32,
    /// Maximum dirty slots the battery-backed power-fail dump walks
    /// before the hold-up capacitors run out. The default is far above
    /// any configured cache (the paper sizes the battery for a full
    /// dump); campaign configs shrink it to model under-provisioned
    /// hold-up energy.
    pub dump_slot_budget: u64,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        RecoveryParams {
            cp_timeout_windows: 512,
            cp_max_retransmits: 4,
            cp_backoff: 2,
            nand_read_retries: 3,
            dump_slot_budget: 1 << 32,
        }
    }
}

/// A seeded schedule of faults over a campaign, by class and count.
///
/// # Example
///
/// ```
/// use nvdimmc_core::faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new(7)
///     .with(FaultKind::NandTransient, 3)
///     .with(FaultKind::AckDrop, 2)
///     .horizon(200);
/// let injectors = plan.build_injectors(4);
/// assert_eq!(injectors.len(), 4);
/// let pending: usize = injectors.iter().map(|i| i.pending()).sum();
/// assert_eq!(pending, 5);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    horizon_ops: u64,
    counts: [u64; FAULT_KINDS],
}

impl FaultPlan {
    /// An empty plan drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            horizon_ops: 1000,
            counts: [0; FAULT_KINDS],
        }
    }

    /// Schedules `count` faults of `kind`.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, count: u64) -> Self {
        self.counts[kind.index()] += count;
        self
    }

    /// Sets the operation horizon: every fault lands at a uniformly drawn
    /// operation index in `0..ops`.
    #[must_use]
    pub fn horizon(mut self, ops: u64) -> Self {
        self.horizon_ops = ops.max(1);
        self
    }

    /// Faults scheduled for `kind`.
    pub fn scheduled(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total faults scheduled.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Splits the plan into one injector per shard.
    ///
    /// Each fault class draws its operation indices and shard targets
    /// from its own forked stream, so adding faults of one class never
    /// perturbs another class's placement, and the same seed yields the
    /// same schedule every run.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn build_injectors(&self, channels: usize) -> Vec<FaultInjector> {
        assert!(channels > 0, "a fault plan needs at least one shard");
        let mut root = DeterministicRng::new(self.seed);
        let mut per_shard: Vec<Vec<(u64, FaultKind)>> = vec![Vec::new(); channels];
        for kind in FaultKind::ALL {
            // Classes added after the original seven draw their placement
            // stream straight from the seed instead of forking `root`:
            // `fork` advances the parent, so one extra fork here would
            // shift every per-shard parameter stream below and break
            // bit-identical replay of pre-existing campaign seeds.
            let mut stream = match kind {
                FaultKind::CmdCorrupt => DeterministicRng::new(self.seed ^ 0xC0DE_0000_0000_0007),
                _ => root.fork(kind.index() as u64 + 1),
            };
            for _ in 0..self.counts[kind.index()] {
                let op = stream.gen_range(0..self.horizon_ops);
                let shard = stream.gen_range(0..channels as u64) as usize;
                per_shard[shard].push((op, kind));
            }
        }
        per_shard
            .into_iter()
            .enumerate()
            .map(|(i, mut schedule)| {
                schedule.sort_by_key(|&(op, kind)| (op, kind.index()));
                FaultInjector::new(schedule, root.fork(0x5EED + i as u64))
            })
            .collect()
    }
}

/// One shard's slice of a [`FaultPlan`]: a sorted schedule of
/// `(operation index, fault)` pairs plus a private RNG stream for fault
/// parameters (which slot to corrupt, which bits to flip).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    schedule: VecDeque<(u64, FaultKind)>,
    op_index: u64,
    rng: DeterministicRng,
    scheduled: [u64; FAULT_KINDS],
    fired: [u64; FAULT_KINDS],
}

impl FaultInjector {
    fn new(schedule: Vec<(u64, FaultKind)>, rng: DeterministicRng) -> Self {
        let mut scheduled = [0u64; FAULT_KINDS];
        for &(_, kind) in &schedule {
            scheduled[kind.index()] += 1;
        }
        FaultInjector {
            schedule: schedule.into(),
            op_index: 0,
            rng,
            scheduled,
            fired: [0; FAULT_KINDS],
        }
    }

    /// Advances the operation counter and pops every fault due at or
    /// before it. The caller applies each returned fault and reports back
    /// via [`FaultInjector::note_fired`] or [`FaultInjector::defer`].
    pub fn begin_op(&mut self) -> Vec<FaultKind> {
        let mut due = Vec::new();
        while let Some(&(op, kind)) = self.schedule.front() {
            if op > self.op_index {
                break;
            }
            self.schedule.pop_front();
            let _ = op;
            due.push(kind);
        }
        self.op_index += 1;
        due
    }

    /// Records a fault as actually applied.
    pub fn note_fired(&mut self, kind: FaultKind) {
        self.fired[kind.index()] += 1;
    }

    /// Puts a fault that could not be applied right now (e.g. no clean
    /// resident slot to corrupt) back at the front of the schedule for
    /// the next operation.
    pub fn defer(&mut self, kind: FaultKind) {
        self.schedule.push_front((self.op_index, kind));
    }

    /// Faults still waiting to be applied.
    pub fn pending(&self) -> usize {
        self.schedule.len()
    }

    /// The injector's private RNG stream (fault parameters).
    pub fn rng_mut(&mut self) -> &mut DeterministicRng {
        &mut self.rng
    }

    /// Per-class `(scheduled, fired)` counters.
    pub fn counts(&self) -> ([u64; FAULT_KINDS], [u64; FAULT_KINDS]) {
        (self.scheduled, self.fired)
    }

    /// Sum of faults scheduled for this shard.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled.iter().sum()
    }

    /// Sum of faults actually applied so far.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

/// Merged injection/recovery accounting across every layer of a shard —
/// NAND media, FTL, FPGA, and the nvdc driver — and, via
/// [`RecoveryStats::merge`], across shards. `nvdimmc-check`'s recovery
/// pass audits the invariants between these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    // --- NAND layer ---
    /// Uncorrectable faults the media model injected.
    pub nand_faults_injected: u64,
    /// Individual re-reads issued by the FTL retry ladder.
    pub nand_read_retries: u64,
    /// Reads rescued by a retry.
    pub nand_retry_recovered: u64,
    /// Rescued pages scrub-remapped to a fresh physical page.
    pub nand_retry_remaps: u64,
    /// Reads that exhausted the ladder and surfaced as uncorrectable.
    pub nand_uncorrectable_surfaced: u64,
    // --- CP mailbox ---
    /// Acks dropped in flight (injected).
    pub acks_dropped: u64,
    /// Acks mangled on the bus (injected).
    pub acks_corrupted: u64,
    /// Command words that failed to decode at the FPGA.
    pub cmd_decode_failures: u64,
    /// Commands the FPGA nacked on a NAND backend error.
    pub nand_errors_nacked: u64,
    /// Acks the FPGA replayed for a retransmitted command.
    pub replayed_acks: u64,
    /// Driver-side ack-wait timeouts (per attempt).
    pub cp_attempt_timeouts: u64,
    /// Retransmits the driver issued.
    pub cp_retransmits: u64,
    /// Transactions that completed after at least one retransmit.
    pub cp_recovered: u64,
    /// Transactions abandoned after the full retransmit budget.
    pub cp_transactions_failed: u64,
    // --- Refresh windows ---
    /// Injected window-overrun stalls.
    pub overrun_stalls: u64,
    /// NVMC bursts aborted at the window edge and split.
    pub bursts_split: u64,
    /// Split bursts completed in a later window.
    pub bursts_resumed: u64,
    // --- DRAM cache scrub ---
    /// Cache slots corrupted by injection.
    pub slots_corrupted: u64,
    /// Corruptions the CRC scrub detected.
    pub scrub_detected: u64,
    /// Detected corruptions healed by refilling from Z-NAND (or
    /// re-zeroing a never-written page).
    pub scrub_refills: u64,
    /// Corrupt clean victims dropped at eviction (no writeback of bad
    /// data).
    pub scrub_dropped_clean: u64,
    /// Corruptions on dirty slots surfaced as typed errors (no clean
    /// copy exists anywhere).
    pub cache_corruption_surfaced: u64,
    // --- Power ---
    /// Injected power failures that fired.
    pub power_fails_fired: u64,
    /// Power failures recovered through dump + reboot.
    pub power_fails_recovered: u64,
    // --- Degraded mode ---
    /// Times a shard entered degraded mode.
    pub degraded_entries: u64,
    // --- Online repair ---
    /// Rebuild attempts started by [`crate::ChannelShard::repair`].
    pub rebuilds_started: u64,
    /// Rebuilds that audited clean and re-admitted the shard.
    pub rebuilds_completed: u64,
    /// Rebuilds aborted by a fault or refused by the audit.
    pub rebuilds_failed: u64,
    /// Dirty slots written back to Z-NAND during rebuilds.
    pub rebuild_writebacks: u64,
    /// Pages invalidated during rebuilds because their only copy was a
    /// corrupt dirty slot (the loss is surfaced in the rebuild ledger).
    pub rebuild_pages_lost: u64,
    // --- Injector accounting ---
    /// Faults scheduled across all classes.
    pub faults_scheduled: u64,
    /// Faults actually applied.
    pub faults_fired: u64,
}

impl RecoveryStats {
    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.nand_faults_injected += other.nand_faults_injected;
        self.nand_read_retries += other.nand_read_retries;
        self.nand_retry_recovered += other.nand_retry_recovered;
        self.nand_retry_remaps += other.nand_retry_remaps;
        self.nand_uncorrectable_surfaced += other.nand_uncorrectable_surfaced;
        self.acks_dropped += other.acks_dropped;
        self.acks_corrupted += other.acks_corrupted;
        self.cmd_decode_failures += other.cmd_decode_failures;
        self.nand_errors_nacked += other.nand_errors_nacked;
        self.replayed_acks += other.replayed_acks;
        self.cp_attempt_timeouts += other.cp_attempt_timeouts;
        self.cp_retransmits += other.cp_retransmits;
        self.cp_recovered += other.cp_recovered;
        self.cp_transactions_failed += other.cp_transactions_failed;
        self.overrun_stalls += other.overrun_stalls;
        self.bursts_split += other.bursts_split;
        self.bursts_resumed += other.bursts_resumed;
        self.slots_corrupted += other.slots_corrupted;
        self.scrub_detected += other.scrub_detected;
        self.scrub_refills += other.scrub_refills;
        self.scrub_dropped_clean += other.scrub_dropped_clean;
        self.cache_corruption_surfaced += other.cache_corruption_surfaced;
        self.power_fails_fired += other.power_fails_fired;
        self.power_fails_recovered += other.power_fails_recovered;
        self.degraded_entries += other.degraded_entries;
        self.rebuilds_started += other.rebuilds_started;
        self.rebuilds_completed += other.rebuilds_completed;
        self.rebuilds_failed += other.rebuilds_failed;
        self.rebuild_writebacks += other.rebuild_writebacks;
        self.rebuild_pages_lost += other.rebuild_pages_lost;
        self.faults_scheduled += other.faults_scheduled;
        self.faults_fired += other.faults_fired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_for_a_seed() {
        let plan = FaultPlan::new(99)
            .with(FaultKind::NandTransient, 5)
            .with(FaultKind::AckDrop, 3)
            .with(FaultKind::PowerFail, 1)
            .horizon(100);
        let a = plan.build_injectors(4);
        let b = plan.build_injectors(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.schedule, y.schedule);
        }
        let total: usize = a.iter().map(FaultInjector::pending).sum();
        assert_eq!(total as u64, plan.total());
    }

    #[test]
    fn adding_one_class_does_not_move_another() {
        let base = FaultPlan::new(7).with(FaultKind::AckDrop, 4).horizon(50);
        let extended = base.clone().with(FaultKind::SlotCorruption, 3);
        let pick = |injs: &[FaultInjector]| -> Vec<(usize, u64)> {
            let mut v = Vec::new();
            for (i, inj) in injs.iter().enumerate() {
                for &(op, kind) in &inj.schedule {
                    if kind == FaultKind::AckDrop {
                        v.push((i, op));
                    }
                }
            }
            v
        };
        assert_eq!(
            pick(&base.build_injectors(2)),
            pick(&extended.build_injectors(2)),
            "ack-drop placement moved when slot-corruption was added"
        );
    }

    #[test]
    fn injector_fires_in_op_order_and_defers() {
        let plan = FaultPlan::new(1)
            .with(FaultKind::SlotCorruption, 2)
            .horizon(4);
        let mut inj = plan.build_injectors(1).remove(0);
        let mut seen = 0;
        for _ in 0..4 {
            for kind in inj.begin_op() {
                // Pretend the first application is impossible.
                if seen == 0 {
                    inj.defer(kind);
                } else {
                    inj.note_fired(kind);
                }
                seen += 1;
            }
        }
        // Deferred fault comes back; drain it.
        while inj.pending() > 0 {
            for kind in inj.begin_op() {
                inj.note_fired(kind);
                seen += 1;
            }
        }
        assert!(seen >= 2);
        assert_eq!(inj.total_fired(), 2);
        assert_eq!(inj.total_scheduled(), 2);
    }

    #[test]
    fn recovery_stats_merge_sums() {
        let a = RecoveryStats {
            nand_faults_injected: 2,
            cp_retransmits: 1,
            ..RecoveryStats::default()
        };
        let mut b = RecoveryStats {
            nand_faults_injected: 3,
            power_fails_fired: 1,
            ..RecoveryStats::default()
        };
        b.merge(&a);
        assert_eq!(b.nand_faults_injected, 5);
        assert_eq!(b.cp_retransmits, 1);
        assert_eq!(b.power_fails_fired, 1);
    }

    #[test]
    fn default_recovery_params_are_sane() {
        let p = RecoveryParams::default();
        assert!(p.cp_timeout_windows >= 256, "timeout must clear GC stalls");
        assert!(p.cp_max_retransmits >= 1);
        assert!(p.cp_backoff >= 1);
        assert!(
            p.nand_read_retries >= 1,
            "Z-NAND transient noise makes at least one retry worthwhile"
        );
        assert!(
            p.dump_slot_budget >= (15u64 << 30) / 4096,
            "default dump budget must cover the paper's full 15 GB cache"
        );
    }
}
