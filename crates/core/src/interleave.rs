//! Address interleaving: striping the global byte space over channels.
//!
//! Real multi-channel memory controllers stripe consecutive address
//! blocks round-robin across channels so sequential streams spread their
//! bandwidth demand. [`InterleaveMap`] implements that map for the
//! multi-channel front-end: global offsets are split into
//! granularity-sized stripes, stripe `k` lands on shard `k % channels`
//! at local stripe index `k / channels`.
//!
//! The granularity is configurable but must be a whole multiple of the
//! 4 KB cache page so a page never straddles two shards — each shard's
//! DRAM cache, page table and FTL stay completely independent, which is
//! what lets shards run on separate threads with no shared state.

use crate::config::PAGE_BYTES;
use crate::error::CoreError;

/// One contiguous piece of a request after interleaving: `len` bytes at
/// `local_offset` on `shard`, covering `buf[pos..pos + len]` of the
/// caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Target shard index.
    pub shard: u32,
    /// Byte offset inside the shard's local address space.
    pub local_offset: u64,
    /// Byte position inside the request buffer.
    pub pos: usize,
    /// Segment length in bytes.
    pub len: u64,
}

/// The channel-interleaving address map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleaveMap {
    channels: u32,
    granularity: u64,
}

impl InterleaveMap {
    /// Builds a map striping `granularity`-byte blocks over `channels`.
    ///
    /// # Errors
    ///
    /// Rejects zero channels and granularities that are zero or not a
    /// multiple of [`PAGE_BYTES`] (a cache page must never straddle
    /// shards).
    pub fn new(channels: u32, granularity: u64) -> Result<Self, CoreError> {
        if channels == 0 {
            return Err(CoreError::Config(
                "interleave: channels must be >= 1".into(),
            ));
        }
        if granularity == 0 || !granularity.is_multiple_of(PAGE_BYTES) {
            return Err(CoreError::Config(format!(
                "interleave: granularity {granularity} must be a non-zero multiple of {PAGE_BYTES}"
            )));
        }
        Ok(InterleaveMap {
            channels,
            granularity,
        })
    }

    /// Page-granular interleaving (4 KB stripes): adjacent pages on
    /// adjacent channels — maximum spread for random 4 KB traffic.
    ///
    /// # Errors
    ///
    /// Rejects zero channels.
    pub fn page_interleaved(channels: u32) -> Result<Self, CoreError> {
        Self::new(channels, PAGE_BYTES)
    }

    /// Rank-granular interleaving (128 KB stripes, one 16-bank row set):
    /// keeps spatial locality on a channel, spreads large streams.
    ///
    /// # Errors
    ///
    /// Rejects zero channels.
    pub fn rank_interleaved(channels: u32) -> Result<Self, CoreError> {
        Self::new(channels, 128 * 1024)
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Stripe granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Maps a global address to `(shard, local address)`.
    pub fn locate(&self, addr: u64) -> (u32, u64) {
        let g = self.granularity;
        let stripe = addr / g;
        let shard = (stripe % u64::from(self.channels)) as u32;
        let local = (stripe / u64::from(self.channels)) * g + addr % g;
        (shard, local)
    }

    /// Inverse of [`InterleaveMap::locate`].
    pub fn to_global(&self, shard: u32, local: u64) -> u64 {
        let g = self.granularity;
        (local / g * u64::from(self.channels) + u64::from(shard)) * g + local % g
    }

    /// Splits `[offset, offset + len)` into per-shard segments, coalescing
    /// runs that stay contiguous on the same shard (with one channel the
    /// whole range is always exactly one segment).
    pub fn split_range(&self, offset: u64, len: u64) -> Vec<Segment> {
        let mut out: Vec<Segment> = Vec::new();
        let g = self.granularity;
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let chunk = (g - cur % g).min(end - cur);
            let (shard, local) = self.locate(cur);
            match out.last_mut() {
                Some(seg) if seg.shard == shard && seg.local_offset + seg.len == local => {
                    seg.len += chunk;
                }
                _ => out.push(Segment {
                    shard,
                    local_offset: local,
                    pos: (cur - offset) as usize,
                    len: chunk,
                }),
            }
            cur += chunk;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_channel_is_identity() {
        let m = InterleaveMap::page_interleaved(1).unwrap();
        for addr in [0u64, 1, 4095, 4096, 1 << 30] {
            assert_eq!(m.locate(addr), (0, addr));
            assert_eq!(m.to_global(0, addr), addr);
        }
        let segs = m.split_range(100, 1 << 20);
        assert_eq!(
            segs,
            vec![Segment {
                shard: 0,
                local_offset: 100,
                pos: 0,
                len: 1 << 20
            }]
        );
    }

    #[test]
    fn round_trip_and_stripe_order() {
        let m = InterleaveMap::new(4, PAGE_BYTES).unwrap();
        // Stripes go round-robin; locals advance once per full sweep.
        assert_eq!(m.locate(0), (0, 0));
        assert_eq!(m.locate(PAGE_BYTES), (1, 0));
        assert_eq!(m.locate(4 * PAGE_BYTES), (0, PAGE_BYTES));
        for addr in [0u64, 77, 4096, 8192 + 13, 40960, 1 << 22] {
            let (s, l) = m.locate(addr);
            assert_eq!(m.to_global(s, l), addr, "round trip for {addr}");
        }
    }

    #[test]
    fn split_coalesces_within_a_stripe() {
        let m = InterleaveMap::new(2, 2 * PAGE_BYTES).unwrap();
        // A range inside one stripe stays one segment even though the
        // walk advances page by page.
        let segs = m.split_range(0, 2 * PAGE_BYTES);
        assert_eq!(segs.len(), 1);
        // A range spanning three stripes alternates shards.
        let segs = m.split_range(0, 6 * PAGE_BYTES);
        let shards: Vec<u32> = segs.iter().map(|s| s.shard).collect();
        assert_eq!(shards, vec![0, 1, 0]);
        let total: u64 = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 6 * PAGE_BYTES);
    }

    #[test]
    fn segments_cover_range_exactly() {
        let m = InterleaveMap::new(3, PAGE_BYTES).unwrap();
        let (offset, len) = (5000u64, 3 * PAGE_BYTES + 777);
        let segs = m.split_range(offset, len);
        let mut covered = 0u64;
        for s in &segs {
            assert_eq!(s.pos as u64, covered, "buffer positions contiguous");
            let (shard, local) = m.locate(offset + covered);
            assert_eq!((s.shard, s.local_offset), (shard, local));
            covered += s.len;
        }
        assert_eq!(covered, len);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(InterleaveMap::new(0, PAGE_BYTES).is_err());
        assert!(InterleaveMap::new(2, 0).is_err());
        assert!(InterleaveMap::new(2, 1000).is_err());
    }
}
