//! The FPGA's refresh-detection pipeline (paper §IV-A, Figure 4).
//!
//! Six CA pins (CKE, CS_n, ACT_n, RAS_n, CAS_n, WE_n) are routed into the
//! FPGA. Each feeds a **1:8 deserializer** that parallelises the
//! double-data-rate pin stream into 8-bit words every four clock cycles.
//! The **refresh detector** then checks whether any captured bit position
//! shows the REFRESH state — CKE, ACT_n, WE_n high with CS_n, RAS_n,
//! CAS_n low — and asserts `is_refresh`. Self-refresh entry/exit must not
//! trigger it (SRE carries CKE low).
//!
//! The per-bank extension detects REFpb too: the same six pins in the
//! (formerly reserved) state with CAS_n *high* instead of low. The bank
//! and stretch level ride on BG/BA and the address pins, which the
//! detector state machine does not monitor — the [`DetectorPipeline`]
//! recovers them from the full captured CA word, as the production FPGA
//! would from additionally-tapped pins.

use nvdimmc_ddr::{BankAddr, CaPins, Command};
use nvdimmc_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Number of monitored CA pins.
pub const MONITORED_PINS: usize = 6;
/// Deserialization ratio (bits per parallel word).
pub const DESER_RATIO: usize = 8;

/// A 1:8 serial-to-parallel converter for one pin.
#[derive(Debug, Clone, Default)]
struct PinDeserializer {
    shift: u8,
    count: u8,
}

impl PinDeserializer {
    /// Pushes one serial sample; returns the parallel word every eighth
    /// sample.
    fn push(&mut self, level: bool) -> Option<u8> {
        self.shift = (self.shift << 1) | u8::from(level);
        self.count += 1;
        if self.count == DESER_RATIO as u8 {
            self.count = 0;
            let w = self.shift;
            self.shift = 0;
            Some(w)
        } else {
            None
        }
    }
}

/// The six-pin deserializer bank.
#[derive(Debug, Clone, Default)]
pub struct Deserializer {
    pins: [PinDeserializer; MONITORED_PINS],
}

impl Deserializer {
    /// Creates an empty deserializer bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes one sample of all six pins (paper order: CKE, CS_n, ACT_n,
    /// RAS_n, CAS_n, WE_n); returns the six parallel 8-bit words when a
    /// capture completes.
    pub fn push(&mut self, sample: [bool; MONITORED_PINS]) -> Option<[u8; MONITORED_PINS]> {
        let mut out = [0u8; MONITORED_PINS];
        let mut ready = false;
        for (i, (pin, &level)) in self.pins.iter_mut().zip(sample.iter()).enumerate() {
            if let Some(w) = pin.push(level) {
                out[i] = w;
                ready = true;
            }
        }
        ready.then_some(out)
    }
}

/// Detector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Parallel words examined.
    pub words: u64,
    /// Refresh detections asserted (rank REF and per-bank REFpb).
    pub detections: u64,
    /// Of [`Self::detections`], how many were per-bank REFpb states.
    pub pb_detections: u64,
    /// Samples matching refresh-family encodings rejected for CKE
    /// transitions (SRE).
    pub sre_rejected: u64,
}

/// The combinational refresh detector over deserialized pin words.
///
/// # Example
///
/// ```
/// use nvdimmc_core::refresh::RefreshDetector;
/// use nvdimmc_ddr::{CaPins, Command};
///
/// let mut det = RefreshDetector::new();
/// let hits = det.feed_command(&CaPins::encode(&Command::Refresh));
/// assert_eq!(hits, 1);
/// let miss = det.feed_command(&CaPins::encode(&Command::PrechargeAll));
/// assert_eq!(miss, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RefreshDetector {
    deser: Deserializer,
    prev_cke_bit: bool,
    stats: DetectorStats,
}

impl RefreshDetector {
    /// Creates a detector with idle-bus history.
    pub fn new() -> Self {
        RefreshDetector {
            deser: Deserializer::new(),
            prev_cke_bit: true,
            stats: DetectorStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Feeds one raw pin sample; returns `true` when a completed capture
    /// contains the REFRESH state.
    pub fn push_sample(&mut self, sample: [bool; MONITORED_PINS]) -> bool {
        match self.deser.push(sample) {
            Some(words) => self.examine(words),
            None => false,
        }
    }

    /// Examines one parallel capture (six 8-bit words).
    fn examine(&mut self, words: [u8; MONITORED_PINS]) -> bool {
        self.stats.words += 1;
        let [cke, cs_n, act_n, ras_n, cas_n, we_n] = words;
        let mut hit = false;
        let mut pb_hit = false;
        for bit in (0..DESER_RATIO).rev() {
            let m = 1u8 << bit;
            let lv = |w: u8| w & m != 0;
            let is_ref_state =
                lv(cke) && lv(act_n) && lv(we_n) && !lv(cs_n) && !lv(ras_n) && !lv(cas_n);
            // Per-bank REFpb: the same state with CAS_n high (the formerly
            // reserved RAS_n-low CAS_n-high WE_n-high decode slot).
            let is_refpb_state =
                lv(cke) && lv(act_n) && lv(we_n) && !lv(cs_n) && !lv(ras_n) && lv(cas_n);
            // SRE shows the REF pin pattern *with CKE dropping*: the
            // refresh state requires CKE high at the command edge and at
            // the previous sample.
            let sre_like =
                !lv(cke) && lv(act_n) && lv(we_n) && !lv(cs_n) && !lv(ras_n) && !lv(cas_n);
            if sre_like {
                self.stats.sre_rejected += 1;
            }
            if is_ref_state && self.prev_cke_bit {
                hit = true;
            }
            if is_refpb_state && self.prev_cke_bit {
                pb_hit = true;
            }
            self.prev_cke_bit = lv(cke);
        }
        if hit || pb_hit {
            self.stats.detections += 1;
        }
        if pb_hit {
            self.stats.pb_detections += 1;
        }
        hit || pb_hit
    }

    /// Convenience: feeds the eight serial samples a held command edge
    /// produces (the pin state is stable across the capture window) and
    /// returns how many detections fired.
    pub fn feed_command(&mut self, pins: &CaPins) -> u64 {
        let before = self.stats.detections;
        let sample = pins.monitored_pins();
        for _ in 0..DESER_RATIO {
            self.push_sample(sample);
        }
        self.stats.detections - before
    }
}

/// A detected refresh with its command time — what the FPGA's window
/// scheduler consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshEvent {
    /// When the REFRESH / REFpb command was captured.
    pub at: SimTime,
    /// `Some(bank)` for a per-bank REFpb (the window covers only that
    /// bank), `None` for a rank-level REF.
    pub bank: Option<BankAddr>,
    /// Window stretch level recovered from the address pins (REFpb only;
    /// zero for rank REF).
    pub stretch: u8,
}

impl RefreshEvent {
    /// A rank-level refresh event at `at`.
    pub fn rank(at: SimTime) -> Self {
        RefreshEvent {
            at,
            bank: None,
            stretch: 0,
        }
    }
}

/// Runs CA-bus captures through the detector and emits timed refresh
/// events.
#[derive(Debug, Default)]
pub struct DetectorPipeline {
    detector: RefreshDetector,
}

impl DetectorPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The inner detector (stats).
    pub fn detector(&self) -> &RefreshDetector {
        &self.detector
    }

    /// Processes a drained CA log, returning one event per detected
    /// REFRESH or REFpb. For REFpb the bank and stretch are recovered
    /// from the captured BG/BA/address pins.
    pub fn process(&mut self, log: &[(SimTime, CaPins)]) -> Vec<RefreshEvent> {
        let mut out = Vec::new();
        for (at, pins) in log {
            if self.detector.feed_command(pins) > 0 {
                let (bank, stretch) = match CaPins::decode(pins) {
                    Some(Command::RefreshBank { bank, stretch }) => (Some(bank), stretch),
                    _ => (None, 0),
                };
                out.push(RefreshEvent {
                    at: *at,
                    bank,
                    stretch,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvdimmc_ddr::{BankAddr, Command};

    #[test]
    fn deserializer_is_one_to_eight() {
        let mut d = Deserializer::new();
        for i in 0..7 {
            assert!(d.push([true; 6]).is_none(), "sample {i} completed early");
        }
        let words = d.push([true; 6]).unwrap();
        assert_eq!(words, [0xFF; 6]);
    }

    #[test]
    fn deserializer_preserves_bit_order() {
        let mut d = Deserializer::new();
        // Pin 0 pattern: 1,0,0,0,0,0,0,1 -> MSB-first 0b1000_0001.
        let pattern = [true, false, false, false, false, false, false, true];
        let mut out = None;
        for &b in &pattern {
            out = d.push([b, false, false, false, false, false]);
        }
        assert_eq!(out.unwrap()[0], 0b1000_0001);
    }

    #[test]
    fn detects_refresh_and_only_refresh() {
        let b = BankAddr::new(0, 0);
        let commands = [
            (Command::Refresh, true),
            (Command::PrechargeAll, false),
            (
                Command::Activate {
                    bank: b,
                    row: 0x1_4000, // row bits that set A16/A14 high
                },
                false,
            ),
            (
                Command::Read {
                    bank: b,
                    col: 0,
                    auto_precharge: false,
                },
                false,
            ),
            (
                Command::Write {
                    bank: b,
                    col: 0,
                    auto_precharge: true,
                },
                false,
            ),
            (Command::Deselect, false),
            (Command::ZqCalibration, false),
            (
                Command::ModeRegisterSet {
                    register: 0,
                    value: 0,
                },
                false,
            ),
        ];
        for (cmd, expect) in commands {
            let mut det = RefreshDetector::new();
            let hits = det.feed_command(&CaPins::encode(&cmd));
            assert_eq!(hits > 0, expect, "{cmd:?}");
        }
    }

    #[test]
    fn self_refresh_entry_not_detected() {
        let mut det = RefreshDetector::new();
        assert_eq!(
            det.feed_command(&CaPins::encode(&Command::SelfRefreshEnter)),
            0
        );
        assert!(
            det.stats().sre_rejected > 0,
            "SRE pattern seen and rejected"
        );
    }

    #[test]
    fn self_refresh_exit_not_detected() {
        let mut det = RefreshDetector::new();
        assert_eq!(
            det.feed_command(&CaPins::encode(&Command::SelfRefreshExit)),
            0
        );
    }

    #[test]
    fn refresh_right_after_sre_requires_cke_high_history() {
        let mut det = RefreshDetector::new();
        det.feed_command(&CaPins::encode(&Command::SelfRefreshEnter));
        // First sample after SRE has prev CKE low; a real REF (held 8
        // samples with CKE high) is still detected from the second sample.
        let hits = det.feed_command(&CaPins::encode(&Command::Refresh));
        assert_eq!(hits, 1);
    }

    #[test]
    fn pipeline_emits_timed_events() {
        let mut p = DetectorPipeline::new();
        let log = vec![
            (
                SimTime::from_ns(100),
                CaPins::encode(&Command::PrechargeAll),
            ),
            (SimTime::from_ns(120), CaPins::encode(&Command::Refresh)),
            (SimTime::from_ns(900), CaPins::encode(&Command::Deselect)),
            (SimTime::from_us(8), CaPins::encode(&Command::Refresh)),
        ];
        let events = p.process(&log);
        assert_eq!(
            events,
            vec![
                RefreshEvent::rank(SimTime::from_ns(120)),
                RefreshEvent::rank(SimTime::from_us(8)),
            ]
        );
        assert_eq!(p.detector().stats().detections, 2);
    }

    #[test]
    fn per_bank_refresh_detected_with_bank_and_stretch() {
        let mut p = DetectorPipeline::new();
        let b = BankAddr::new(2, 3);
        let log = vec![
            (
                SimTime::from_ns(100),
                CaPins::encode(&Command::Precharge { bank: b }),
            ),
            (
                SimTime::from_ns(120),
                CaPins::encode(&Command::RefreshBank {
                    bank: b,
                    stretch: 9,
                }),
            ),
            (SimTime::from_ns(140), CaPins::encode(&Command::Refresh)),
        ];
        let events = p.process(&log);
        assert_eq!(
            events,
            vec![
                RefreshEvent {
                    at: SimTime::from_ns(120),
                    bank: Some(b),
                    stretch: 9,
                },
                RefreshEvent::rank(SimTime::from_ns(140)),
            ]
        );
        let s = p.detector().stats();
        assert_eq!(s.detections, 2);
        assert_eq!(s.pb_detections, 1);
    }

    #[test]
    fn refpb_after_sre_requires_cke_high_history() {
        let mut det = RefreshDetector::new();
        det.feed_command(&CaPins::encode(&Command::SelfRefreshEnter));
        let hits = det.feed_command(&CaPins::encode(&Command::RefreshBank {
            bank: BankAddr::new(0, 1),
            stretch: 0,
        }));
        assert_eq!(hits, 1);
        assert_eq!(det.stats().pb_detections, 1);
    }

    #[test]
    fn long_random_stream_no_false_positives() {
        use nvdimmc_sim::DeterministicRng;
        let mut rng = DeterministicRng::new(99);
        let mut det = RefreshDetector::new();
        let b = BankAddr::new(1, 1);
        for _ in 0..5_000 {
            let cmd = match rng.gen_range(0..5) {
                0 => Command::Activate {
                    bank: b,
                    row: rng.gen_range(0..1 << 17) as u32,
                },
                1 => Command::Read {
                    bank: b,
                    col: rng.gen_range(0..1024) as u16,
                    auto_precharge: rng.gen_bool(0.5),
                },
                2 => Command::Write {
                    bank: b,
                    col: rng.gen_range(0..1024) as u16,
                    auto_precharge: rng.gen_bool(0.5),
                },
                3 => Command::Precharge { bank: b },
                _ => Command::Deselect,
            };
            assert_eq!(det.feed_command(&CaPins::encode(&cmd)), 0, "{cmd:?}");
        }
    }
}
