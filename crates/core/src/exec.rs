//! The scale-out request executor: per-shard rings, coalescing, and a
//! fixed work-stealing worker pool.
//!
//! The pre-refactor drivers spawned one scoped OS thread per shard per
//! round — fine at 4 channels, dead at 256. The executor replaces that
//! with a batched, lock-light design:
//!
//! 1. **Route** — [`ShardExecutor::submit`] splits each global operation
//!    with the [`InterleaveMap`] and pushes one [`ShardRequest`] per
//!    segment onto the owning shard's bounded [`SpscRing`]. The router is
//!    each ring's only producer; a full ring bounces the *whole*
//!    operation back with [`CoreError::Overloaded`] (carrying the queue
//!    depth, so callers back off proportionally).
//! 2. **Batch + coalesce** — [`ShardExecutor::dispatch`] drains every
//!    ring FIFO into a per-shard batch and folds adjacent same-kind
//!    requests into single DMAs ([`coalesce`]).
//! 3. **Serve** — a fixed pool of `M = workers` threads claims ready
//!    shards from a shared [`ShardCalendar`]-ordered list (one atomic
//!    `fetch_add` per claim — work-stealing without per-request locks;
//!    the per-shard mutex is only ever taken by the one claiming worker,
//!    so it never contends). Each claimed shard serves its whole batch on
//!    its own clock via [`QueuedDevice::serve_read`] /
//!    [`QueuedDevice::serve_write`]; the device's idle-jump *is* the
//!    discrete-event fast path — the clock advances straight to the
//!    request's `not_before` instead of ticking through idle time.
//! 4. **Fold** — completions are collected in shard-index order, FIFO
//!    within a shard. Shards share no state, so the result is a pure
//!    function of the submitted requests: **bit-identical for any worker
//!    count**, which is what makes the executor safe to drop under the
//!    deterministic drivers and the `nvdimmc-check` passes.
//!
//! Trace capture needs no executor bookkeeping: entries accumulate in
//! each device's own recorder while its batch is served, so front-driven
//! runs keep collecting epochs through
//! `MultiChannelSystem::set_trace_capture(false)` unchanged. Raw-device
//! runs claim them zero-copy through [`ShardExecutor::take_traces`],
//! which moves each buffer out via [`QueuedDevice::drain_trace`] — no
//! clone, no post-hoc lock.

use crate::coalesce::{coalesce, CoalescedReq};
use crate::error::CoreError;
use crate::interleave::InterleaveMap;
use crate::qos::{TenantId, WfqArbiter};
use crate::ring::SpscRing;
use crate::sched::{ReqKind, ShardRequest};
use crate::shard::QueuedDevice;
use nvdimmc_ddr::TraceEntry;
use nvdimmc_sim::{ShardCalendar, SimDuration, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Tuning knobs for a [`ShardExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Worker threads serving ready shards (`M` in "M workers × N
    /// shards"). Clamped to at least 1; 1 serves inline without spawning.
    pub workers: usize,
    /// Bound on each shard's inbound ring.
    pub ring_depth: usize,
    /// Byte cap on one coalesced DMA. `1` effectively disables merging
    /// (no two requests fit), which the equivalence tests use.
    pub coalesce_bytes: u64,
    /// Base retry hint carried by the `Overloaded` bounce.
    pub retry_after: SimDuration,
}

impl Default for ExecutorConfig {
    /// 4 workers, 64-deep rings, 64 KiB DMA cap — matches the scheduler's
    /// default queue depth and a typical controller's max transfer.
    fn default() -> Self {
        ExecutorConfig {
            workers: 4,
            ring_depth: 64,
            coalesce_bytes: 64 * 1024,
            retry_after: SimDuration::from_us(100.0),
        }
    }
}

impl ExecutorConfig {
    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the ring bound.
    #[must_use]
    pub fn with_ring_depth(mut self, depth: usize) -> Self {
        self.ring_depth = depth;
        self
    }

    /// Overrides the coalescing byte cap (`1` disables merging).
    #[must_use]
    pub fn with_coalesce_bytes(mut self, bytes: u64) -> Self {
        self.coalesce_bytes = bytes;
        self
    }
}

/// One segment accepted by [`ShardExecutor::submit`]: the handle the
/// driver uses to match completions back to its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submitted {
    /// Executor-global sequence number (also on the [`Completion`]).
    pub seq: u64,
    /// Owning shard.
    pub shard: u32,
    /// Byte position of this segment inside the submitted operation.
    pub pos: usize,
    /// Segment length in bytes.
    pub len: u64,
}

/// One served request, reported back to the driver.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Sequence number from [`Submitted`].
    pub seq: u64,
    /// Issuing tenant.
    pub tenant: TenantId,
    /// Issuing workload thread.
    pub thread: u32,
    /// Serving shard.
    pub shard: u32,
    /// Direction.
    pub kind: ReqKind,
    /// Offset in the shard's local space.
    pub local_offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Device completion instant (the shard clock after service). On
    /// error this is the clock when the failure surfaced.
    pub end: SimTime,
    /// Read payload (empty for writes and for failed reads).
    pub data: Vec<u8>,
    /// Whether the request rode a multi-parent coalesced DMA.
    pub coalesced: bool,
    /// The failure, if the serving device refused the request.
    pub error: Option<CoreError>,
}

/// Per-shard executor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Requests accepted onto the ring at submit.
    pub accepted: u64,
    /// Requests served (completions produced, including failures).
    pub served: u64,
    /// Device operations issued after coalescing.
    pub dmas: u64,
    /// Requests that shared a DMA with at least one other request.
    pub coalesced_reqs: u64,
    /// Operations bounced at submit because a ring was full.
    pub rejected_ring_full: u64,
    /// Accumulated device-phase busy time (service end minus service
    /// start, idle gaps excluded) — the numerator of shard utilisation.
    pub busy: SimDuration,
}

impl ExecStats {
    /// Accumulates another shard's counters.
    pub fn merge(&mut self, other: &ExecStats) {
        self.accepted += other.accepted;
        self.served += other.served;
        self.dmas += other.dmas;
        self.coalesced_reqs += other.coalesced_reqs;
        self.rejected_ring_full += other.rejected_ring_full;
        self.busy += other.busy;
    }
}

/// What one worker needs to serve one shard's batch: exclusive device
/// access plus the coalesced runs. The mutex is claimed by exactly one
/// worker (the one that won the shard's index from the shared counter),
/// so it never blocks — it exists to satisfy the borrow checker across
/// the scoped threads, not to arbitrate.
struct WorkCell<'d, D> {
    shard: u32,
    device: &'d mut D,
    runs: Vec<CoalescedReq>,
    /// Cache-fill priority per run (parallel to `runs`), from the WFQ
    /// arbiter's tenant classes; all zeros without an arbiter.
    prios: Vec<u8>,
    out: Vec<Completion>,
    busy: SimDuration,
}

/// Batched, lock-light request executor over N shards.
///
/// # Example
///
/// ```
/// use nvdimmc_core::{
///     exec::{ExecutorConfig, ShardExecutor},
///     InterleaveMap, NvdimmCConfig, ReqKind, System,
/// };
/// use nvdimmc_sim::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let map = InterleaveMap::new(1, 4096)?;
/// let mut devices = vec![System::new(NvdimmCConfig::small_for_tests())?];
/// let mut exec = ShardExecutor::new(1, ExecutorConfig::default());
/// exec.submit(&map, 0, ReqKind::Write, 0, SimTime::ZERO, &[0xA5; 4096])?;
/// let done = exec.dispatch(&mut devices);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].error.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardExecutor {
    rings: Vec<SpscRing>,
    cfg: ExecutorConfig,
    stats: Vec<ExecStats>,
    next_seq: u64,
    /// Weighted fair dequeue across tenants sharing a shard ring.
    /// `None` (the default) keeps the pre-QoS FIFO dispatch bit-exact.
    arbiter: Option<WfqArbiter>,
}

impl ShardExecutor {
    /// An executor over `shards` shards.
    pub fn new(shards: usize, cfg: ExecutorConfig) -> Self {
        let cfg = ExecutorConfig {
            workers: cfg.workers.max(1),
            ring_depth: cfg.ring_depth.max(1),
            coalesce_bytes: cfg.coalesce_bytes.max(1),
            ..cfg
        };
        ShardExecutor {
            rings: (0..shards).map(|_| SpscRing::new(cfg.ring_depth)).collect(),
            cfg,
            stats: vec![ExecStats::default(); shards],
            next_seq: 0,
            arbiter: None,
        }
    }

    /// Installs (or removes) the weighted-fair arbiter. With an arbiter,
    /// each dispatch round reorders every shard's drained batch by
    /// per-tenant virtual time and tags cache fills with the issuing
    /// tenant's priority class; without one, dispatch is plain FIFO.
    pub fn set_arbiter(&mut self, arbiter: Option<WfqArbiter>) {
        self.arbiter = arbiter;
    }

    /// The installed arbiter, if any.
    pub fn arbiter(&self) -> Option<&WfqArbiter> {
        self.arbiter.as_ref()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// The active configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.cfg
    }

    /// Per-shard counters.
    pub fn stats(&self, shard: usize) -> ExecStats {
        self.stats[shard]
    }

    /// All shards' counters summed.
    pub fn total_stats(&self) -> ExecStats {
        let mut t = ExecStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }

    /// Per-shard `(accepted, served)` pairs: with empty rings, every
    /// accepted request must have produced a completion.
    pub fn conservation(&self) -> Vec<(u64, u64)> {
        self.stats.iter().map(|s| (s.accepted, s.served)).collect()
    }

    /// Requests currently queued on `shard`'s ring.
    pub fn pending(&self, shard: usize) -> usize {
        self.rings[shard].len()
    }

    /// Whether any ring holds work.
    pub fn has_pending(&self) -> bool {
        self.rings.iter().any(|r| !r.is_empty())
    }

    /// Moves each device's captured bus trace out (index = shard) via
    /// the zero-copy [`QueuedDevice::drain_trace`] handoff. Empty unless
    /// the devices had capture enabled. Front-driven runs normally leave
    /// the entries in place and collect the whole epoch through
    /// `MultiChannelSystem::set_trace_capture(false)` instead.
    ///
    /// # Panics
    ///
    /// Panics if `devices` does not cover every shard.
    pub fn take_traces<D: QueuedDevice>(&self, devices: &mut [D]) -> Vec<Vec<TraceEntry>> {
        assert_eq!(
            devices.len(),
            self.shards(),
            "devices must cover every shard"
        );
        devices.iter_mut().map(QueuedDevice::drain_trace).collect()
    }

    /// Routes one operation: splits `[offset, offset + data_or_len)` with
    /// `map` and pushes one request per segment onto the owning rings.
    /// For reads pass the length via `read_len` with an empty payload;
    /// for writes pass the payload (its length is the operation length).
    ///
    /// All-or-nothing: if any target ring lacks room the whole operation
    /// bounces and no ring is touched, so a retry cannot double-enqueue.
    ///
    /// # Errors
    ///
    /// [`CoreError::Overloaded`] (with the ring's depth) when a target
    /// ring is full.
    pub fn submit(
        &mut self,
        map: &InterleaveMap,
        thread: u32,
        kind: ReqKind,
        offset: u64,
        not_before: SimTime,
        payload: &[u8],
    ) -> Result<Vec<Submitted>, CoreError> {
        self.submit_for(
            map,
            TenantId::HOST,
            thread,
            kind,
            offset,
            not_before,
            payload,
        )
    }

    /// [`Self::submit`] with an explicit tenant identity: the tenant
    /// rides on every generated [`ShardRequest`], drives weighted-fair
    /// dequeue and cache-fill priority, and comes back on each
    /// [`Completion`] for per-tenant accounting.
    ///
    /// # Errors
    ///
    /// See [`Self::submit`].
    #[allow(clippy::too_many_arguments)]
    pub fn submit_for(
        &mut self,
        map: &InterleaveMap,
        tenant: TenantId,
        thread: u32,
        kind: ReqKind,
        offset: u64,
        not_before: SimTime,
        payload: &[u8],
    ) -> Result<Vec<Submitted>, CoreError> {
        self.submit_len(
            map,
            tenant,
            thread,
            kind,
            offset,
            payload.len() as u64,
            not_before,
            payload,
        )
    }

    /// Routes one *pre-split* request onto `shard`'s ring — for drivers
    /// that run the interleave splitter themselves. Stamps and returns
    /// the sequence number; a full ring bounces the request back
    /// (mirroring [`RequestScheduler::enqueue`]) so the caller can drain
    /// and retry without losing it.
    ///
    /// [`RequestScheduler::enqueue`]: crate::sched::RequestScheduler::enqueue
    ///
    /// # Errors
    ///
    /// Returns the request itself when the ring is at capacity.
    pub fn submit_request(
        &mut self,
        shard: usize,
        mut req: ShardRequest,
    ) -> Result<u64, ShardRequest> {
        if self.rings[shard].is_full() {
            self.stats[shard].rejected_ring_full += 1;
            return Err(req);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        req.seq = seq;
        // INVARIANT: the fullness check above reserved the slot.
        self.rings[shard].try_push(req)?;
        self.stats[shard].accepted += 1;
        Ok(seq)
    }

    /// [`Self::submit`] for reads: the length is explicit, no payload.
    ///
    /// # Errors
    ///
    /// See [`Self::submit`].
    pub fn submit_read(
        &mut self,
        map: &InterleaveMap,
        thread: u32,
        offset: u64,
        len: u64,
        not_before: SimTime,
    ) -> Result<Vec<Submitted>, CoreError> {
        self.submit_read_for(map, TenantId::HOST, thread, offset, len, not_before)
    }

    /// [`Self::submit_read`] with an explicit tenant identity.
    ///
    /// # Errors
    ///
    /// See [`Self::submit`].
    pub fn submit_read_for(
        &mut self,
        map: &InterleaveMap,
        tenant: TenantId,
        thread: u32,
        offset: u64,
        len: u64,
        not_before: SimTime,
    ) -> Result<Vec<Submitted>, CoreError> {
        self.submit_len(
            map,
            tenant,
            thread,
            ReqKind::Read,
            offset,
            len,
            not_before,
            &[],
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_len(
        &mut self,
        map: &InterleaveMap,
        tenant: TenantId,
        thread: u32,
        kind: ReqKind,
        offset: u64,
        len: u64,
        not_before: SimTime,
        payload: &[u8],
    ) -> Result<Vec<Submitted>, CoreError> {
        let segs = map.split_range(offset, len);
        // All-or-nothing admission: count demand per shard first.
        let mut demand = vec![0usize; self.rings.len()];
        for seg in &segs {
            demand[seg.shard as usize] += 1;
        }
        for (shard, need) in demand.iter().enumerate() {
            let ring = &self.rings[shard];
            if *need > 0 && ring.len() + need > ring.capacity() {
                self.stats[shard].rejected_ring_full += 1;
                // Pressure-proportional hint: an empty ring retries after
                // the base delay, a full one after twice it.
                let base = self.cfg.retry_after;
                let scaled = base + base.mul_f64(ring.len() as f64 / ring.capacity().max(1) as f64);
                return Err(CoreError::Overloaded {
                    shard: shard as u32,
                    retry_after: scaled,
                    queued: ring.len(),
                    queue_limit: ring.capacity(),
                });
            }
        }
        let mut accepted = Vec::with_capacity(segs.len());
        for seg in segs {
            let seq = self.next_seq;
            self.next_seq += 1;
            let data = if kind == ReqKind::Write {
                payload[seg.pos..seg.pos + seg.len as usize].to_vec()
            } else {
                Vec::new()
            };
            let req = ShardRequest {
                seq,
                tenant,
                thread,
                kind,
                local_offset: seg.local_offset,
                len: seg.len,
                not_before,
                data,
            };
            // INVARIANT: the demand pre-check reserved this slot.
            if self.rings[seg.shard as usize].try_push(req).is_err() {
                return Err(CoreError::Config(
                    "executor ring capacity invariant violated".into(),
                ));
            }
            self.stats[seg.shard as usize].accepted += 1;
            accepted.push(Submitted {
                seq,
                shard: seg.shard,
                pos: seg.pos,
                len: seg.len,
            });
        }
        Ok(accepted)
    }

    /// Drains every ring, coalesces, and serves all batches on the worker
    /// pool. Completions come back in shard-index order, FIFO within a
    /// shard — a deterministic order independent of the worker count.
    ///
    /// `devices[i]` serves shard `i`; the slice must cover every shard.
    pub fn dispatch<D: QueuedDevice>(&mut self, devices: &mut [D]) -> Vec<Completion> {
        let cap = self.cfg.coalesce_bytes;
        let mut ready: Vec<usize> = Vec::new();
        let mut cells: Vec<Mutex<WorkCell<'_, D>>> = Vec::new();
        // The discrete-event fast path: order ready shards by the time of
        // their next event (head-of-batch start), earliest first, ties by
        // shard index. Workers then claim shards in exactly that order.
        let mut calendar = ShardCalendar::new(self.rings.len());
        let arbiter = &mut self.arbiter;
        for (shard, (ring, device)) in self.rings.iter_mut().zip(devices.iter_mut()).enumerate() {
            let mut batch = Vec::with_capacity(ring.len());
            while let Some(req) = ring.pop() {
                batch.push(req);
            }
            if batch.is_empty() {
                continue;
            }
            // Weighted fair dequeue: reorder the drained FIFO batch by
            // per-tenant virtual time before coalescing, so a flooding
            // tenant's burst cannot monopolise the head of the batch.
            if let Some(arb) = arbiter.as_mut() {
                arb.order(shard, &mut batch);
            }
            let runs = coalesce(batch, cap);
            let prios: Vec<u8> = runs
                .iter()
                .map(|r| arbiter.as_ref().map_or(0, |a| a.fill_priority(r.tenant)))
                .collect();
            if let Some(first) = runs.first() {
                calendar.set(shard, first.not_before.max(device.clock()));
            }
            ready.push(shard);
            cells.push(Mutex::new(WorkCell {
                shard: shard as u32,
                device,
                runs,
                prios,
                out: Vec::new(),
                busy: SimDuration::ZERO,
            }));
        }
        if ready.is_empty() {
            return Vec::new();
        }
        // cells[i] serves shard ready[i]; map the calendar's event order
        // onto cell indices for the claim sequence.
        let order: Vec<usize> = calendar
            .drain_order()
            .into_iter()
            .filter_map(|(_, shard)| ready.iter().position(|&s| s == shard))
            .collect();
        let workers = self.cfg.workers.min(order.len());
        if workers <= 1 {
            for &cell_idx in &order {
                let cell = cells[cell_idx]
                    .get_mut()
                    .unwrap_or_else(PoisonError::into_inner);
                serve_cell(cell);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let claim = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&cell_idx) = order.get(claim) else {
                            break;
                        };
                        // Only this worker ever touches the claimed cell,
                        // so the lock is uncontended by construction.
                        let mut cell = cells[cell_idx]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        serve_cell(&mut cell);
                    });
                }
            });
        }
        // Deterministic fold: shard-index order, FIFO within each shard —
        // identical for every worker count.
        let mut completions = Vec::new();
        let mut folded: Vec<(usize, WorkCell<'_, D>)> = ready
            .into_iter()
            .zip(
                cells
                    .into_iter()
                    .map(|c| c.into_inner().unwrap_or_else(PoisonError::into_inner)),
            )
            .collect();
        folded.sort_by_key(|(shard, _)| *shard);
        for (shard, mut cell) in folded {
            let st = &mut self.stats[shard];
            st.served += cell.out.len() as u64;
            st.dmas += cell.runs.len() as u64;
            st.coalesced_reqs += cell.out.iter().filter(|c| c.coalesced).count() as u64;
            st.busy += cell.busy;
            completions.append(&mut cell.out);
        }
        completions
    }
}

/// Serves one shard's coalesced batch on its device and fans completions
/// back out to the parents. Runs after an error still execute — each
/// operation fails or succeeds on its own, exactly like the blocking
/// path.
fn serve_cell<D: QueuedDevice>(cell: &mut WorkCell<'_, D>) {
    for (i, run) in cell.runs.iter().enumerate() {
        // Slots this run fills inherit the tenant's cache-priority class.
        cell.device
            .set_fill_priority(cell.prios.get(i).copied().unwrap_or(0));
        // Per-shard backlog behind this run: the per-bank refresh planner
        // stretches NVMC windows when idle and shrinks them under load.
        cell.device.note_queue_depth(cell.runs.len() - 1 - i);
        let start = cell.device.clock().max(run.not_before);
        let multi = run.parents.len() > 1;
        let served = match run.kind {
            ReqKind::Read => {
                let mut buf = vec![0u8; run.len as usize];
                cell.device
                    .serve_read(run.not_before, run.local_offset, &mut buf)
                    .map(|end| (end, buf))
            }
            ReqKind::Write => cell
                .device
                .serve_write(run.not_before, run.local_offset, &run.data)
                .map(|end| (end, Vec::new())),
        };
        match served {
            Ok((end, mut buf)) => {
                cell.busy += end.saturating_since(start);
                let mut cursor = 0usize;
                for p in &run.parents {
                    let data = match run.kind {
                        // Multi-parent reads slice the joint DMA buffer;
                        // a single-parent read hands it over whole.
                        ReqKind::Read if multi => buf[cursor..cursor + p.len as usize].to_vec(),
                        ReqKind::Read => std::mem::take(&mut buf),
                        ReqKind::Write => Vec::new(),
                    };
                    cursor += p.len as usize;
                    cell.out.push(Completion {
                        seq: p.seq,
                        tenant: p.tenant,
                        thread: p.thread,
                        shard: cell.shard,
                        kind: run.kind,
                        local_offset: p.local_offset,
                        len: p.len,
                        end,
                        data,
                        coalesced: multi,
                        error: None,
                    });
                }
            }
            Err(e) => {
                let end = cell.device.clock();
                for p in &run.parents {
                    cell.out.push(Completion {
                        seq: p.seq,
                        tenant: p.tenant,
                        thread: p.thread,
                        shard: cell.shard,
                        kind: run.kind,
                        local_offset: p.local_offset,
                        len: p.len,
                        end,
                        data: Vec::new(),
                        coalesced: multi,
                        error: Some(e.clone()),
                    });
                }
            }
        }
    }
}
