//! Bounded per-shard inbound rings for the scale-out executor.
//!
//! Each shard owns one [`SpscRing`] of [`ShardRequest`]s. The router (the
//! `InterleaveMap` splitter) is the ring's only producer and the worker
//! that has claimed the shard is its only consumer, so the ring needs no
//! arbitration: FIFO order *is* per-shard request order, and the executor's
//! coalescer and the order-preservation proptest both lean on that
//! invariant. The crate forbids `unsafe`, so the single-producer /
//! single-consumer discipline is enforced structurally — the executor
//! hands out `&mut` access to exactly one side at a time — rather than
//! with atomics; the payoff is the same: no per-request locking on the
//! hot path.
//!
//! A full ring bounces the request back to the producer ([`SpscRing::
//! try_push`] returns it in `Err`), mirroring the bounded
//! [`RequestScheduler`](crate::sched::RequestScheduler) queues:
//! backpressure, never silent growth.

use crate::sched::ShardRequest;

/// A bounded FIFO ring of [`ShardRequest`]s with one producer (the
/// router) and one consumer (the claiming worker).
#[derive(Debug)]
pub struct SpscRing {
    slots: Box<[Option<ShardRequest>]>,
    /// Index of the next slot to pop (oldest element).
    head: usize,
    /// Number of live elements; the next push lands at
    /// `(head + len) % capacity`.
    len: usize,
}

impl SpscRing {
    /// A ring holding at most `capacity` requests (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpscRing {
            slots: std::iter::repeat_with(|| None)
                .take(capacity)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// The ring's bound.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the next push would bounce.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Appends `req`; a full ring bounces it back so the producer can
    /// apply backpressure.
    ///
    /// # Errors
    ///
    /// Returns the request itself when the ring is at capacity.
    pub fn try_push(&mut self, req: ShardRequest) -> Result<(), ShardRequest> {
        if self.is_full() {
            return Err(req);
        }
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = Some(req);
        self.len += 1;
        Ok(())
    }

    /// Removes and returns the oldest request.
    pub fn pop(&mut self) -> Option<ShardRequest> {
        if self.len == 0 {
            return None;
        }
        let req = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        req
    }

    /// The oldest request without removing it (the shard's next event —
    /// what the executor registers on the calendar).
    pub fn peek(&self) -> Option<&ShardRequest> {
        if self.len == 0 {
            return None;
        }
        self.slots[self.head].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::TenantId;
    use crate::sched::ReqKind;
    use nvdimmc_sim::SimTime;

    fn req(seq: u64) -> ShardRequest {
        ShardRequest {
            seq,
            tenant: TenantId::HOST,
            thread: 0,
            kind: ReqKind::Read,
            local_offset: seq * 64,
            len: 64,
            not_before: SimTime::ZERO,
            data: Vec::new(),
        }
    }

    #[test]
    fn fifo_order_survives_wraparound() {
        let mut r = SpscRing::new(4);
        for seq in 0..4 {
            r.try_push(req(seq)).unwrap();
        }
        assert_eq!(r.pop().unwrap().seq, 0);
        assert_eq!(r.pop().unwrap().seq, 1);
        // Push past the physical end: indices wrap.
        r.try_push(req(4)).unwrap();
        r.try_push(req(5)).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| r.pop()).map(|r| r.seq).collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_bounces_the_request_back() {
        let mut r = SpscRing::new(2);
        r.try_push(req(0)).unwrap();
        r.try_push(req(1)).unwrap();
        assert!(r.is_full());
        let bounced = r.try_push(req(2)).unwrap_err();
        assert_eq!(bounced.seq, 2);
        // The resident elements are untouched.
        assert_eq!(r.pop().unwrap().seq, 0);
        r.try_push(req(3)).unwrap();
        assert_eq!(r.pop().unwrap().seq, 1);
        assert_eq!(r.pop().unwrap().seq, 3);
    }

    #[test]
    fn peek_exposes_the_head_without_consuming() {
        let mut r = SpscRing::new(2);
        assert!(r.peek().is_none());
        r.try_push(req(7)).unwrap();
        assert_eq!(r.peek().unwrap().seq, 7);
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop().unwrap().seq, 7);
        assert!(r.peek().is_none());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = SpscRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.try_push(req(0)).unwrap();
        assert!(r.try_push(req(1)).is_err());
    }
}
