//! Top-level NVDIMM-C configuration.

use crate::faults::RecoveryParams;
use crate::perf::PerfParams;
use nvdimmc_ddr::{RefreshMode, SpeedBin, TimingParams};
use nvdimmc_nand::NvmcConfig;
use nvdimmc_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// DRAM-cache slot replacement policy (paper §IV-B uses LRC; §VII-B5
/// reports an in-house LRU study; CLOCK is a common middle ground).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicyKind {
    /// Least-recently **cached**: FIFO by fill order — the paper's PoC
    /// policy ("simple to implement", possibly pathological).
    Lrc,
    /// Least-recently used.
    Lru,
    /// CLOCK (second-chance) approximation of LRU.
    Clock,
}

/// How the back end behind a cache miss is realised.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Backend {
    /// The real path: CP mailbox → FPGA → Z-NAND, serialized into
    /// extra-tRFC windows.
    Znand,
    /// The paper's *hypothetical device* (§VII-D1): misses cost a
    /// programmable delay `td` instead of FPGA communication — used to
    /// project NVDIMM-C over faster NVM media.
    Hypothetical {
        /// The programmable miss delay (the paper sweeps 0 / 1.85 / 3.9 /
        /// 7.8 µs).
        td: SimDuration,
    },
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvdimmCConfig {
    /// DDR4 timing for the shared DIMM (programmed tRFC/tREFI included).
    pub timing: TimingParams,
    /// Bytes of front-end DRAM on the module (paper: 16 GB RDIMM).
    pub dram_bytes: u64,
    /// Number of 4 KB cache slots the driver manages (paper: 15 GB worth
    /// of the 16 GB DIMM).
    pub cache_slots: u64,
    /// NAND controller + media + FTL configuration.
    pub nvmc: NvmcConfig,
    /// Eviction policy.
    pub eviction: EvictionPolicyKind,
    /// Backend realisation.
    pub backend: Backend,
    /// CP mailbox command depth (the PoC supports 1; >1 is the paper's
    /// §VII-C optimisation 2, modelled in the multi-thread projection).
    pub cp_queue_depth: u32,
    /// §VII-C optimisation 4: merge an independent writeback and
    /// cachefill into one CP command processed in parallel by the device.
    pub merge_wb_cf: bool,
    /// Max bytes the FPGA moves per extra-tRFC window (PoC: 4 KB; §VII-C
    /// optimisation 3 doubles it).
    pub window_xfer_bytes: u64,
    /// Calibrated software-path constants.
    pub perf: PerfParams,
    /// CPU L1/L2 model size (functional coherence only).
    pub cpu_cache_bytes: usize,
    /// TLB capacity in entries.
    pub tlb_entries: usize,
    /// RNG seed for the media model.
    pub seed: u64,
    /// Driver-side fault-recovery parameters (CP timeout, retransmit
    /// budget, backoff).
    pub recovery: RecoveryParams,
    /// Refresh scheduling mode: rank-level all-bank REF (the paper's
    /// mechanism, the default — legacy runs stay bit-identical) or
    /// per-bank windows with refresh–access parallelism. Defaults on
    /// deserialize so existing serialized configs load unchanged.
    #[serde(default)]
    pub refresh_mode: RefreshMode,
}

/// One 4 KB page.
pub const PAGE_BYTES: u64 = 4096;

impl NvdimmCConfig {
    /// A scaled-down system for fast tests and examples: a 32 MB module
    /// DRAM carrying 12 MB of cache slots (the fixed 16 MB metadata area
    /// dominates at this scale) over the small Z-NAND geometry, all paper
    /// mechanisms intact.
    pub fn small_for_tests() -> Self {
        NvdimmCConfig {
            timing: TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
            dram_bytes: 32 << 20,
            cache_slots: (12 << 20) / PAGE_BYTES,
            nvmc: NvmcConfig::small_for_tests(),
            eviction: EvictionPolicyKind::Lrc,
            backend: Backend::Znand,
            cp_queue_depth: 1,
            merge_wb_cf: false,
            window_xfer_bytes: PAGE_BYTES,
            perf: PerfParams::poc(),
            cpu_cache_bytes: 64 << 10,
            tlb_entries: 256,
            seed: 42,
            recovery: RecoveryParams::default(),
            refresh_mode: RefreshMode::RankLevel,
        }
    }

    /// Figure-scale system: every mechanism at PoC fidelity, capacities
    /// scaled 1:256 (64 MB cache slots over 512 MB Z-NAND) so the full
    /// table/figure suite runs in minutes. All *ratios* the figures
    /// depend on (cache:media, window:tREFI) match the paper.
    pub fn figure_scale() -> Self {
        NvdimmCConfig {
            dram_bytes: 96 << 20,
            cache_slots: (64 << 20) / PAGE_BYTES,
            nvmc: NvmcConfig::medium(),
            ..Self::small_for_tests()
        }
    }

    /// The paper's PoC (Table I): 16 GB DRAM cache (15 GB of slots),
    /// 128 GB Z-NAND (120 GB exported), DDR4-1600, tRFC 1.25 µs.
    pub fn poc() -> Self {
        NvdimmCConfig {
            timing: TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600),
            dram_bytes: 16 << 30,
            cache_slots: (15 << 30) / PAGE_BYTES,
            nvmc: NvmcConfig::znand_poc(),
            eviction: EvictionPolicyKind::Lrc,
            backend: Backend::Znand,
            cp_queue_depth: 1,
            merge_wb_cf: false,
            window_xfer_bytes: PAGE_BYTES,
            perf: PerfParams::poc(),
            cpu_cache_bytes: 1 << 20,
            tlb_entries: 1536,
            seed: 42,
            recovery: RecoveryParams::default(),
            refresh_mode: RefreshMode::RankLevel,
        }
    }

    /// Replaces the refresh interval (tREFI sweep experiments).
    pub fn with_trefi(mut self, trefi: SimDuration) -> Self {
        self.timing = self.timing.with_trefi(trefi);
        self
    }

    /// Replaces the eviction policy.
    pub fn with_eviction(mut self, policy: EvictionPolicyKind) -> Self {
        self.eviction = policy;
        self
    }

    /// Switches to the hypothetical-backend mode with miss delay `td`.
    pub fn with_hypothetical(mut self, td: SimDuration) -> Self {
        self.backend = Backend::Hypothetical { td };
        self
    }

    /// Replaces the refresh scheduling mode.
    pub fn with_refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.refresh_mode = mode;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cache_slots == 0 {
            return Err("cache_slots must be positive".into());
        }
        let needed = crate::layout::Layout::required_bytes(self.cache_slots);
        if needed > self.dram_bytes {
            return Err(format!(
                "{} slots need {} bytes of DRAM, only {} configured",
                self.cache_slots, needed, self.dram_bytes
            ));
        }
        if self.cp_queue_depth == 0 {
            return Err("cp_queue_depth must be at least 1".into());
        }
        if self.window_xfer_bytes == 0 || !self.window_xfer_bytes.is_multiple_of(PAGE_BYTES) {
            return Err("window_xfer_bytes must be a positive multiple of 4096".into());
        }
        if self.timing.extra_window() == SimDuration::ZERO {
            return Err("programmed tRFC leaves no extra window for the NVMC".into());
        }
        if self.refresh_mode == RefreshMode::PerBank
            && self.timing.extra_window_pb() == SimDuration::ZERO
        {
            return Err("per-bank refresh mode needs a per-bank NVMC window (tRFCpb)".into());
        }
        if self.recovery.cp_timeout_windows == 0 {
            return Err("recovery.cp_timeout_windows must be at least 1".into());
        }
        if self.recovery.cp_backoff == 0 {
            return Err("recovery.cp_backoff must be at least 1".into());
        }
        if self.recovery.dump_slot_budget == 0 {
            return Err("recovery.dump_slot_budget must be at least 1 (a dump that \
                 flushes nothing is not a persistence mechanism)"
                .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        NvdimmCConfig::small_for_tests().validate().unwrap();
    }

    #[test]
    fn poc_config_matches_table1() {
        let c = NvdimmCConfig::poc();
        c.validate().unwrap();
        assert_eq!(c.dram_bytes, 16 << 30);
        assert_eq!(c.cache_slots * PAGE_BYTES, 15 << 30);
        assert_eq!(c.timing.trfc_total, SimDuration::from_ns(1250));
        assert_eq!(c.nvmc.ftl.geometry.raw_bytes(), 128 << 30);
    }

    #[test]
    fn zero_slots_rejected() {
        let mut c = NvdimmCConfig::small_for_tests();
        c.cache_slots = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn oversubscribed_dram_rejected() {
        let mut c = NvdimmCConfig::small_for_tests();
        c.cache_slots = c.dram_bytes / PAGE_BYTES + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn jedec_trfc_rejected() {
        let mut c = NvdimmCConfig::small_for_tests();
        c.timing = TimingParams::jedec(SpeedBin::Ddr4_1600);
        assert!(c.validate().is_err(), "no window, no NVDIMM-C");
    }

    #[test]
    fn per_bank_mode_requires_a_pb_window() {
        let mut c = NvdimmCConfig::small_for_tests().with_refresh_mode(RefreshMode::PerBank);
        c.validate().unwrap();
        // A timing set with valid rank windows but a collapsed per-bank
        // window cannot run per-bank mode.
        c.timing.trfc_pb_total = c.timing.trfc_pb;
        let err = c.validate().unwrap_err();
        assert!(err.contains("per-bank"), "{err}");
        // Rank mode does not care about the per-bank fields.
        assert!(c
            .clone()
            .with_refresh_mode(RefreshMode::RankLevel)
            .validate()
            .is_ok());
    }

    #[test]
    fn refresh_mode_defaults_to_rank_level() {
        // `#[serde(default)]` on the field resolves through this impl, so
        // serialized configs predating the field load as rank-level.
        assert_eq!(RefreshMode::default(), RefreshMode::RankLevel);
        assert_eq!(
            NvdimmCConfig::small_for_tests().refresh_mode,
            RefreshMode::RankLevel
        );
    }

    #[test]
    fn zero_dump_budget_rejected() {
        let mut c = NvdimmCConfig::small_for_tests();
        c.recovery.dump_slot_budget = 0;
        let err = c.validate().unwrap_err();
        assert!(err.contains("dump_slot_budget"), "{err}");
    }

    #[test]
    fn builders_compose() {
        let c = NvdimmCConfig::small_for_tests()
            .with_trefi(SimDuration::from_us(3.9))
            .with_eviction(EvictionPolicyKind::Lru)
            .with_hypothetical(SimDuration::from_us(1.85));
        assert_eq!(c.timing.trefi, SimDuration::from_us(3.9));
        assert_eq!(c.eviction, EvictionPolicyKind::Lru);
        assert!(matches!(c.backend, Backend::Hypothetical { .. }));
    }
}
