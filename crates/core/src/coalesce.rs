//! Adjacent-page request coalescing in front of the DMA engine.
//!
//! Consecutive requests on one shard's ring frequently target adjacent
//! byte ranges — sequential fio streams split at the interleave stripe
//! land as runs of contiguous segments. Issuing each as its own device
//! request pays the per-request software cost once per segment; a real
//! controller would merge them into one DMA. The coalescer does exactly
//! that: it folds a FIFO batch into maximal runs of *same-kind, exactly
//! contiguous* requests (bounded by a byte cap) and remembers every
//! parent's span so completions fan back out to the issuing threads.
//!
//! Invariants (property-tested in `tests/properties.rs`):
//!
//! - **Exact union** — a coalesced request's `[local_offset,
//!   local_offset + len)` is tiled by its parents' spans with no gap and
//!   no overlap, in FIFO order;
//! - **Order preservation** — parents appear in the same relative order
//!   they were enqueued, and coalescing never reorders across requests
//!   it did not merge;
//! - **Start time** — the merged device phase starts no earlier than any
//!   parent's `not_before` (`max` over parents), so coalescing can only
//!   model a *joint* DMA, never time travel.

use crate::qos::TenantId;
use crate::sched::{ReqKind, ShardRequest};
use nvdimmc_sim::SimTime;

/// One parent's slice of a coalesced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParentSpan {
    /// The parent's scheduler sequence number.
    pub seq: u64,
    /// The issuing tenant.
    pub tenant: TenantId,
    /// The issuing workload thread.
    pub thread: u32,
    /// Parent's offset in the shard's local space.
    pub local_offset: u64,
    /// Parent's length in bytes.
    pub len: u64,
}

/// A maximal run of same-kind, exactly contiguous requests merged into
/// one device operation.
#[derive(Debug, Clone)]
pub struct CoalescedReq {
    /// Direction (parents all share it).
    pub kind: ReqKind,
    /// Issuing tenant (parents all share it — runs never cross a tenant
    /// boundary, so per-run accounting and cache-fill priority stay
    /// attributable).
    pub tenant: TenantId,
    /// Start of the merged span in the shard's local space.
    pub local_offset: u64,
    /// Merged length in bytes (sum of the parents').
    pub len: u64,
    /// Earliest instant the merged device phase may start: the latest
    /// parent `not_before` — a joint DMA waits for every contributor.
    pub not_before: SimTime,
    /// Concatenated payload for writes (empty for reads).
    pub data: Vec<u8>,
    /// The merged requests, in FIFO order.
    pub parents: Vec<ParentSpan>,
}

impl CoalescedReq {
    fn from_request(req: ShardRequest) -> Self {
        CoalescedReq {
            kind: req.kind,
            tenant: req.tenant,
            local_offset: req.local_offset,
            len: req.len,
            not_before: req.not_before,
            data: req.data,
            parents: vec![ParentSpan {
                seq: req.seq,
                tenant: req.tenant,
                thread: req.thread,
                local_offset: req.local_offset,
                len: req.len,
            }],
        }
    }

    /// Whether `req` extends this run: same direction and tenant, starts
    /// exactly where the run ends, and the merged span stays under
    /// `max_bytes`. Tenancy bounds the merge so one DMA never mixes two
    /// tenants' accounting (or cache-fill priorities).
    fn accepts(&self, req: &ShardRequest, max_bytes: u64) -> bool {
        self.kind == req.kind
            && self.tenant == req.tenant
            && req.local_offset == self.local_offset + self.len
            && self.len + req.len <= max_bytes
    }

    fn absorb(&mut self, mut req: ShardRequest) {
        self.parents.push(ParentSpan {
            seq: req.seq,
            tenant: req.tenant,
            thread: req.thread,
            local_offset: req.local_offset,
            len: req.len,
        });
        self.len += req.len;
        self.not_before = self.not_before.max(req.not_before);
        if self.kind == ReqKind::Write {
            self.data.append(&mut req.data);
        }
    }
}

/// Folds a FIFO batch into maximal contiguous runs, capped at
/// `max_bytes` per merged request. A batch of one (the single-channel /
/// single-thread case) passes through untouched, which is what keeps the
/// one-channel executor bit-identical to the monolith.
pub fn coalesce(batch: Vec<ShardRequest>, max_bytes: u64) -> Vec<CoalescedReq> {
    let max_bytes = max_bytes.max(1);
    let mut out: Vec<CoalescedReq> = Vec::new();
    for req in batch {
        match out.last_mut() {
            Some(run) if run.accepts(&req, max_bytes) => run.absorb(req),
            _ => out.push(CoalescedReq::from_request(req)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PAGE_BYTES;

    fn req(seq: u64, kind: ReqKind, local_offset: u64, len: u64) -> ShardRequest {
        ShardRequest {
            seq,
            tenant: TenantId::HOST,
            thread: seq as u32,
            kind,
            local_offset,
            len,
            not_before: SimTime::from_ns(seq * 10),
            data: if kind == ReqKind::Write {
                vec![seq as u8; len as usize]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn adjacent_pages_merge_into_one_dma() {
        let batch = vec![
            req(0, ReqKind::Read, 0, PAGE_BYTES),
            req(1, ReqKind::Read, PAGE_BYTES, PAGE_BYTES),
            req(2, ReqKind::Read, 2 * PAGE_BYTES, PAGE_BYTES),
        ];
        let runs = coalesce(batch, 16 * PAGE_BYTES);
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!((run.local_offset, run.len), (0, 3 * PAGE_BYTES));
        assert_eq!(run.parents.len(), 3);
        // Joint DMA waits for the latest contributor.
        assert_eq!(run.not_before, SimTime::from_ns(20));
    }

    #[test]
    fn gaps_kind_changes_and_caps_break_runs() {
        let batch = vec![
            req(0, ReqKind::Write, 0, PAGE_BYTES),
            req(1, ReqKind::Read, PAGE_BYTES, PAGE_BYTES), // kind change
            req(2, ReqKind::Read, 3 * PAGE_BYTES, PAGE_BYTES), // gap
            req(3, ReqKind::Read, 4 * PAGE_BYTES, PAGE_BYTES),
        ];
        let runs = coalesce(batch, 16 * PAGE_BYTES);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[2].parents.len(), 2);
        // Byte cap: the same tail pair refuses to merge under a 1-page cap.
        let batch = vec![
            req(2, ReqKind::Read, 3 * PAGE_BYTES, PAGE_BYTES),
            req(3, ReqKind::Read, 4 * PAGE_BYTES, PAGE_BYTES),
        ];
        assert_eq!(coalesce(batch, PAGE_BYTES).len(), 2);
    }

    #[test]
    fn write_payloads_concatenate_in_order() {
        let batch = vec![req(0, ReqKind::Write, 0, 4), req(1, ReqKind::Write, 4, 4)];
        let runs = coalesce(batch, 64);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].data, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn singleton_batch_passes_through_untouched() {
        let runs = coalesce(vec![req(5, ReqKind::Read, 100, 64)], PAGE_BYTES);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].parents.len(), 1);
        assert_eq!(
            (runs[0].local_offset, runs[0].len, runs[0].not_before),
            (100, 64, SimTime::from_ns(50))
        );
    }

    #[test]
    fn tenant_boundary_breaks_runs() {
        let mut a = req(0, ReqKind::Read, 0, PAGE_BYTES);
        a.tenant = TenantId(1);
        let mut b = req(1, ReqKind::Read, PAGE_BYTES, PAGE_BYTES);
        b.tenant = TenantId(2);
        let runs = coalesce(vec![a, b], 16 * PAGE_BYTES);
        assert_eq!(
            runs.len(),
            2,
            "adjacent cross-tenant requests must not merge"
        );
        assert_eq!(runs[0].tenant, TenantId(1));
        assert_eq!(runs[1].tenant, TenantId(2));
    }

    #[test]
    fn parents_tile_the_merged_span_exactly() {
        let batch = vec![
            req(0, ReqKind::Read, 0, 64),
            req(1, ReqKind::Read, 64, PAGE_BYTES),
            req(2, ReqKind::Read, 64 + PAGE_BYTES, 32),
        ];
        let runs = coalesce(batch, 4 * PAGE_BYTES);
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        let mut cursor = run.local_offset;
        for p in &run.parents {
            assert_eq!(p.local_offset, cursor, "gap or overlap");
            cursor += p.len;
        }
        assert_eq!(cursor, run.local_offset + run.len, "union mismatch");
    }
}
