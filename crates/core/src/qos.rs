//! Multi-tenant quality of service: per-tenant quotas, weighted fair
//! dequeue, priority classes, and self-managing maintenance.
//!
//! PR 7 scaled the request path to 256 channels but left it a commons:
//! a single greedy caller could fill every per-shard ring and starve
//! everyone, and scrub/repair work competed directly with foreground
//! requests. This module adds the isolation layer:
//!
//! - [`TenantId`] rides on every [`ShardRequest`]
//!   so request-path structures can account per caller;
//! - [`TokenBucket`] enforces bytes/s and ops/s quotas with *integer*
//!   refill arithmetic on the simulated clock — no float drift, so the
//!   admission sequence is a pure function of the clock and bit-identical
//!   across reruns. Every token is ledgered: granted = consumed +
//!   expired + residual, audited by `check::qos`;
//! - [`QosEngine`] combines the buckets with per-tenant request
//!   conservation counters (submitted = throttled + admitted; admitted =
//!   completed + failed + shed + inflight);
//! - [`WfqArbiter`] reorders each shard's drained batch by per-tenant
//!   virtual time (start-time-fair queueing over byte cost / weight), so
//!   a flooding tenant cannot push a trickling tenant to the back of the
//!   ring — no-starvation is property-tested;
//! - two SLO classes ([`SloClass`]) with latency targets
//!   ([`SloTargets`]): cached-class tenants are promised DRAM-hit
//!   latency, uncached-class tenants the Z-NAND fault path;
//! - [`MaintenanceScheduler`] runs CRC scrub sweeps, degraded-shard
//!   repair and FTL housekeeping out of a
//!   [`ShardCalendar`], *only* when the
//!   shard's foreground queue is empty — rising queue depth preempts the
//!   slot and reschedules it, so maintenance never sits on the request
//!   path (the *Self-Managing DRAM* idea applied to the module).

use crate::error::CoreError;
use crate::sched::ShardRequest;
use crate::shard::{BlockDevice, ChannelShard};
use nvdimmc_sim::{ShardCalendar, SimDuration, SimTime};
use std::fmt;

/// Picoseconds per second — the token-bucket refill base.
const PS_PER_SEC: u128 = 1_000_000_000_000;

/// A tenant identity carried on every request. Tenant 0 is the host
/// (the default for drivers that never configured QoS), so all
/// pre-tenancy call sites keep their exact behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The default tenant: the host itself, used by every legacy call
    /// site that predates multi-tenancy.
    pub const HOST: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Cache-priority class of a tenant. Drives both WFQ weight defaults
/// and the DRAM cache's priority-aware eviction: a background tenant's
/// fills can never evict a foreground tenant's slots while any
/// background slot remains resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort: fills tagged priority 0 (evicted first).
    Background,
    /// Latency-sensitive: fills tagged priority 1 (evicted only when no
    /// background slot is left).
    Foreground,
}

impl Priority {
    /// The cache fill tag for this class.
    pub fn cache_tag(self) -> u8 {
        match self {
            Priority::Background => 0,
            Priority::Foreground => 1,
        }
    }
}

/// Which latency promise a tenant bought.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloClass {
    /// Working set sized to stay DRAM-resident: p99 judged against
    /// [`SloTargets::cached_p99`].
    Cached,
    /// Working set overflows the cache (Z-NAND fault path in the loop):
    /// p99 judged against [`SloTargets::uncached_p99`].
    Uncached,
}

/// Per-class p99 latency targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTargets {
    /// p99 bound for [`SloClass::Cached`] tenants.
    pub cached_p99: SimDuration,
    /// p99 bound for [`SloClass::Uncached`] tenants.
    pub uncached_p99: SimDuration,
}

impl SloTargets {
    /// Returns the target for `class`.
    pub fn for_class(&self, class: SloClass) -> SimDuration {
        match class {
            SloClass::Cached => self.cached_p99,
            SloClass::Uncached => self.uncached_p99,
        }
    }
}

/// One tenant's contract: identity, fair-share weight, cache priority,
/// SLO class and quotas.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Tenant identity.
    pub id: TenantId,
    /// WFQ weight (larger = bigger share of a contended shard ring).
    /// Clamped to at least 1.
    pub weight: u32,
    /// Cache priority class.
    pub priority: Priority,
    /// Latency class the SLO is judged against.
    pub slo: SloClass,
    /// Bytes-per-second quota (0 = unlimited).
    pub bytes_per_sec: u64,
    /// Operations-per-second quota (0 = unlimited).
    pub ops_per_sec: u64,
}

impl TenantSpec {
    /// An unthrottled foreground tenant with weight 1.
    pub fn foreground(id: TenantId) -> Self {
        TenantSpec {
            id,
            weight: 1,
            priority: Priority::Foreground,
            slo: SloClass::Cached,
            bytes_per_sec: 0,
            ops_per_sec: 0,
        }
    }

    /// An unthrottled background tenant with weight 1.
    pub fn background(id: TenantId) -> Self {
        TenantSpec {
            id,
            weight: 1,
            priority: Priority::Background,
            slo: SloClass::Uncached,
            bytes_per_sec: 0,
            ops_per_sec: 0,
        }
    }

    /// Overrides the WFQ weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Overrides the quotas (0 = unlimited).
    #[must_use]
    pub fn with_quota(mut self, bytes_per_sec: u64, ops_per_sec: u64) -> Self {
        self.bytes_per_sec = bytes_per_sec;
        self.ops_per_sec = ops_per_sec;
        self
    }
}

/// Conservation ledger of one [`TokenBucket`]: `granted` must equal
/// `consumed + expired + residual` at every instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketLedger {
    /// Tokens ever made available: the initial burst allowance plus
    /// every token minted by refill.
    pub granted: u64,
    /// Tokens handed to admitted requests.
    pub consumed: u64,
    /// Minted tokens that found the bucket full and were discarded.
    pub expired: u64,
    /// Tokens currently sitting in the bucket.
    pub residual: u64,
    /// Whether the bucket actually meters (false for rate 0 =
    /// unlimited, whose counters never move past the initial burst).
    pub limited: bool,
}

impl BucketLedger {
    /// Whether the ledger balances.
    pub fn balanced(&self) -> bool {
        self.granted == self.consumed + self.expired + self.residual
    }
}

/// A deterministic token bucket on the simulated clock.
///
/// Refill is integer-exact: the accumulator carries `rate × elapsed`
/// in token-picoseconds and mints a whole token per `10^12` accumulated,
/// so two runs that present the same clock values always admit the same
/// request sequence. A zero rate means *unlimited* — every take
/// succeeds and the ledger stays trivially balanced.
///
/// # Example
///
/// ```
/// use nvdimmc_core::qos::TokenBucket;
/// use nvdimmc_sim::SimTime;
///
/// // 1000 tokens/s, burst of 2.
/// let mut b = TokenBucket::new(1000, 2);
/// assert!(b.try_take(SimTime::ZERO, 2).is_ok());
/// // Bucket empty: the denial hints exactly when one token exists.
/// let wait = b.try_take(SimTime::ZERO, 1).unwrap_err();
/// assert_eq!(wait.as_ps(), 1_000_000_000); // 1 ms at 1000/s
/// assert!(b.try_take(SimTime::ZERO + wait, 1).is_ok());
/// assert!(b.ledger().balanced());
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: u64,
    capacity: u64,
    tokens: u64,
    /// Sub-token refill remainder, in token-picoseconds.
    acc: u128,
    last_refill: SimTime,
    granted: u64,
    consumed: u64,
    expired: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec`, holding at most `capacity`
    /// tokens, starting full (the burst allowance). `rate_per_sec == 0`
    /// disables the bucket (every take succeeds).
    pub fn new(rate_per_sec: u64, capacity: u64) -> Self {
        let capacity = capacity.max(1);
        TokenBucket {
            rate_per_sec,
            capacity,
            tokens: capacity,
            acc: 0,
            last_refill: SimTime::ZERO,
            granted: capacity,
            consumed: 0,
            expired: 0,
        }
    }

    /// Whether the bucket enforces anything.
    pub fn is_unlimited(&self) -> bool {
        self.rate_per_sec == 0
    }

    /// Mints tokens for the clock advance since the last refill.
    /// A rewound clock (a shard lagging the global max) mints nothing —
    /// refill is monotone, so admission stays deterministic.
    pub fn refill(&mut self, now: SimTime) {
        if self.rate_per_sec == 0 || now <= self.last_refill {
            return;
        }
        let elapsed = now.since(self.last_refill);
        self.last_refill = now;
        self.acc += u128::from(self.rate_per_sec) * u128::from(elapsed.as_ps());
        let minted64 = u64::try_from(self.acc / PS_PER_SEC).unwrap_or(u64::MAX);
        self.acc %= PS_PER_SEC;
        self.granted = self.granted.saturating_add(minted64);
        let credit = minted64.min(self.capacity - self.tokens);
        self.tokens += credit;
        self.expired = self.expired.saturating_add(minted64 - credit);
    }

    /// Takes `n` tokens at `now`, or returns how long to wait until the
    /// deficit will have refilled.
    ///
    /// # Errors
    ///
    /// The retry-after hint when the bucket lacks `n` tokens.
    pub fn try_take(&mut self, now: SimTime, n: u64) -> Result<(), SimDuration> {
        if self.rate_per_sec == 0 {
            return Ok(());
        }
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            self.consumed += n;
            return Ok(());
        }
        // How long until `deficit` whole tokens exist, given the refill
        // remainder already accumulated: ceil((deficit*PS - acc) / rate).
        let deficit = u128::from(n.min(self.capacity) - self.tokens);
        let need = (deficit * PS_PER_SEC).saturating_sub(self.acc);
        let wait_ps = need.div_ceil(u128::from(self.rate_per_sec));
        Err(SimDuration::from_ps(
            u64::try_from(wait_ps).unwrap_or(u64::MAX).max(1),
        ))
    }

    /// Peeks whether `n` tokens are available at `now` without taking
    /// them (refill still happens — refill is monotone bookkeeping).
    pub fn can_take(&mut self, now: SimTime, n: u64) -> Result<(), SimDuration> {
        if self.rate_per_sec == 0 {
            return Ok(());
        }
        self.refill(now);
        if self.tokens >= n {
            return Ok(());
        }
        let deficit = u128::from(n.min(self.capacity) - self.tokens);
        let need = (deficit * PS_PER_SEC).saturating_sub(self.acc);
        let wait_ps = need.div_ceil(u128::from(self.rate_per_sec));
        Err(SimDuration::from_ps(
            u64::try_from(wait_ps).unwrap_or(u64::MAX).max(1),
        ))
    }

    /// Tokens currently available.
    pub fn available(&self) -> u64 {
        self.tokens
    }

    /// The conservation ledger.
    pub fn ledger(&self) -> BucketLedger {
        BucketLedger {
            granted: self.granted,
            consumed: self.consumed,
            expired: self.expired,
            residual: self.tokens,
            limited: self.rate_per_sec != 0,
        }
    }
}

/// Per-tenant request conservation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Requests presented to [`QosEngine::admit`].
    pub submitted: u64,
    /// Requests refused by a quota bucket.
    pub throttled: u64,
    /// Requests past admission (`submitted = throttled + admitted`).
    pub admitted: u64,
    /// Admitted requests that completed successfully.
    pub completed: u64,
    /// Admitted requests that failed with a device error.
    pub failed: u64,
    /// Admitted requests shed by backpressure (ring full, shard
    /// rebuilding) and returned to the issuer.
    pub shed: u64,
}

impl TenantStats {
    /// Admitted requests not yet accounted as completed/failed/shed.
    pub fn inflight(&self) -> u64 {
        self.admitted
            .saturating_sub(self.completed + self.failed + self.shed)
    }
}

/// One tenant's audited view, extracted by [`QosEngine::snapshot`].
#[derive(Debug, Clone, Copy)]
pub struct TenantSnapshot {
    /// Tenant identity.
    pub id: TenantId,
    /// SLO class from the spec.
    pub slo: SloClass,
    /// Request conservation counters.
    pub stats: TenantStats,
    /// Bytes-bucket ledger.
    pub bytes: BucketLedger,
    /// Ops-bucket ledger.
    pub ops: BucketLedger,
}

/// Everything `check::qos` needs: one [`TenantSnapshot`] per tenant.
#[derive(Debug, Clone, Default)]
pub struct QosSnapshot {
    /// Per-tenant audited state, in registration order.
    pub tenants: Vec<TenantSnapshot>,
}

struct TenantState {
    spec: TenantSpec,
    bytes: TokenBucket,
    ops: TokenBucket,
    stats: TenantStats,
}

/// The per-tenant admission controller: token buckets plus the request
/// conservation ledger.
///
/// Quota admission is all-or-nothing across the two buckets: both are
/// checked first and only then both debited, so a denial never leaks
/// half a request's tokens.
pub struct QosEngine {
    tenants: Vec<TenantState>,
}

impl fmt::Debug for QosEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QosEngine")
            .field("tenants", &self.tenants.len())
            .finish()
    }
}

impl QosEngine {
    /// An engine over `specs`. Burst capacity is 5 ms worth of refill
    /// (bounded to at least one op / one page of bytes), so a quota
    /// bounds sustained rate without granting a free second of burst.
    pub fn new(specs: &[TenantSpec]) -> Self {
        QosEngine {
            tenants: specs
                .iter()
                .map(|&spec| TenantState {
                    spec,
                    bytes: TokenBucket::new(
                        spec.bytes_per_sec,
                        (spec.bytes_per_sec / 200).max(4096),
                    ),
                    ops: TokenBucket::new(spec.ops_per_sec, (spec.ops_per_sec / 200).max(1)),
                    stats: TenantStats::default(),
                })
                .collect(),
        }
    }

    /// The registered specs, in registration order.
    pub fn specs(&self) -> Vec<TenantSpec> {
        self.tenants.iter().map(|t| t.spec).collect()
    }

    fn state_mut(&mut self, id: TenantId) -> Result<&mut TenantState, CoreError> {
        self.tenants
            .iter_mut()
            .find(|t| t.spec.id == id)
            .ok_or_else(|| CoreError::Config(format!("unknown tenant {id}")))
    }

    /// Admits one `bytes`-byte operation for `id` at `now`, debiting
    /// both quota buckets, or refuses it with a typed
    /// [`CoreError::Throttled`] carrying the earliest instant the quota
    /// will cover it.
    ///
    /// # Errors
    ///
    /// `Throttled` on quota exhaustion; `Config` for an unknown tenant.
    pub fn admit(&mut self, id: TenantId, bytes: u64, now: SimTime) -> Result<(), CoreError> {
        let t = self.state_mut(id)?;
        t.stats.submitted += 1;
        // All-or-nothing: peek both buckets, then debit both.
        let verdict = t
            .ops
            .can_take(now, 1)
            .and(t.bytes.can_take(now, bytes))
            .err();
        if let Some(wait) = verdict {
            t.stats.throttled += 1;
            return Err(CoreError::Throttled {
                tenant: id,
                retry_after: wait,
            });
        }
        // INVARIANT: both peeks succeeded and nothing refilled between —
        // the takes cannot fail.
        let _ = t.ops.try_take(now, 1);
        let _ = t.bytes.try_take(now, bytes);
        t.stats.admitted += 1;
        Ok(())
    }

    /// Records a successful completion for `id`.
    pub fn note_completed(&mut self, id: TenantId) {
        if let Ok(t) = self.state_mut(id) {
            t.stats.completed += 1;
        }
    }

    /// Records a device-error failure for `id`.
    pub fn note_failed(&mut self, id: TenantId) {
        if let Ok(t) = self.state_mut(id) {
            t.stats.failed += 1;
        }
    }

    /// Records a shed (backpressure bounce after admission) for `id`.
    pub fn note_shed(&mut self, id: TenantId) {
        if let Ok(t) = self.state_mut(id) {
            t.stats.shed += 1;
        }
    }

    /// One tenant's counters.
    pub fn stats(&self, id: TenantId) -> Option<TenantStats> {
        self.tenants
            .iter()
            .find(|t| t.spec.id == id)
            .map(|t| t.stats)
    }

    /// The audited snapshot for `check::qos`.
    pub fn snapshot(&self) -> QosSnapshot {
        QosSnapshot {
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantSnapshot {
                    id: t.spec.id,
                    slo: t.spec.slo,
                    stats: t.stats,
                    bytes: t.bytes.ledger(),
                    ops: t.ops.ledger(),
                })
                .collect(),
        }
    }
}

/// Weighted fair dequeue across tenants sharing a shard ring.
///
/// Start-time fair queueing over the drained batch: each request's
/// virtual finish tag is `max(tenant_vtime, shard_vclock) + cost /
/// weight` (cost = bytes, minimum one page so zero-length metadata ops
/// still advance), and the batch is stably sorted by `(tag, seq)`.
/// An idle tenant's virtual time is clamped up to the shard's virtual
/// clock, so a trickling tenant re-enters at the front instead of
/// inheriting an ancient lag; a flooding tenant's time races ahead and
/// its excess requests sort behind everyone else's. FIFO order within a
/// tenant is preserved (tags are monotone per tenant, ties break by
/// seq).
#[derive(Debug)]
pub struct WfqArbiter {
    /// Weight and cache tag per registered tenant.
    specs: Vec<(TenantId, u32, u8)>,
    /// `vtime[shard][tenant-index]` virtual time, token = byte/weight.
    vtime: Vec<Vec<u128>>,
    /// Per-shard virtual clock: the max finish tag ever issued.
    vclock: Vec<u128>,
}

impl WfqArbiter {
    /// An arbiter over `shards` shards for `specs` tenants. Requests
    /// from unregistered tenants (e.g. [`TenantId::HOST`] when absent)
    /// get weight 1 and priority 0.
    pub fn new(shards: usize, specs: &[TenantSpec]) -> Self {
        let specs: Vec<(TenantId, u32, u8)> = specs
            .iter()
            .map(|s| (s.id, s.weight.max(1), s.priority.cache_tag()))
            .collect();
        WfqArbiter {
            vtime: vec![vec![0; specs.len() + 1]; shards],
            vclock: vec![0; shards],
            specs,
        }
    }

    fn tenant_index(&self, id: TenantId) -> usize {
        self.specs
            .iter()
            .position(|&(t, _, _)| t == id)
            // Unregistered tenants share the last (default) slot.
            .unwrap_or(self.specs.len())
    }

    fn weight(&self, idx: usize) -> u128 {
        u128::from(self.specs.get(idx).map_or(1, |&(_, w, _)| w))
    }

    /// The cache fill tag for `id` (0 for unregistered tenants).
    pub fn fill_priority(&self, id: TenantId) -> u8 {
        self.specs
            .iter()
            .find(|&&(t, _, _)| t == id)
            .map_or(0, |&(_, _, p)| p)
    }

    /// Reorders one shard's drained FIFO batch into weighted-fair
    /// order. A batch whose requests all belong to one tenant passes
    /// through untouched (single-tenant runs keep pre-QoS behaviour
    /// bit-identical).
    pub fn order(&mut self, shard: usize, batch: &mut Vec<ShardRequest>) {
        if batch.len() < 2 {
            if let Some(req) = batch.first() {
                self.account(shard, req.tenant, req.len);
            }
            return;
        }
        let first = batch[0].tenant;
        if batch.iter().all(|r| r.tenant == first) {
            for req in batch.iter() {
                self.account(shard, req.tenant, req.len);
            }
            return;
        }
        // Clamp idle tenants up to the shard's virtual clock before
        // tagging, so lag never accumulates across batches.
        let vclock = self.vclock[shard];
        for r in batch.iter() {
            let ti = self.tenant_index(r.tenant);
            let v = &mut self.vtime[shard][ti];
            *v = (*v).max(vclock);
        }
        let mut tagged: Vec<(u128, u64, ShardRequest)> = std::mem::take(batch)
            .into_iter()
            .map(|req| {
                let tag = self.account(shard, req.tenant, req.len);
                (tag, req.seq, req)
            })
            .collect();
        tagged.sort_by_key(|a| (a.0, a.1));
        *batch = tagged.into_iter().map(|(_, _, req)| req).collect();
    }

    /// Advances `tenant`'s virtual time for a `len`-byte request on
    /// `shard`; returns the finish tag.
    fn account(&mut self, shard: usize, tenant: TenantId, len: u64) -> u128 {
        let ti = self.tenant_index(tenant);
        let w = self.weight(ti);
        let cost = u128::from(len.max(1));
        // The idle-tenant clamp happens once per batch in `order()`;
        // clamping here too would re-anchor every tag at the running max
        // and collapse the ordering back to FIFO.
        let start = self.vtime[shard][ti];
        let finish = start + cost.div_ceil(w);
        self.vtime[shard][ti] = finish;
        self.vclock[shard] = self.vclock[shard].max(finish);
        finish
    }
}

/// Maintenance tuning.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// Gap between one shard's maintenance slots.
    pub interval: SimDuration,
    /// Resident slots CRC-verified per scrub step.
    pub scrub_slots_per_step: u64,
    /// Whether a maintenance slot may run a repair on a degraded shard.
    pub repair: bool,
    /// Whether a maintenance slot runs FTL housekeeping (bounded
    /// proactive garbage collection).
    pub ftl_housekeeping: bool,
}

impl Default for MaintenanceConfig {
    /// Scrub 4 slots per step every 50 µs, repair and housekeeping on.
    fn default() -> Self {
        MaintenanceConfig {
            interval: SimDuration::from_us(50.0),
            scrub_slots_per_step: 4,
            repair: true,
            ftl_housekeeping: true,
        }
    }
}

/// Maintenance counters, per shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// Maintenance slots that ran to completion.
    pub steps: u64,
    /// Slots deferred because foreground work was queued.
    pub preemptions: u64,
    /// Cache slots CRC-verified by background scrub.
    pub scrub_slots: u64,
    /// Repairs attempted on degraded shards.
    pub repairs_attempted: u64,
    /// Repairs that re-admitted the shard.
    pub repairs_completed: u64,
    /// FTL housekeeping invocations that moved at least one page.
    pub ftl_hk_runs: u64,
    /// Pages relocated by FTL housekeeping.
    pub ftl_hk_pages: u64,
}

impl MaintStats {
    /// Accumulates another shard's counters.
    pub fn merge(&mut self, other: &MaintStats) {
        self.steps += other.steps;
        self.preemptions += other.preemptions;
        self.scrub_slots += other.scrub_slots;
        self.repairs_attempted += other.repairs_attempted;
        self.repairs_completed += other.repairs_completed;
        self.ftl_hk_runs += other.ftl_hk_runs;
        self.ftl_hk_pages += other.ftl_hk_pages;
    }
}

/// Self-managing maintenance: per-shard scrub/repair/housekeeping slots
/// scheduled through a [`ShardCalendar`] and run only while the shard's
/// foreground queue is empty.
///
/// The driver calls [`MaintenanceScheduler::run_due`] between executor
/// dispatch rounds with each shard's current queue depth: every due
/// slot either runs one maintenance step (queue empty) or is preempted
/// and pushed one interval out (queue non-empty). Degraded shards get a
/// repair attempt; healthy shards get a CRC scrub step plus bounded FTL
/// garbage collection. All work happens on the shard's own clock inside
/// the same extra-tRFC window machinery as foreground CP traffic, so
/// the schedule — like everything else — is bit-identical across
/// reruns.
#[derive(Debug)]
pub struct MaintenanceScheduler {
    cfg: MaintenanceConfig,
    cal: ShardCalendar,
    stats: Vec<MaintStats>,
}

impl MaintenanceScheduler {
    /// A scheduler over `shards` shards with every shard's first slot
    /// due one interval in.
    pub fn new(shards: usize, cfg: MaintenanceConfig) -> Self {
        let mut cal = ShardCalendar::new(shards);
        for s in 0..shards {
            cal.set(s, SimTime::ZERO + cfg.interval);
        }
        MaintenanceScheduler {
            cfg,
            cal,
            stats: vec![MaintStats::default(); shards],
        }
    }

    /// The active configuration.
    pub fn config(&self) -> MaintenanceConfig {
        self.cfg
    }

    /// Per-shard counters.
    pub fn stats(&self, shard: usize) -> MaintStats {
        self.stats[shard]
    }

    /// All shards' counters summed.
    pub fn total_stats(&self) -> MaintStats {
        let mut t = MaintStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }

    /// Runs every maintenance slot due at or before `now`.
    /// `queue_depth(shard)` reports the shard's pending foreground work;
    /// a non-empty queue preempts the slot (counted, rescheduled one
    /// interval out). Returns the number of steps that actually ran.
    pub fn run_due(
        &mut self,
        shards: &mut [ChannelShard],
        now: SimTime,
        mut queue_depth: impl FnMut(usize) -> usize,
    ) -> usize {
        let mut ran = 0;
        while let Some((due, shard)) = self.cal.pop_due(now) {
            if queue_depth(shard) > 0 {
                // Foreground pressure rose: yield the window.
                self.stats[shard].preemptions += 1;
                self.cal.set(shard, due + self.cfg.interval);
                continue;
            }
            self.step(&mut shards[shard], shard);
            ran += 1;
            // Next slot one interval after the work finished on the
            // shard's own clock (maintenance advanced it).
            let next = shards[shard].now().max(due) + self.cfg.interval;
            self.cal.set(shard, next);
        }
        ran
    }

    /// One maintenance step on one shard: repair when degraded,
    /// scrub + FTL housekeeping when healthy.
    fn step(&mut self, shard: &mut ChannelShard, idx: usize) {
        let st = &mut self.stats[idx];
        st.steps += 1;
        if shard.is_degraded() {
            if self.cfg.repair {
                st.repairs_attempted += 1;
                if shard.repair().is_ok() {
                    st.repairs_completed += 1;
                }
            }
            return;
        }
        st.scrub_slots += shard.scrub_step(self.cfg.scrub_slots_per_step);
        if self.cfg.ftl_housekeeping {
            let moved = shard.ftl_housekeeping();
            if moved > 0 {
                st.ftl_hk_runs += 1;
                st.ftl_hk_pages += moved;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::ReqKind;

    fn req(seq: u64, tenant: TenantId, len: u64) -> ShardRequest {
        ShardRequest {
            seq,
            tenant,
            thread: 0,
            kind: ReqKind::Read,
            local_offset: seq * len,
            len,
            not_before: SimTime::ZERO,
            data: Vec::new(),
        }
    }

    #[test]
    fn bucket_refill_is_integer_exact() {
        // 3 tokens/s: one token every 333_333_333_334 ps (ceil), with no
        // drift over many refills.
        let mut b = TokenBucket::new(3, 1);
        assert!(b.try_take(SimTime::ZERO, 1).is_ok());
        let mut now = SimTime::ZERO;
        for _ in 0..30 {
            let wait = b.try_take(now, 1).unwrap_err();
            now += wait;
            assert!(b.try_take(now, 1).is_ok(), "hint must be sufficient");
        }
        // 31 takes in just over 10 s at 3/s: the clock stayed exact.
        assert!(now.as_secs_f64() > 9.99 && now.as_secs_f64() < 10.01);
        assert!(b.ledger().balanced());
    }

    #[test]
    fn bucket_ledger_accounts_expiry() {
        let mut b = TokenBucket::new(10, 5);
        // Long idle: refill overflows the capacity, excess must expire.
        b.refill(SimTime::from_us(2_000_000)); // 2 s → 20 minted, 0 fit
        let l = b.ledger();
        assert_eq!(l.residual, 5);
        assert_eq!(l.expired, 20);
        assert!(l.balanced(), "{l:?}");
    }

    #[test]
    fn unlimited_bucket_never_denies() {
        let mut b = TokenBucket::new(0, 1);
        for i in 0..1000 {
            assert!(b.try_take(SimTime::from_ns(i), u64::MAX).is_ok());
        }
        assert!(b.ledger().balanced());
    }

    #[test]
    fn admit_is_all_or_nothing_across_buckets() {
        // Ops bucket allows, bytes bucket denies: nothing is debited.
        let specs = [TenantSpec::foreground(TenantId(1)).with_quota(4096, 100)];
        let mut q = QosEngine::new(&specs);
        assert!(q.admit(TenantId(1), 4096, SimTime::ZERO).is_ok());
        let err = q.admit(TenantId(1), 4096, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, CoreError::Throttled { tenant, .. } if tenant == TenantId(1)));
        let snap = q.snapshot();
        let t = &snap.tenants[0];
        assert_eq!(
            (t.stats.submitted, t.stats.admitted, t.stats.throttled),
            (2, 1, 1)
        );
        // The denied op consumed nothing from the ops bucket.
        assert!(t.ops.balanced() && t.bytes.balanced());
        assert_eq!(t.ops.consumed, 1);
    }

    #[test]
    fn wfq_interleaves_flood_and_trickle() {
        let specs = [
            TenantSpec::background(TenantId(1)),
            TenantSpec::foreground(TenantId(2)),
        ];
        let mut arb = WfqArbiter::new(1, &specs);
        // Tenant 1 floods 8 requests, tenant 2 trickles 1, arriving last.
        let mut batch: Vec<ShardRequest> = (0..8).map(|i| req(i, TenantId(1), 4096)).collect();
        batch.push(req(8, TenantId(2), 4096));
        arb.order(0, &mut batch);
        let pos = batch.iter().position(|r| r.tenant == TenantId(2)).unwrap();
        assert!(pos <= 1, "trickle tenant pushed to position {pos}");
        // FIFO within the flooding tenant is preserved.
        let flood: Vec<u64> = batch
            .iter()
            .filter(|r| r.tenant == TenantId(1))
            .map(|r| r.seq)
            .collect();
        assert_eq!(flood, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn wfq_weights_shift_the_share() {
        let specs = [
            TenantSpec::background(TenantId(1)).with_weight(1),
            TenantSpec::foreground(TenantId(2)).with_weight(3),
        ];
        let mut arb = WfqArbiter::new(1, &specs);
        let mut batch: Vec<ShardRequest> = Vec::new();
        for i in 0..4 {
            batch.push(req(i, TenantId(1), 4096));
        }
        for i in 4..16 {
            batch.push(req(i, TenantId(2), 4096));
        }
        arb.order(0, &mut batch);
        // Weight 3 tenant gets ~3 of the first 4 positions.
        let head: Vec<TenantId> = batch.iter().take(4).map(|r| r.tenant).collect();
        let w2 = head.iter().filter(|&&t| t == TenantId(2)).count();
        assert!(w2 >= 2, "weighted tenant underserved in {head:?}");
    }

    #[test]
    fn wfq_single_tenant_batch_passes_through() {
        let specs = [TenantSpec::foreground(TenantId(1))];
        let mut arb = WfqArbiter::new(1, &specs);
        let mut batch: Vec<ShardRequest> = (0..5).map(|i| req(i, TenantId(1), 64)).collect();
        let before: Vec<u64> = batch.iter().map(|r| r.seq).collect();
        arb.order(0, &mut batch);
        let after: Vec<u64> = batch.iter().map(|r| r.seq).collect();
        assert_eq!(before, after);
    }
}
