//! The FPGA side of NVDIMM-C: CP polling and window-serialized DMA.
//!
//! Every behaviour here maps to paper §IV-A/§IV-C:
//!
//! - the FPGA acts on the DRAM **only inside extra-tRFC windows** reported
//!   by the refresh detector;
//! - it polls the CP command word each (serviced) window, decodes the
//!   phase/opcode bit-fields, and walks a per-command state machine: one
//!   window-consuming action per window;
//! - between actions, the PoC's software FSM (C/C++ on the Cortex-A53)
//!   needs [`crate::perf::PerfParams::fsm_step_delay`] of processing time,
//!   which is why the measured Uncached latency is ~8.9 tREFI instead of
//!   the 6-window protocol minimum (§VII-B2/§VII-C);
//! - all DMA is issued as real DDR4 commands through the shared bus, so
//!   any scheduling bug surfaces as a [`nvdimmc_ddr::BusViolation`].
//!
//! One fidelity note: the real FPGA polls the CP area in *every* window.
//! The simulator skips polls while no host transaction is outstanding —
//! an idle poll reads an unchanged phase and has no observable effect —
//! so batched refresh catch-up during FPGA-idle periods is behaviourally
//! identical.

use crate::cp::{CpAck, CpCommand, CpOpcode};
use crate::error::CoreError;
use crate::layout::{Layout, SLOT_BYTES};
use nvdimmc_ddr::{BusMaster, Command, SharedBus};
use nvdimmc_nand::Nvmc;
use nvdimmc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// FPGA counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaStats {
    /// Windows offered by the detector.
    pub windows_seen: u64,
    /// Windows in which the FPGA performed a bus action.
    pub windows_used: u64,
    /// Windows skipped because the FSM was still processing.
    pub windows_skipped_busy: u64,
    /// Cachefill commands completed.
    pub cachefills: u64,
    /// Writeback commands completed.
    pub writebacks: u64,
    /// Merged writeback+cachefill commands completed.
    pub merged_ops: u64,
    /// Bytes DMAed between DRAM and the controller.
    pub dma_bytes: u64,
}

impl FpgaStats {
    /// Accumulates another FPGA's counters into this one (per-shard stats
    /// aggregation in multi-channel systems).
    pub fn merge(&mut self, other: &FpgaStats) {
        self.windows_seen += other.windows_seen;
        self.windows_used += other.windows_used;
        self.windows_skipped_busy += other.windows_skipped_busy;
        self.cachefills += other.cachefills;
        self.writebacks += other.writebacks;
        self.merged_ops += other.merged_ops;
        self.dma_bytes += other.dma_bytes;
    }
}

#[derive(Debug)]
enum FpgaState {
    /// No command in flight; poll the CP area.
    Idle,
    /// Writeback: read the victim slot out of DRAM (needs a window).
    WbRead { cmd: CpCommand },
    /// Cachefill: wait for the NAND read, then DMA into the slot.
    CfDmaWrite { cmd: CpCommand, data: Vec<u8> },
    /// Merged op: victim read done and programmed; fill data ready to DMA.
    MergedDmaWrite { cmd: CpCommand, data: Vec<u8> },
    /// Write the acknowledgement word (needs a window).
    Ack { phase: u8, ok: bool, done: CpOpcode },
}

/// The FPGA engine. Owns no bus or NAND — both are passed per window so
/// the [`crate::System`] stays the single owner.
#[derive(Debug)]
pub struct Fpga {
    step_delay: SimDuration,
    /// Data-byte budget per window (PoC: 4 KB).
    window_xfer_bytes: u64,
    state: FpgaState,
    /// Earliest instant the FSM can take its next window action.
    ready_at: SimTime,
    last_phase: Option<u8>,
    /// Fill data read ahead for a merged writeback+cachefill command.
    pending_fill: Option<Vec<u8>>,
    stats: FpgaStats,
}

impl Fpga {
    /// Creates an idle FPGA with the given FSM step delay and per-window
    /// transfer budget.
    pub fn new(step_delay: SimDuration, window_xfer_bytes: u64) -> Self {
        Fpga {
            step_delay,
            window_xfer_bytes: window_xfer_bytes.max(SLOT_BYTES),
            state: FpgaState::Idle,
            ready_at: SimTime::ZERO,
            last_phase: None,
            pending_fill: None,
            stats: FpgaStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> FpgaStats {
        self.stats
    }

    /// Whether a command is currently being processed.
    pub fn is_busy(&self) -> bool {
        !matches!(self.state, FpgaState::Idle)
    }

    /// Services one detected refresh window.
    ///
    /// Performs protocol steps until the window's byte budget
    /// (`window_xfer_bytes`, PoC: 4 KB) or time budget runs out. With the
    /// PoC's 7 µs FSM step delay at most one action fits per window; the
    /// §VII-C ASIC projection (sub-µs steps, larger budget, longer tRFC)
    /// chains several.
    ///
    /// # Errors
    ///
    /// Propagates bus violations (a violation here means the window
    /// scheduler is broken — tests assert it never happens) and NAND
    /// errors.
    pub fn on_refresh(
        &mut self,
        ref_at: SimTime,
        bus: &mut SharedBus,
        nvmc: &mut Nvmc,
        layout: &Layout,
    ) -> Result<(), CoreError> {
        self.stats.windows_seen += 1;
        let mut budget = self.window_xfer_bytes;
        let mut used = false;
        loop {
            let consumed = self.step(ref_at, bus, nvmc, layout)?;
            if consumed == 0 {
                break;
            }
            used = true;
            if consumed >= budget {
                break;
            }
            budget -= consumed;
        }
        if used {
            self.stats.windows_used += 1;
        } else if self.is_busy() {
            self.stats.windows_skipped_busy += 1;
        }
        Ok(())
    }

    /// One protocol step inside the window; returns data bytes consumed
    /// (0 = nothing could run).
    fn step(
        &mut self,
        ref_at: SimTime,
        bus: &mut SharedBus,
        nvmc: &mut Nvmc,
        layout: &Layout,
    ) -> Result<u64, CoreError> {
        let (opens, closes) = {
            let t = bus.device().timing();
            (ref_at + t.trfc_base, ref_at + t.trfc_total)
        };
        let start = self.ready_at.max(opens);
        // Enough budget for the largest single action (a 4 KB page DMA)?
        let page_dma = Self::page_dma_duration(bus);
        let poll_needs = Self::poll_duration(bus);
        let budget_for = |need: SimDuration| start + need <= closes;

        match std::mem::replace(&mut self.state, FpgaState::Idle) {
            FpgaState::Idle => {
                if !budget_for(poll_needs) {
                    self.stats.windows_skipped_busy += 1;
                    return Ok(0);
                }
                let (bytes, end) = self.dma_read(bus, layout.cp_command(), 128, start)?;
                let word: [u8; 16] = bytes[..16].try_into().expect("16-byte CP word");
                match CpCommand::decode(&word) {
                    Some(cmd) if Some(cmd.phase) != self.last_phase => {
                        self.last_phase = Some(cmd.phase);
                        self.ready_at = end + self.step_delay;
                        self.state = match cmd.opcode {
                            CpOpcode::Cachefill => {
                                // Start the NAND read as soon as decode
                                // finishes; the DMA waits on its data.
                                let (data, ready) = nvmc.read_page(cmd.nand_page, self.ready_at)?;
                                self.ready_at = ready + self.step_delay;
                                FpgaState::CfDmaWrite { cmd, data }
                            }
                            CpOpcode::Writeback => FpgaState::WbRead { cmd },
                            CpOpcode::WritebackCachefill => {
                                // The fill read overlaps the victim
                                // read-out: kick it off now and stash it.
                                let (data, _ready) =
                                    nvmc.read_page(cmd.nand_page, self.ready_at)?;
                                self.pending_fill = Some(data);
                                FpgaState::WbRead { cmd }
                            }
                        };
                        Ok(128)
                    }
                    // Polled, nothing new: the idle FPGA is done with this
                    // window.
                    _ => Ok(0),
                }
            }
            FpgaState::WbRead { cmd } => {
                if !budget_for(page_dma) {
                    self.state = FpgaState::WbRead { cmd };
                    return Ok(0);
                }
                let slot_addr = layout.slot_addr(cmd.dram_slot);
                let (victim, end) = self.dma_read(bus, slot_addr, SLOT_BYTES, start)?;
                let wb_page = match cmd.opcode {
                    CpOpcode::WritebackCachefill => cmd.wb_nand_page.ok_or_else(|| {
                        CoreError::Protocol("merged command without wb page".into())
                    })?,
                    _ => cmd.nand_page,
                };
                let ack_at = nvmc.write_page(wb_page, &victim, end + self.step_delay)?;
                self.ready_at = ack_at + self.step_delay;
                self.state = match (cmd.opcode, self.pending_fill.take()) {
                    (CpOpcode::WritebackCachefill, Some(data)) => {
                        FpgaState::MergedDmaWrite { cmd, data }
                    }
                    _ => FpgaState::Ack {
                        phase: cmd.phase,
                        ok: true,
                        done: cmd.opcode,
                    },
                };
                Ok(SLOT_BYTES)
            }
            FpgaState::CfDmaWrite { cmd, data } | FpgaState::MergedDmaWrite { cmd, data } => {
                let merged = matches!(cmd.opcode, CpOpcode::WritebackCachefill);
                if !budget_for(page_dma) {
                    self.state = if merged {
                        FpgaState::MergedDmaWrite { cmd, data }
                    } else {
                        FpgaState::CfDmaWrite { cmd, data }
                    };
                    return Ok(0);
                }
                let slot_addr = layout.slot_addr(cmd.dram_slot);
                let end = self.dma_write(bus, slot_addr, &data, start)?;
                self.ready_at = end + self.step_delay;
                self.state = FpgaState::Ack {
                    phase: cmd.phase,
                    ok: true,
                    done: cmd.opcode,
                };
                Ok(SLOT_BYTES)
            }
            FpgaState::Ack { phase, ok, done } => {
                if !budget_for(poll_needs) {
                    self.state = FpgaState::Ack { phase, ok, done };
                    return Ok(0);
                }
                let word = CpAck { phase, ok }.encode();
                let mut line = [0u8; 64];
                line[..8].copy_from_slice(&word);
                let end = self.dma_write(bus, layout.cp_ack(), &line, start)?;
                self.ready_at = end + self.step_delay;
                match done {
                    CpOpcode::Cachefill => self.stats.cachefills += 1,
                    CpOpcode::Writeback => self.stats.writebacks += 1,
                    CpOpcode::WritebackCachefill => self.stats.merged_ops += 1,
                }
                self.state = FpgaState::Idle;
                Ok(64)
            }
        }
    }

    /// Conservative duration of a full-page DMA inside a window.
    fn page_dma_duration(bus: &SharedBus) -> SimDuration {
        let t = bus.device().timing();
        t.trcd + t.tccd_l * (SLOT_BYTES / 64) + t.tcl + t.burst_time() + t.trtp + t.trp
    }

    /// Conservative duration of a CP poll (two cachelines).
    fn poll_duration(bus: &SharedBus) -> SimDuration {
        let t = bus.device().timing();
        t.trcd + t.tccd_l * 2 + t.tcl + t.burst_time() + t.trtp + t.trp
    }

    /// DMA-reads `len` bytes at `addr` with real DDR4 commands: ACT,
    /// pipelined RDs, PRE. Returns the data and the completion instant.
    fn dma_read(
        &mut self,
        bus: &mut SharedBus,
        addr: u64,
        len: u64,
        start: SimTime,
    ) -> Result<(Vec<u8>, SimTime), CoreError> {
        assert!(
            addr.is_multiple_of(64) && len.is_multiple_of(64),
            "DMA is cacheline-granular"
        );
        let dec = bus
            .device()
            .mapping()
            .decode(addr)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let t = *bus.device().timing();
        let rw_at = bus.issue(
            BusMaster::Nvmc,
            start,
            Command::Activate {
                bank: dec.bank,
                row: dec.row,
            },
        )?;
        let lines = len / 64;
        let mut out = Vec::with_capacity(len as usize);
        let mut last_issue = rw_at;
        let mut last_end = rw_at;
        for i in 0..lines {
            let at = rw_at + t.tccd_l * i;
            last_end = bus.issue(
                BusMaster::Nvmc,
                at,
                Command::Read {
                    bank: dec.bank,
                    col: dec.col + i as u16,
                    auto_precharge: false,
                },
            )?;
            last_issue = at;
            out.extend_from_slice(&bus.device_mut().burst_read(dec.bank, dec.col + i as u16));
        }
        // Leave the bank precharged before the window closes (the bus
        // enforces this invariant when the host resumes); tRAS and tRTP
        // both gate the precharge.
        let act_at = rw_at - t.trcd;
        let pre_at = (act_at + t.tras).max(last_issue + t.trtp.max(t.tccd_l));
        bus.issue(
            BusMaster::Nvmc,
            pre_at,
            Command::Precharge { bank: dec.bank },
        )?;
        self.stats.dma_bytes += len;
        Ok((out, last_end.max(pre_at + t.trp)))
    }

    /// DMA-writes `data` at `addr` with real DDR4 commands.
    fn dma_write(
        &mut self,
        bus: &mut SharedBus,
        addr: u64,
        data: &[u8],
        start: SimTime,
    ) -> Result<SimTime, CoreError> {
        assert!(
            addr.is_multiple_of(64) && data.len().is_multiple_of(64),
            "DMA is cacheline-granular"
        );
        let dec = bus
            .device()
            .mapping()
            .decode(addr)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let t = *bus.device().timing();
        let rw_at = bus.issue(
            BusMaster::Nvmc,
            start,
            Command::Activate {
                bank: dec.bank,
                row: dec.row,
            },
        )?;
        let lines = (data.len() / 64) as u64;
        let mut last_end = rw_at;
        let mut last_burst_end = rw_at;
        for i in 0..lines {
            let at = rw_at + t.tccd_l * i;
            last_burst_end = bus.issue(
                BusMaster::Nvmc,
                at,
                Command::Write {
                    bank: dec.bank,
                    col: dec.col + i as u16,
                    auto_precharge: false,
                },
            )?;
            let line: [u8; 64] = data[(i as usize) * 64..(i as usize + 1) * 64]
                .try_into()
                .expect("64-byte line");
            bus.device_mut()
                .burst_write(dec.bank, dec.col + i as u16, &line);
            last_end = at;
        }
        // Write recovery (and tRAS) before precharge.
        let act_at = rw_at - t.trcd;
        let pre_at = (act_at + t.tras).max(last_burst_end + t.twr);
        bus.issue(
            BusMaster::Nvmc,
            pre_at,
            Command::Precharge { bank: dec.bank },
        )?;
        let _ = last_end;
        self.stats.dma_bytes += data.len() as u64;
        Ok(pre_at + t.trp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::CpAck;
    use nvdimmc_ddr::{DramDevice, Imc, ImcConfig, SpeedBin, TimingParams};
    use nvdimmc_nand::NvmcConfig;
    use nvdimmc_sim::SimTime;

    struct Rig {
        bus: SharedBus,
        imc: Imc,
        nvmc: Nvmc,
        fpga: Fpga,
        layout: Layout,
        clock: SimTime,
    }

    fn rig(step_delay_us: f64, window_bytes: u64) -> Rig {
        let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let layout = Layout::new(0, 64);
        let stripe = 8 * 1024 * 16;
        let cap = Layout::required_bytes(64).div_ceil(stripe) * stripe;
        Rig {
            bus: SharedBus::new(DramDevice::new(timing, cap)),
            imc: Imc::new(ImcConfig::from_timing(&timing)),
            nvmc: Nvmc::new(NvmcConfig::small_for_tests()).expect("nvmc"),
            fpga: Fpga::new(SimDuration::from_us(step_delay_us), window_bytes),
            layout,
            clock: SimTime::ZERO,
        }
    }

    impl Rig {
        /// Issues one refresh and hands the window to the FPGA; returns
        /// the REF time.
        fn one_window(&mut self) -> SimTime {
            let due = self.imc.next_refresh_due();
            let t = self.clock.max(due);
            self.clock = self.imc.pump_refresh(&mut self.bus, t).expect("pump");
            let w = self.bus.window().expect("window open");
            self.fpga
                .on_refresh(w.ref_at, &mut self.bus, &mut self.nvmc, &self.layout)
                .expect("window service");
            w.ref_at
        }

        fn publish(&mut self, cmd: &CpCommand) {
            let mut line = [0u8; 64];
            line[..16].copy_from_slice(&cmd.encode());
            self.bus
                .device_mut()
                .poke(self.layout.cp_command(), &line)
                .expect("poke");
        }

        fn ack(&mut self) -> Option<CpAck> {
            let mut bytes = [0u8; 8];
            self.bus
                .device()
                .peek(self.layout.cp_ack(), &mut bytes)
                .expect("peek");
            CpAck::decode(&bytes)
        }

        fn run_until_ack(&mut self, phase: u8, max_windows: u32) -> u32 {
            for n in 1..=max_windows {
                self.one_window();
                if let Some(ack) = self.ack() {
                    if ack.phase == phase {
                        return n;
                    }
                }
            }
            panic!("no ack after {max_windows} windows");
        }
    }

    #[test]
    fn idle_polls_do_not_count_as_used_windows() {
        let mut r = rig(6.0, 4096);
        for _ in 0..5 {
            r.one_window();
        }
        let s = r.fpga.stats();
        assert_eq!(s.windows_seen, 5);
        assert_eq!(s.windows_used, 0, "nothing to do, nothing used");
        assert!(!r.fpga.is_busy());
    }

    #[test]
    fn cachefill_moves_nand_page_into_slot() {
        let mut r = rig(6.0, 4096);
        // Put a page on NAND.
        let data = vec![0xB7u8; 4096];
        r.nvmc
            .write_page(9, &data, SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 1,
            opcode: CpOpcode::Cachefill,
            dram_slot: 3,
            nand_page: 9,
            wb_nand_page: None,
        });
        let windows = r.run_until_ack(1, 64);
        // Paper §V-A: three windows minimum (poll, data, ack); the FSM
        // delay may skip a few.
        assert!(
            (3..=8).contains(&windows),
            "cachefill took {windows} windows"
        );
        let mut slot = vec![0u8; 4096];
        r.bus
            .device()
            .peek(r.layout.slot_addr(3), &mut slot)
            .expect("peek");
        assert_eq!(slot, data, "slot contents after cachefill");
        assert_eq!(r.fpga.stats().cachefills, 1);
    }

    #[test]
    fn writeback_moves_slot_into_nand() {
        let mut r = rig(6.0, 4096);
        let data = vec![0x4Eu8; 4096];
        r.bus
            .device_mut()
            .poke(r.layout.slot_addr(7), &data)
            .expect("poke");
        r.publish(&CpCommand {
            phase: 2,
            opcode: CpOpcode::Writeback,
            dram_slot: 7,
            nand_page: 21,
            wb_nand_page: None,
        });
        let windows = r.run_until_ack(2, 64);
        assert!(
            (3..=8).contains(&windows),
            "writeback took {windows} windows"
        );
        let (read_back, _) = r.nvmc.read_page(21, r.clock).expect("nand read");
        assert_eq!(read_back, data);
        assert_eq!(r.fpga.stats().writebacks, 1);
    }

    #[test]
    fn repeated_phase_is_ignored() {
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(1, &vec![1u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 5,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 1,
            wb_nand_page: None,
        });
        r.run_until_ack(5, 64);
        let fills = r.fpga.stats().cachefills;
        // Same phase still in the mailbox: more windows, no new command.
        for _ in 0..6 {
            r.one_window();
        }
        assert_eq!(
            r.fpga.stats().cachefills,
            fills,
            "phase replay executed twice"
        );
    }

    #[test]
    fn merged_command_faster_than_split_pair() {
        // Split: WB then CF as two transactions.
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(2, &vec![2u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.bus
            .device_mut()
            .poke(r.layout.slot_addr(0), &[9u8; 4096])
            .expect("poke");
        r.publish(&CpCommand {
            phase: 1,
            opcode: CpOpcode::Writeback,
            dram_slot: 0,
            nand_page: 30,
            wb_nand_page: None,
        });
        let wb = r.run_until_ack(1, 64);
        r.publish(&CpCommand {
            phase: 2,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 2,
            wb_nand_page: None,
        });
        let cf = r.run_until_ack(2, 64);
        let split_windows = wb + cf;

        // Merged: one transaction does both.
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(2, &vec![2u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.bus
            .device_mut()
            .poke(r.layout.slot_addr(0), &[9u8; 4096])
            .expect("poke");
        r.publish(&CpCommand {
            phase: 1,
            opcode: CpOpcode::WritebackCachefill,
            dram_slot: 0,
            nand_page: 2,
            wb_nand_page: Some(30),
        });
        let merged = r.run_until_ack(1, 64);
        assert!(
            merged < split_windows,
            "merged {merged} windows vs split {split_windows}"
        );
        // Both data movements happened.
        let (wb_data, _) = r.nvmc.read_page(30, r.clock).expect("nand");
        assert_eq!(wb_data, vec![9u8; 4096]);
        let mut slot = vec![0u8; 4096];
        r.bus
            .device()
            .peek(r.layout.slot_addr(0), &mut slot)
            .expect("peek");
        assert_eq!(slot, vec![2u8; 4096]);
        assert_eq!(r.fpga.stats().merged_ops, 1);
    }

    #[test]
    fn asic_fsm_uses_fewer_windows() {
        let run = |step_us: f64| {
            let mut r = rig(step_us, 4096);
            r.nvmc
                .write_page(4, &vec![4u8; 4096], SimTime::ZERO)
                .expect("nand write");
            r.publish(&CpCommand {
                phase: 1,
                opcode: CpOpcode::Cachefill,
                dram_slot: 1,
                nand_page: 4,
                wb_nand_page: None,
            });
            r.run_until_ack(1, 64)
        };
        let poc = run(6.0);
        let asic = run(0.2);
        assert!(asic <= poc, "ASIC {asic} vs PoC {poc} windows");
        assert!(asic <= 4, "ASIC cachefill took {asic} windows");
    }

    #[test]
    fn all_fpga_commands_stayed_inside_windows() {
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(11, &vec![5u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 3,
            opcode: CpOpcode::Cachefill,
            dram_slot: 2,
            nand_page: 11,
            wb_nand_page: None,
        });
        r.run_until_ack(3, 64);
        assert_eq!(r.bus.stats().violations_rejected, 0);
        assert!(r.bus.stats().nvmc_bytes >= 4096 + 64);
        assert!(r.bus.device().all_banks_idle(), "FPGA left a bank open");
    }
}
