//! The FPGA side of NVDIMM-C: CP polling and window-serialized DMA.
//!
//! Every behaviour here maps to paper §IV-A/§IV-C:
//!
//! - the FPGA acts on the DRAM **only inside extra-tRFC windows** reported
//!   by the refresh detector;
//! - it polls the CP command word each (serviced) window, decodes the
//!   phase/opcode bit-fields, and walks a per-command state machine: one
//!   window-consuming action per window;
//! - between actions, the PoC's software FSM (C/C++ on the Cortex-A53)
//!   needs [`crate::perf::PerfParams::fsm_step_delay`] of processing time,
//!   which is why the measured Uncached latency is ~8.9 tREFI instead of
//!   the 6-window protocol minimum (§VII-B2/§VII-C);
//! - all DMA is issued as real DDR4 commands through the shared bus, so
//!   any scheduling bug surfaces as a [`nvdimmc_ddr::BusViolation`].
//!
//! One fidelity note: the real FPGA polls the CP area in *every* window.
//! The simulator skips polls while no host transaction is outstanding —
//! an idle poll reads an unchanged phase and has no observable effect —
//! so batched refresh catch-up during FPGA-idle periods is behaviourally
//! identical.

use crate::cp::{
    CpCommand, CpOpcode, ACK_ERR_NAND, ACK_ERR_PROTOCOL, ACK_ERR_UNCORRECTABLE, ACK_OK,
};
use crate::error::CoreError;
use crate::layout::{Layout, SLOT_BYTES};
use crate::proto::{FpgaProto, PollVerdict};
use nvdimmc_ddr::{BankAddr, BusMaster, BusViolation, Command, SharedBus};
use nvdimmc_nand::{NandError, Nvmc};
use nvdimmc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// FPGA counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaStats {
    /// Windows offered by the detector.
    pub windows_seen: u64,
    /// Windows in which the FPGA performed a bus action.
    pub windows_used: u64,
    /// Windows skipped because the FSM was still processing.
    pub windows_skipped_busy: u64,
    /// Per-bank windows offered for a bank the FSM's next action does not
    /// target (demand-mismatched placement by the refresh planner).
    pub windows_wrong_bank: u64,
    /// Cachefill commands completed.
    pub cachefills: u64,
    /// Writeback commands completed.
    pub writebacks: u64,
    /// Merged writeback+cachefill commands completed.
    pub merged_ops: u64,
    /// Mailbox liveness probes acked (driver re-handshake traffic).
    pub probes: u64,
    /// Bytes DMAed between DRAM and the controller.
    pub dma_bytes: u64,
    /// Acks lost on the way out (injected mailbox fault).
    pub acks_dropped: u64,
    /// Acks written as garbage (injected mailbox fault).
    pub acks_corrupted: u64,
    /// Non-empty CP command words that failed to decode (dropped as
    /// retryable mailbox faults; the driver's retransmit recovers).
    pub cmd_decode_failures: u64,
    /// Commands nacked because the NAND backend failed mid-command.
    pub nand_errors_nacked: u64,
    /// Acks replayed for a retransmit of an already-executed command.
    pub replayed_acks: u64,
    /// Injected window-overrun stalls applied to an NVMC transfer.
    pub overrun_stalls: u64,
    /// In-flight NVMC bursts aborted at the window edge and split.
    pub bursts_split: u64,
    /// Split bursts completed in a later window.
    pub bursts_resumed: u64,
}

impl FpgaStats {
    /// Accumulates another FPGA's counters into this one (per-shard stats
    /// aggregation in multi-channel systems).
    pub fn merge(&mut self, other: &FpgaStats) {
        self.windows_seen += other.windows_seen;
        self.windows_used += other.windows_used;
        self.windows_skipped_busy += other.windows_skipped_busy;
        self.windows_wrong_bank += other.windows_wrong_bank;
        self.cachefills += other.cachefills;
        self.writebacks += other.writebacks;
        self.merged_ops += other.merged_ops;
        self.probes += other.probes;
        self.dma_bytes += other.dma_bytes;
        self.acks_dropped += other.acks_dropped;
        self.acks_corrupted += other.acks_corrupted;
        self.cmd_decode_failures += other.cmd_decode_failures;
        self.nand_errors_nacked += other.nand_errors_nacked;
        self.replayed_acks += other.replayed_acks;
        self.overrun_stalls += other.overrun_stalls;
        self.bursts_split += other.bursts_split;
        self.bursts_resumed += other.bursts_resumed;
    }
}

/// An injectable CP-mailbox acknowledgement fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckFault {
    /// The ack word is lost: the FPGA believes it acknowledged, the
    /// driver never sees it.
    Drop,
    /// The ack word is written but arrives mangled (decodes as empty).
    Corrupt,
}

#[derive(Debug)]
enum FpgaState {
    /// No command in flight; poll the CP area.
    Idle,
    /// Writeback: read the victim slot out of DRAM (needs a window).
    /// `got` accumulates the lines read so far — a burst aborted at the
    /// window edge resumes from here next window.
    WbRead { cmd: CpCommand, got: Vec<u8> },
    /// Cachefill: wait for the NAND read, then DMA into the slot.
    /// `written` counts lines already landed by earlier (split) chunks.
    CfDmaWrite {
        cmd: CpCommand,
        data: Vec<u8>,
        written: u64,
    },
    /// Merged op: victim read done and programmed; fill data ready to DMA.
    MergedDmaWrite {
        cmd: CpCommand,
        data: Vec<u8>,
        written: u64,
    },
    /// Write the acknowledgement word (needs a window). `done` is the
    /// opcode to credit in the stats, `None` for a replayed ack (the
    /// command already ran; only its ack was lost).
    Ack {
        cmd: CpCommand,
        ok: bool,
        code: u8,
        done: Option<CpOpcode>,
    },
}

/// The FPGA engine. Owns no bus or NAND — both are passed per window so
/// the [`crate::System`] stays the single owner.
#[derive(Debug)]
pub struct Fpga {
    step_delay: SimDuration,
    /// Data-byte budget per window (PoC: 4 KB).
    window_xfer_bytes: u64,
    state: FpgaState,
    /// Earliest instant the FSM can take its next window action.
    ready_at: SimTime,
    /// The pure mailbox protocol state (phase tracking, retransmit
    /// detection by txn key, garbage dedup) — shared with `nvdimmc-model`.
    proto: FpgaProto,
    /// Fill data read ahead for a merged writeback+cachefill command.
    pending_fill: Option<Vec<u8>>,
    /// Injected ack faults, consumed FIFO as acks go out.
    ack_faults: std::collections::VecDeque<AckFault>,
    /// Injected command-word corruptions: each one mangles the capture of
    /// one *new* published command, and the mangled capture persists until
    /// the driver republishes fresh bytes — so the command is never
    /// executed and never acked, and the driver's ladder must time out.
    cmd_faults_armed: u32,
    /// The pristine word whose capture is currently mangled, so repeated
    /// polls of the same publish stay corrupted without consuming more
    /// armed faults.
    corrupted_word: Option<[u8; 16]>,
    /// Injected window-overrun stall, armed for the next NVMC transfer.
    stall_armed: bool,
    stats: FpgaStats,
}

impl Fpga {
    /// Creates an idle FPGA with the given FSM step delay and per-window
    /// transfer budget.
    pub fn new(step_delay: SimDuration, window_xfer_bytes: u64) -> Self {
        Fpga {
            step_delay,
            window_xfer_bytes: window_xfer_bytes.max(SLOT_BYTES),
            state: FpgaState::Idle,
            ready_at: SimTime::ZERO,
            proto: FpgaProto::new(),
            pending_fill: None,
            ack_faults: std::collections::VecDeque::new(),
            cmd_faults_armed: 0,
            corrupted_word: None,
            stall_armed: false,
            stats: FpgaStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> FpgaStats {
        self.stats
    }

    /// Whether a command is currently being processed.
    pub fn is_busy(&self) -> bool {
        !matches!(self.state, FpgaState::Idle)
    }

    /// Queues a mailbox ack fault: the next ack leaving the FPGA is
    /// dropped or corrupted.
    pub fn inject_ack_fault(&mut self, fault: AckFault) {
        self.ack_faults.push_back(fault);
    }

    /// Arms a window-overrun stall: the next NVMC data transfer starts so
    /// late in its window that it cannot finish and must be aborted at the
    /// window edge and resumed in the next one.
    pub fn inject_window_stall(&mut self) {
        self.stall_armed = true;
    }

    /// Queues a command-word fault: the FPGA's capture of the next *new*
    /// published command is mangled (and stays mangled until the driver
    /// republishes), so the command is dropped as a decode failure and
    /// the driver's retransmit ladder must recover it. Unlike
    /// [`AckFault::Drop`] the command is never executed.
    pub fn inject_cmd_fault(&mut self) {
        self.cmd_faults_armed += 1;
    }

    /// Injected faults armed but not yet consumed.
    pub fn armed_faults(&self) -> usize {
        self.ack_faults.len() + self.cmd_faults_armed as usize + usize::from(self.stall_armed)
    }

    /// Carries the cumulative recovery counters of a pre-power-cycle FPGA
    /// into this (freshly assembled) one, so campaign accounting spans
    /// power cycles.
    pub(crate) fn carry_recovery_counters(&mut self, prev: &FpgaStats) {
        self.stats.probes += prev.probes;
        self.stats.acks_dropped += prev.acks_dropped;
        self.stats.acks_corrupted += prev.acks_corrupted;
        self.stats.cmd_decode_failures += prev.cmd_decode_failures;
        self.stats.nand_errors_nacked += prev.nand_errors_nacked;
        self.stats.replayed_acks += prev.replayed_acks;
        self.stats.overrun_stalls += prev.overrun_stalls;
        self.stats.bursts_split += prev.bursts_split;
        self.stats.bursts_resumed += prev.bursts_resumed;
    }

    /// Services one detected refresh window.
    ///
    /// Performs protocol steps until the window's byte budget
    /// (`window_xfer_bytes`, PoC: 4 KB) or time budget runs out. With the
    /// PoC's 7 µs FSM step delay at most one action fits per window; the
    /// §VII-C ASIC projection (sub-µs steps, larger budget, longer tRFC)
    /// chains several.
    ///
    /// # Errors
    ///
    /// Propagates bus violations (a violation here means the window
    /// scheduler is broken — tests assert it never happens) and NAND
    /// errors.
    pub fn on_refresh(
        &mut self,
        ref_at: SimTime,
        bus: &mut SharedBus,
        nvmc: &mut Nvmc,
        layout: &Layout,
    ) -> Result<(), CoreError> {
        let (opens, closes) = {
            let t = bus.device().timing();
            (ref_at + t.trfc_base, ref_at + t.trfc_total)
        };
        self.service_window(opens, closes, None, bus, nvmc, layout)
    }

    /// Services one detected *per-bank* refresh window (a snooped REFpb to
    /// `bank` with the given stretch code).
    ///
    /// Unlike rank windows, per-bank windows are serviced while the host
    /// keeps running in the other banks, so the engine only acts when the
    /// window's bank matches what its FSM needs next (see
    /// [`Fpga::wanted_bank`]) and plans from the instant the shared CA slot
    /// actually frees up — the host may already have claimed slots past
    /// `opens` by the time the detector event is processed.
    ///
    /// # Errors
    ///
    /// Propagates bus violations and NAND errors, like [`Fpga::on_refresh`].
    pub fn on_refresh_banked(
        &mut self,
        ref_at: SimTime,
        bank: BankAddr,
        stretch: u8,
        bus: &mut SharedBus,
        nvmc: &mut Nvmc,
        layout: &Layout,
    ) -> Result<(), CoreError> {
        let (opens, closes) = bus.device().timing().nvmc_window_bounds_pb(ref_at, stretch);
        let opens = bus.ca_free_at(opens);
        if opens >= closes {
            // The bus rolled past the close before the NVMC could act: a
            // dead window.
            self.stats.windows_seen += 1;
            self.stats.windows_skipped_busy += 1;
            return Ok(());
        }
        self.service_window(opens, closes, Some(bank), bus, nvmc, layout)
    }

    /// The DRAM bank the FSM's next window action targets: the CP mailbox
    /// bank when polling or acking, the command's slot bank mid-transfer.
    /// The per-bank refresh planner uses this to place windows where the
    /// NVMC actually needs them.
    pub fn wanted_bank(&self, bus: &SharedBus, layout: &Layout) -> Option<BankAddr> {
        let addr = match &self.state {
            FpgaState::Idle => layout.cp_command(),
            FpgaState::Ack { .. } => layout.cp_ack(),
            FpgaState::WbRead { cmd, got } => {
                layout.slot_addr(cmd.dram_slot) + (got.len() as u64 / 64) * 64
            }
            FpgaState::CfDmaWrite { cmd, written, .. }
            | FpgaState::MergedDmaWrite { cmd, written, .. } => {
                layout.slot_addr(cmd.dram_slot) + written * 64
            }
        };
        bus.device().mapping().decode(addr).ok().map(|d| d.bank)
    }

    /// Window-service loop shared by the rank and per-bank paths.
    fn service_window(
        &mut self,
        opens: SimTime,
        closes: SimTime,
        allowed_bank: Option<BankAddr>,
        bus: &mut SharedBus,
        nvmc: &mut Nvmc,
        layout: &Layout,
    ) -> Result<(), CoreError> {
        self.stats.windows_seen += 1;
        let mut budget = self.window_xfer_bytes;
        let mut used = false;
        loop {
            let consumed = self.step(opens, closes, allowed_bank, bus, nvmc, layout)?;
            if consumed == 0 {
                break;
            }
            used = true;
            if consumed >= budget {
                break;
            }
            budget -= consumed;
        }
        if used {
            self.stats.windows_used += 1;
        } else if self.is_busy() {
            self.stats.windows_skipped_busy += 1;
        }
        Ok(())
    }

    /// One protocol step inside the window; returns data bytes consumed
    /// (0 = nothing could run).
    fn step(
        &mut self,
        opens: SimTime,
        closes: SimTime,
        allowed_bank: Option<BankAddr>,
        bus: &mut SharedBus,
        nvmc: &mut Nvmc,
        layout: &Layout,
    ) -> Result<u64, CoreError> {
        if let Some(allowed) = allowed_bank {
            if self.wanted_bank(bus, layout) != Some(allowed) {
                self.stats.windows_wrong_bank += 1;
                return Ok(0);
            }
        }
        let start = self.ready_at.max(opens);
        let poll_needs = Self::poll_duration(bus);
        let budget_for = |need: SimDuration| start + need <= closes;

        match std::mem::replace(&mut self.state, FpgaState::Idle) {
            FpgaState::Idle => {
                if !budget_for(poll_needs) {
                    self.stats.windows_skipped_busy += 1;
                    return Ok(0);
                }
                let (bytes, end) = self.dma_read(bus, layout.cp_command(), 128, start)?;
                let mut word: [u8; 16] = bytes[..16]
                    .try_into()
                    .map_err(|_| CoreError::Protocol("CP poll returned short data".into()))?;
                // An armed command fault mangles the capture of a *new*
                // publish, and the mangled capture persists across repeat
                // polls of the same word — the command never executes and
                // the driver's ladder must time out and retransmit.
                if self.corrupted_word == Some(word)
                    || (self.cmd_faults_armed > 0
                        && CpCommand::decode(&word)
                            .is_some_and(|c| Some(c.phase) != self.proto.last_phase()))
                {
                    if self.corrupted_word != Some(word) {
                        self.cmd_faults_armed -= 1;
                        self.corrupted_word = Some(word);
                    }
                    // Mangle the opcode bit-field ([59:56]) so decode fails.
                    word[7] |= 0x0F;
                }
                match self.proto.classify(&word) {
                    PollVerdict::Replay { cmd, ok, code } => {
                        // A retransmit of the transaction we just
                        // completed: its ack was lost. Re-ack under the
                        // new phase without re-executing.
                        self.ready_at = end + self.step_delay;
                        self.stats.replayed_acks += 1;
                        self.state = FpgaState::Ack {
                            cmd,
                            ok,
                            code,
                            done: None,
                        };
                        Ok(128)
                    }
                    PollVerdict::Execute(cmd) => {
                        self.ready_at = end + self.step_delay;
                        self.state = match cmd.opcode {
                            CpOpcode::Cachefill => {
                                // Start the NAND read as soon as decode
                                // finishes; the DMA waits on its data.
                                match nvmc.read_page(cmd.nand_page, self.ready_at) {
                                    Ok((data, ready)) => {
                                        self.ready_at = ready + self.step_delay;
                                        FpgaState::CfDmaWrite {
                                            cmd,
                                            data,
                                            written: 0,
                                        }
                                    }
                                    Err(e) => self.nand_nack(cmd, &e),
                                }
                            }
                            CpOpcode::Writeback => FpgaState::WbRead {
                                cmd,
                                got: Vec::with_capacity(SLOT_BYTES as usize),
                            },
                            CpOpcode::WritebackCachefill => {
                                // The fill read overlaps the victim
                                // read-out: kick it off now and stash it.
                                match nvmc.read_page(cmd.nand_page, self.ready_at) {
                                    Ok((data, _ready)) => {
                                        self.pending_fill = Some(data);
                                        FpgaState::WbRead {
                                            cmd,
                                            got: Vec::with_capacity(SLOT_BYTES as usize),
                                        }
                                    }
                                    Err(e) => self.nand_nack(cmd, &e),
                                }
                            }
                            // A liveness probe moves no data: straight to
                            // the ack, consuming any armed mailbox faults
                            // on the way out like any other command.
                            CpOpcode::Probe => FpgaState::Ack {
                                cmd,
                                ok: true,
                                code: ACK_OK,
                                done: Some(CpOpcode::Probe),
                            },
                        };
                        Ok(128)
                    }
                    PollVerdict::Garbage { count } => {
                        // A non-empty word that does not decode: a mangled
                        // command. Drop it — the driver's retransmit (new
                        // phase, fresh bytes) recovers. The proto layer
                        // dedups so each distinct garbage word counts once,
                        // not once per poll.
                        if count {
                            self.stats.cmd_decode_failures += 1;
                        }
                        Ok(0)
                    }
                    // Polled, nothing new: the idle FPGA is done with this
                    // window.
                    PollVerdict::Stale => Ok(0),
                }
            }
            FpgaState::WbRead { cmd, mut got } => {
                let total = SLOT_BYTES / 64;
                let done = (got.len() / 64) as u64;
                let Some((xfer_at, lines)) = self.plan_chunk(
                    bus,
                    start,
                    closes,
                    total - done,
                    done > 0,
                    allowed_bank.is_some(),
                ) else {
                    self.state = FpgaState::WbRead { cmd, got };
                    return Ok(0);
                };
                let slot_addr = layout.slot_addr(cmd.dram_slot) + done * 64;
                let (chunk, end) = self.dma_read(bus, slot_addr, lines * 64, xfer_at)?;
                got.extend_from_slice(&chunk);
                if done > 0 && done + lines == total {
                    self.stats.bursts_resumed += 1;
                }
                if done + lines < total {
                    // Burst aborted at the window edge; resume next window.
                    self.ready_at = end + self.step_delay;
                    self.state = FpgaState::WbRead { cmd, got };
                    return Ok(lines * 64);
                }
                let wb_page = match cmd.opcode {
                    CpOpcode::WritebackCachefill => match cmd.wb_nand_page {
                        Some(p) => p,
                        None => {
                            // Malformed merged command: nack instead of
                            // writing to a bogus page.
                            self.pending_fill = None;
                            self.ready_at = end + self.step_delay;
                            self.state = FpgaState::Ack {
                                cmd,
                                ok: false,
                                code: ACK_ERR_PROTOCOL,
                                done: None,
                            };
                            return Ok(lines * 64);
                        }
                    },
                    _ => cmd.nand_page,
                };
                match nvmc.write_page(wb_page, &got, end + self.step_delay) {
                    Ok(ack_at) => {
                        self.ready_at = ack_at + self.step_delay;
                        self.state = match (cmd.opcode, self.pending_fill.take()) {
                            (CpOpcode::WritebackCachefill, Some(data)) => {
                                FpgaState::MergedDmaWrite {
                                    cmd,
                                    data,
                                    written: 0,
                                }
                            }
                            _ => FpgaState::Ack {
                                cmd,
                                ok: true,
                                code: ACK_OK,
                                done: Some(cmd.opcode),
                            },
                        };
                    }
                    Err(e) => {
                        self.pending_fill = None;
                        self.ready_at = end + self.step_delay;
                        self.state = self.nand_nack(cmd, &e);
                    }
                }
                Ok(lines * 64)
            }
            FpgaState::CfDmaWrite { cmd, data, written }
            | FpgaState::MergedDmaWrite { cmd, data, written } => {
                let merged = matches!(cmd.opcode, CpOpcode::WritebackCachefill);
                let restore = |cmd, data, written| {
                    if merged {
                        FpgaState::MergedDmaWrite { cmd, data, written }
                    } else {
                        FpgaState::CfDmaWrite { cmd, data, written }
                    }
                };
                let total = (data.len() / 64) as u64;
                let Some((xfer_at, lines)) = self.plan_chunk(
                    bus,
                    start,
                    closes,
                    total - written,
                    written > 0,
                    allowed_bank.is_some(),
                ) else {
                    self.state = restore(cmd, data, written);
                    return Ok(0);
                };
                let slot_addr = layout.slot_addr(cmd.dram_slot) + written * 64;
                let end = self.dma_write(
                    bus,
                    slot_addr,
                    &data[written as usize * 64..(written + lines) as usize * 64],
                    xfer_at,
                )?;
                if written > 0 && written + lines == total {
                    self.stats.bursts_resumed += 1;
                }
                self.ready_at = end + self.step_delay;
                self.state = if written + lines < total {
                    restore(cmd, data, written + lines)
                } else {
                    FpgaState::Ack {
                        cmd,
                        ok: true,
                        code: ACK_OK,
                        done: Some(cmd.opcode),
                    }
                };
                Ok(lines * 64)
            }
            FpgaState::Ack {
                cmd,
                ok,
                code,
                done,
            } => {
                if !budget_for(poll_needs) {
                    self.state = FpgaState::Ack {
                        cmd,
                        ok,
                        code,
                        done,
                    };
                    return Ok(0);
                }
                // Record the completion (and build the seq-echoing ack)
                // regardless of ack faults: the command *did* run, so a
                // later retransmit must replay, not re-execute.
                let ack = self.proto.complete(&cmd, ok, code);
                let end = match self.ack_faults.pop_front() {
                    Some(AckFault::Drop) => {
                        // The ack is lost in flight: no bus activity, but
                        // the FSM advances as if it had been delivered.
                        self.stats.acks_dropped += 1;
                        start
                    }
                    Some(AckFault::Corrupt) => {
                        // The ack line lands mangled: the valid bit is
                        // clear, so the driver reads it as empty.
                        self.stats.acks_corrupted += 1;
                        let mut line = [0u8; 64];
                        line[..8].copy_from_slice(&0xDEAD_BEEF_0000_0002u64.to_le_bytes());
                        self.dma_write(bus, layout.cp_ack(), &line, start)?
                    }
                    None => {
                        let mut line = [0u8; 64];
                        line[..8].copy_from_slice(&ack.encode());
                        self.dma_write(bus, layout.cp_ack(), &line, start)?
                    }
                };
                self.ready_at = end + self.step_delay;
                if let Some(op) = done {
                    match op {
                        CpOpcode::Cachefill => self.stats.cachefills += 1,
                        CpOpcode::Writeback => self.stats.writebacks += 1,
                        CpOpcode::WritebackCachefill => self.stats.merged_ops += 1,
                        CpOpcode::Probe => self.stats.probes += 1,
                    }
                }
                self.state = FpgaState::Idle;
                Ok(64)
            }
        }
    }

    /// Maps a NAND failure during command execution to a failure ack, so
    /// the error reaches the driver as a typed nack instead of tearing
    /// down the FSM mid-command.
    fn nand_nack(&mut self, cmd: CpCommand, e: &NandError) -> FpgaState {
        self.stats.nand_errors_nacked += 1;
        let code = match e {
            NandError::Uncorrectable { .. } => ACK_ERR_UNCORRECTABLE,
            _ => ACK_ERR_NAND,
        };
        FpgaState::Ack {
            cmd,
            ok: false,
            code,
            done: None,
        }
    }

    /// Plans the next chunk of an NVMC data burst: `Some((start, lines))`
    /// to transfer now, `None` to defer the window entirely.
    ///
    /// The no-fault rank path is exactly the historical behaviour: a burst
    /// only starts when it fully fits inside the window. Once a burst is in
    /// progress — or an injected stall pushes its start late, or the window
    /// is a short per-bank one (`allow_partial`) — the engine moves as many
    /// cachelines as still fit (ACT + RD/WRs + PRE all inside the window),
    /// aborts at the edge, and resumes next window.
    fn plan_chunk(
        &mut self,
        bus: &SharedBus,
        start: SimTime,
        closes: SimTime,
        remaining: u64,
        in_progress: bool,
        allow_partial: bool,
    ) -> Option<(SimTime, u64)> {
        let mut start = start;
        let full = Self::burst_duration(bus, remaining);
        let fits_full = start + full <= closes;
        if self.stall_armed && !in_progress && fits_full {
            // Model an upstream hiccup in the window where the burst would
            // have landed whole: the transfer becomes ready so late that
            // only about half of it fits before the window closes.
            self.stall_armed = false;
            self.stats.overrun_stalls += 1;
            let half = Self::chunk_duration(bus, (remaining / 2).max(1));
            if closes > start + half {
                start = (closes - half).max(start);
            }
        } else if !in_progress && !allow_partial {
            return fits_full.then_some((start, remaining));
        }
        if start + full <= closes {
            return Some((start, remaining));
        }
        let fit = Self::lines_that_fit(bus, start, closes, remaining);
        if fit == 0 {
            return None;
        }
        if !in_progress {
            self.stats.bursts_split += 1;
        }
        Some((start, fit))
    }

    /// Duration estimate of an NVMC burst of `lines` cachelines — the
    /// historical full-page formula generalized to any line count. Used
    /// for the whole-burst-fits fast path; must stay byte-identical to
    /// the original so the no-fault schedule does not move.
    fn burst_duration(bus: &SharedBus, lines: u64) -> SimDuration {
        let t = bus.device().timing();
        t.trcd + t.tccd_l * lines + t.tcl + t.burst_time() + t.trtp + t.trp
    }

    /// Conservative duration of a partial chunk of `lines` cachelines,
    /// covering both read (tRTP-gated) and write (tWR-gated) precharge.
    fn chunk_duration(bus: &SharedBus, lines: u64) -> SimDuration {
        let t = bus.device().timing();
        t.trcd + t.tccd_l * lines + t.tcl + t.burst_time() + t.trtp.max(t.twr) + t.trp
    }

    /// Largest chunk (in cachelines, at most `want`) whose conservative
    /// duration still fits between `start` and `closes`.
    fn lines_that_fit(bus: &SharedBus, start: SimTime, closes: SimTime, want: u64) -> u64 {
        let mut fit = 0;
        while fit < want && start + Self::chunk_duration(bus, fit + 1) <= closes {
            fit += 1;
        }
        fit
    }

    /// Conservative duration of a CP poll (two cachelines).
    fn poll_duration(bus: &SharedBus) -> SimDuration {
        let t = bus.device().timing();
        t.trcd + t.tccd_l * 2 + t.tcl + t.burst_time() + t.trtp + t.trp
    }

    /// Issues one NVMC command, absorbing retryable [`BusViolation::Timing`]
    /// bumps (cross-master tRRD/tWTR/CA-slot residue from host traffic that
    /// ran right up to a per-bank window). Returns the actual issue instant
    /// and the bus's completion result. In rank mode the window is
    /// exclusive, no bump ever fires, and the schedule is unchanged.
    fn nvmc_issue(
        bus: &mut SharedBus,
        mut at: SimTime,
        cmd: Command,
    ) -> Result<(SimTime, SimTime), CoreError> {
        for _ in 0..64 {
            match bus.issue(BusMaster::Nvmc, at, cmd) {
                Ok(done) => return Ok((at, done)),
                Err(BusViolation::Timing { legal_at, .. }) if legal_at > at => at = legal_at,
                Err(e) => return Err(e.into()),
            }
        }
        Err(CoreError::Protocol(format!(
            "NVMC retry budget exhausted at {at} for {cmd:?}"
        )))
    }

    /// DMA-reads `len` bytes at `addr` with real DDR4 commands: ACT,
    /// pipelined RDs, PRE. Returns the data and the completion instant.
    fn dma_read(
        &mut self,
        bus: &mut SharedBus,
        addr: u64,
        len: u64,
        start: SimTime,
    ) -> Result<(Vec<u8>, SimTime), CoreError> {
        if !addr.is_multiple_of(64) || !len.is_multiple_of(64) {
            return Err(CoreError::Protocol(format!(
                "misaligned DMA read: addr {addr:#x} len {len}"
            )));
        }
        let dec = bus
            .device()
            .mapping()
            .decode(addr)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let t = *bus.device().timing();
        let (act_at, rw_at) = Self::nvmc_issue(
            bus,
            start,
            Command::Activate {
                bank: dec.bank,
                row: dec.row,
            },
        )?;
        let lines = len / 64;
        let mut out = Vec::with_capacity(len as usize);
        let mut next_at = rw_at;
        let mut last_issue = rw_at;
        let mut last_end = rw_at;
        for i in 0..lines {
            let (at, end) = Self::nvmc_issue(
                bus,
                next_at,
                Command::Read {
                    bank: dec.bank,
                    col: dec.col + i as u16,
                    auto_precharge: false,
                },
            )?;
            last_end = end;
            last_issue = at;
            next_at = at + t.tccd_l;
            out.extend_from_slice(&bus.device_mut().burst_read(dec.bank, dec.col + i as u16));
        }
        // Leave the bank precharged before the window closes (the bus
        // enforces this invariant when the host resumes); tRAS and tRTP
        // both gate the precharge.
        let pre_at = (act_at + t.tras).max(last_issue + t.trtp.max(t.tccd_l));
        let (pre_at, _) = Self::nvmc_issue(bus, pre_at, Command::Precharge { bank: dec.bank })?;
        self.stats.dma_bytes += len;
        Ok((out, last_end.max(pre_at + t.trp)))
    }

    /// DMA-writes `data` at `addr` with real DDR4 commands.
    fn dma_write(
        &mut self,
        bus: &mut SharedBus,
        addr: u64,
        data: &[u8],
        start: SimTime,
    ) -> Result<SimTime, CoreError> {
        if !addr.is_multiple_of(64) || !data.len().is_multiple_of(64) {
            return Err(CoreError::Protocol(format!(
                "misaligned DMA write: addr {addr:#x} len {}",
                data.len()
            )));
        }
        let dec = bus
            .device()
            .mapping()
            .decode(addr)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let t = *bus.device().timing();
        let (act_at, rw_at) = Self::nvmc_issue(
            bus,
            start,
            Command::Activate {
                bank: dec.bank,
                row: dec.row,
            },
        )?;
        let lines = (data.len() / 64) as u64;
        let mut next_at = rw_at;
        let mut last_burst_end = rw_at;
        for i in 0..lines {
            let (at, end) = Self::nvmc_issue(
                bus,
                next_at,
                Command::Write {
                    bank: dec.bank,
                    col: dec.col + i as u16,
                    auto_precharge: false,
                },
            )?;
            last_burst_end = end;
            next_at = at + t.tccd_l;
            let line: [u8; 64] = data[(i as usize) * 64..(i as usize + 1) * 64]
                .try_into()
                .map_err(|_| CoreError::Protocol("DMA write chunk not line-sized".into()))?;
            bus.device_mut()
                .burst_write(dec.bank, dec.col + i as u16, &line);
        }
        // Write recovery (and tRAS) before precharge.
        let pre_at = (act_at + t.tras).max(last_burst_end + t.twr);
        let (pre_at, _) = Self::nvmc_issue(bus, pre_at, Command::Precharge { bank: dec.bank })?;
        self.stats.dma_bytes += data.len() as u64;
        Ok(pre_at + t.trp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::CpAck;
    use nvdimmc_ddr::{DramDevice, Imc, ImcConfig, RefreshMode, SpeedBin, TimingParams};
    use nvdimmc_nand::NvmcConfig;
    use nvdimmc_sim::SimTime;

    struct Rig {
        bus: SharedBus,
        imc: Imc,
        nvmc: Nvmc,
        fpga: Fpga,
        layout: Layout,
        clock: SimTime,
    }

    fn rig(step_delay_us: f64, window_bytes: u64) -> Rig {
        let timing = TimingParams::nvdimmc_poc(SpeedBin::Ddr4_1600);
        let layout = Layout::new(0, 64);
        let stripe = 8 * 1024 * 16;
        let cap = Layout::required_bytes(64).div_ceil(stripe) * stripe;
        Rig {
            bus: SharedBus::new(DramDevice::new(timing, cap)),
            imc: Imc::new(ImcConfig::from_timing(&timing)),
            nvmc: Nvmc::new(NvmcConfig::small_for_tests()).expect("nvmc"),
            fpga: Fpga::new(SimDuration::from_us(step_delay_us), window_bytes),
            layout,
            clock: SimTime::ZERO,
        }
    }

    impl Rig {
        /// Issues one refresh and hands the window to the FPGA; returns
        /// the REF time.
        fn one_window(&mut self) -> SimTime {
            let due = self.imc.next_refresh_due();
            let t = self.clock.max(due);
            self.clock = self.imc.pump_refresh(&mut self.bus, t).expect("pump");
            let w = self.bus.window().expect("window open");
            self.fpga
                .on_refresh(w.ref_at, &mut self.bus, &mut self.nvmc, &self.layout)
                .expect("window service");
            w.ref_at
        }

        fn publish(&mut self, cmd: &CpCommand) {
            let mut line = [0u8; 64];
            line[..16].copy_from_slice(&cmd.encode());
            self.bus
                .device_mut()
                .poke(self.layout.cp_command(), &line)
                .expect("poke");
        }

        fn ack(&mut self) -> Option<CpAck> {
            let mut bytes = [0u8; 8];
            self.bus
                .device()
                .peek(self.layout.cp_ack(), &mut bytes)
                .expect("peek");
            CpAck::decode(&bytes)
        }

        fn run_until_ack(&mut self, phase: u8, max_windows: u32) -> u32 {
            for n in 1..=max_windows {
                self.one_window();
                if let Some(ack) = self.ack() {
                    if ack.phase == phase {
                        return n;
                    }
                }
            }
            panic!("no ack after {max_windows} windows");
        }
    }

    #[test]
    fn idle_polls_do_not_count_as_used_windows() {
        let mut r = rig(6.0, 4096);
        for _ in 0..5 {
            r.one_window();
        }
        let s = r.fpga.stats();
        assert_eq!(s.windows_seen, 5);
        assert_eq!(s.windows_used, 0, "nothing to do, nothing used");
        assert!(!r.fpga.is_busy());
    }

    #[test]
    fn cachefill_moves_nand_page_into_slot() {
        let mut r = rig(6.0, 4096);
        // Put a page on NAND.
        let data = vec![0xB7u8; 4096];
        r.nvmc
            .write_page(9, &data, SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 1,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 3,
            nand_page: 9,
            wb_nand_page: None,
        });
        let windows = r.run_until_ack(1, 64);
        // Paper §V-A: three windows minimum (poll, data, ack); the FSM
        // delay may skip a few.
        assert!(
            (3..=8).contains(&windows),
            "cachefill took {windows} windows"
        );
        let mut slot = vec![0u8; 4096];
        r.bus
            .device()
            .peek(r.layout.slot_addr(3), &mut slot)
            .expect("peek");
        assert_eq!(slot, data, "slot contents after cachefill");
        assert_eq!(r.fpga.stats().cachefills, 1);
    }

    #[test]
    fn writeback_moves_slot_into_nand() {
        let mut r = rig(6.0, 4096);
        let data = vec![0x4Eu8; 4096];
        r.bus
            .device_mut()
            .poke(r.layout.slot_addr(7), &data)
            .expect("poke");
        r.publish(&CpCommand {
            phase: 2,
            seq: 0,
            opcode: CpOpcode::Writeback,
            dram_slot: 7,
            nand_page: 21,
            wb_nand_page: None,
        });
        let windows = r.run_until_ack(2, 64);
        assert!(
            (3..=8).contains(&windows),
            "writeback took {windows} windows"
        );
        let (read_back, _) = r.nvmc.read_page(21, r.clock).expect("nand read");
        assert_eq!(read_back, data);
        assert_eq!(r.fpga.stats().writebacks, 1);
    }

    #[test]
    fn repeated_phase_is_ignored() {
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(1, &vec![1u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 5,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 1,
            wb_nand_page: None,
        });
        r.run_until_ack(5, 64);
        let fills = r.fpga.stats().cachefills;
        // Same phase still in the mailbox: more windows, no new command.
        for _ in 0..6 {
            r.one_window();
        }
        assert_eq!(
            r.fpga.stats().cachefills,
            fills,
            "phase replay executed twice"
        );
    }

    #[test]
    fn merged_command_faster_than_split_pair() {
        // Split: WB then CF as two transactions.
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(2, &vec![2u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.bus
            .device_mut()
            .poke(r.layout.slot_addr(0), &[9u8; 4096])
            .expect("poke");
        r.publish(&CpCommand {
            phase: 1,
            seq: 0,
            opcode: CpOpcode::Writeback,
            dram_slot: 0,
            nand_page: 30,
            wb_nand_page: None,
        });
        let wb = r.run_until_ack(1, 64);
        r.publish(&CpCommand {
            phase: 2,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 2,
            wb_nand_page: None,
        });
        let cf = r.run_until_ack(2, 64);
        let split_windows = wb + cf;

        // Merged: one transaction does both.
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(2, &vec![2u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.bus
            .device_mut()
            .poke(r.layout.slot_addr(0), &[9u8; 4096])
            .expect("poke");
        r.publish(&CpCommand {
            phase: 1,
            seq: 0,
            opcode: CpOpcode::WritebackCachefill,
            dram_slot: 0,
            nand_page: 2,
            wb_nand_page: Some(30),
        });
        let merged = r.run_until_ack(1, 64);
        assert!(
            merged < split_windows,
            "merged {merged} windows vs split {split_windows}"
        );
        // Both data movements happened.
        let (wb_data, _) = r.nvmc.read_page(30, r.clock).expect("nand");
        assert_eq!(wb_data, vec![9u8; 4096]);
        let mut slot = vec![0u8; 4096];
        r.bus
            .device()
            .peek(r.layout.slot_addr(0), &mut slot)
            .expect("peek");
        assert_eq!(slot, vec![2u8; 4096]);
        assert_eq!(r.fpga.stats().merged_ops, 1);
    }

    #[test]
    fn asic_fsm_uses_fewer_windows() {
        let run = |step_us: f64| {
            let mut r = rig(step_us, 4096);
            r.nvmc
                .write_page(4, &vec![4u8; 4096], SimTime::ZERO)
                .expect("nand write");
            r.publish(&CpCommand {
                phase: 1,
                seq: 0,
                opcode: CpOpcode::Cachefill,
                dram_slot: 1,
                nand_page: 4,
                wb_nand_page: None,
            });
            r.run_until_ack(1, 64)
        };
        let poc = run(6.0);
        let asic = run(0.2);
        assert!(asic <= poc, "ASIC {asic} vs PoC {poc} windows");
        assert!(asic <= 4, "ASIC cachefill took {asic} windows");
    }

    #[test]
    fn all_fpga_commands_stayed_inside_windows() {
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(11, &vec![5u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 3,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 2,
            nand_page: 11,
            wb_nand_page: None,
        });
        r.run_until_ack(3, 64);
        assert_eq!(r.bus.stats().violations_rejected, 0);
        assert!(r.bus.stats().nvmc_bytes >= 4096 + 64);
        assert!(r.bus.device().all_banks_idle(), "FPGA left a bank open");
    }

    #[test]
    fn dropped_ack_recovered_by_retransmit_replay() {
        let mut r = rig(6.0, 4096);
        let data = vec![0x3Cu8; 4096];
        r.nvmc
            .write_page(5, &data, SimTime::ZERO)
            .expect("nand write");
        r.fpga.inject_ack_fault(AckFault::Drop);
        let cmd = CpCommand {
            phase: 1,
            seq: 9,
            opcode: CpOpcode::Cachefill,
            dram_slot: 2,
            nand_page: 5,
            wb_nand_page: None,
        };
        r.publish(&cmd);
        for _ in 0..16 {
            r.one_window();
        }
        assert!(r.ack().is_none(), "the ack should have been dropped");
        assert_eq!(r.fpga.stats().acks_dropped, 1);
        assert_eq!(r.fpga.stats().cachefills, 1, "command ran, ack was lost");
        // The driver times out and retransmits: same seq and fields under
        // a fresh phase. The FPGA must re-ack, not re-execute.
        r.publish(&CpCommand { phase: 2, ..cmd });
        r.run_until_ack(2, 64);
        let s = r.fpga.stats();
        assert_eq!(s.replayed_acks, 1);
        assert_eq!(s.cachefills, 1, "replay must not re-execute");
        let mut slot = vec![0u8; 4096];
        r.bus
            .device()
            .peek(r.layout.slot_addr(2), &mut slot)
            .expect("peek");
        assert_eq!(slot, data);
    }

    #[test]
    fn corrupted_ack_reads_as_empty_and_is_replayed() {
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(8, &vec![0x61u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.fpga.inject_ack_fault(AckFault::Corrupt);
        let cmd = CpCommand {
            phase: 1,
            seq: 4,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 8,
            wb_nand_page: None,
        };
        r.publish(&cmd);
        for _ in 0..16 {
            r.one_window();
        }
        assert!(r.ack().is_none(), "a mangled ack must not decode");
        assert_eq!(r.fpga.stats().acks_corrupted, 1);
        r.publish(&CpCommand { phase: 2, ..cmd });
        r.run_until_ack(2, 64);
        assert_eq!(r.fpga.stats().replayed_acks, 1);
        assert_eq!(r.fpga.stats().cachefills, 1);
    }

    #[test]
    fn window_stall_splits_burst_and_resumes_cleanly() {
        let mut r = rig(6.0, 4096);
        let data = vec![0xA5u8; 4096];
        r.nvmc
            .write_page(3, &data, SimTime::ZERO)
            .expect("nand write");
        r.fpga.inject_window_stall();
        r.publish(&CpCommand {
            phase: 1,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 1,
            nand_page: 3,
            wb_nand_page: None,
        });
        r.run_until_ack(1, 64);
        let s = r.fpga.stats();
        assert_eq!(s.overrun_stalls, 1);
        assert_eq!(s.bursts_split, 1, "the stalled burst must split");
        assert_eq!(s.bursts_resumed, 1, "the split burst must complete");
        assert_eq!(r.fpga.armed_faults(), 0);
        let mut slot = vec![0u8; 4096];
        r.bus
            .device()
            .peek(r.layout.slot_addr(1), &mut slot)
            .expect("peek");
        assert_eq!(slot, data, "split burst landed the full page");
        assert_eq!(r.bus.stats().violations_rejected, 0);
        assert!(r.bus.device().all_banks_idle(), "FPGA left a bank open");
    }

    #[test]
    fn per_bank_windows_complete_a_cachefill() {
        let mut r = rig(0.2, 4096);
        r.bus.set_refresh_mode(RefreshMode::PerBank);
        r.imc.set_refresh_mode(RefreshMode::PerBank);
        r.bus.attach_recorder();
        let data = vec![0xC3u8; 4096];
        r.nvmc
            .write_page(9, &data, SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 1,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 3,
            nand_page: 9,
            wb_nand_page: None,
        });
        // The shard's planner loop in miniature: steer each REFpb toward
        // the bank the FPGA needs, then service every snooped per-bank
        // window from the recorded trace (what the detector would emit).
        let mut acked = false;
        for _ in 0..512 {
            let due = r.imc.next_refresh_due();
            let t = r.clock.max(due);
            let want = r.fpga.wanted_bank(&r.bus, &r.layout);
            r.imc
                .set_refresh_pref(want.map(|b| (b, TimingParams::MAX_STRETCH)));
            r.clock = r.imc.pump_refresh(&mut r.bus, t).expect("pump");
            for e in r.bus.take_trace() {
                if let Command::RefreshBank { bank, stretch } = e.cmd {
                    r.fpga
                        .on_refresh_banked(e.at, bank, stretch, &mut r.bus, &mut r.nvmc, &r.layout)
                        .expect("banked window service");
                }
            }
            if r.ack().is_some_and(|a| a.phase == 1) {
                acked = true;
                break;
            }
        }
        assert!(acked, "cachefill never acked under per-bank windows");
        let mut slot = vec![0u8; 4096];
        r.bus
            .device()
            .peek(r.layout.slot_addr(3), &mut slot)
            .expect("peek");
        assert_eq!(slot, data, "slot contents after per-bank cachefill");
        let s = r.fpga.stats();
        assert_eq!(s.cachefills, 1);
        assert!(s.windows_used >= 3, "poll + data + ack each took a window");
        assert_eq!(r.bus.stats().violations_rejected, 0);
        assert!(r.bus.device().all_banks_idle(), "FPGA left a bank open");
    }

    #[test]
    fn wrong_bank_windows_are_skipped_not_used() {
        let mut r = rig(0.2, 4096);
        r.bus.set_refresh_mode(RefreshMode::PerBank);
        r.imc.set_refresh_mode(RefreshMode::PerBank);
        r.nvmc
            .write_page(2, &vec![7u8; 4096], SimTime::ZERO)
            .expect("nand write");
        r.publish(&CpCommand {
            phase: 1,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 2,
            wb_nand_page: None,
        });
        let want = r.fpga.wanted_bank(&r.bus, &r.layout).expect("poll bank");
        let wrong = BankAddr::from_index((want.index() + 1) % BankAddr::COUNT);
        // Open a window over a bank the FSM does not target: no action.
        r.imc.set_refresh_pref(Some((wrong, 4)));
        let due = r.imc.next_refresh_due();
        r.clock = r.imc.pump_refresh(&mut r.bus, due).expect("pump");
        let w = r.bus.bank_window(wrong).expect("window open");
        r.fpga
            .on_refresh_banked(w.ref_at, wrong, 4, &mut r.bus, &mut r.nvmc, &r.layout)
            .expect("service");
        let s = r.fpga.stats();
        assert_eq!(s.windows_wrong_bank, 1);
        assert_eq!(s.windows_used, 0);
        assert_eq!(s.dma_bytes, 0, "no poll happened in the wrong bank");
    }

    #[test]
    fn nand_uncorrectable_is_nacked_with_code() {
        use crate::cp::ACK_ERR_UNCORRECTABLE;
        let mut r = rig(6.0, 4096);
        r.nvmc
            .write_page(6, &vec![7u8; 4096], SimTime::ZERO)
            .expect("nand write");
        // Let the write buffer drain so the fill read hits media.
        for _ in 0..40 {
            r.one_window();
        }
        r.nvmc.ftl_mut().media_mut().arm_uncorrectable(true);
        r.publish(&CpCommand {
            phase: 1,
            seq: 1,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 6,
            wb_nand_page: None,
        });
        r.run_until_ack(1, 64);
        let ack = r.ack().expect("nack present");
        assert!(!ack.ok, "uncorrectable read must nack");
        assert_eq!(ack.code, ACK_ERR_UNCORRECTABLE);
        assert_eq!(r.fpga.stats().nand_errors_nacked, 1);
        assert_eq!(r.fpga.stats().cachefills, 0, "no completion credited");
    }
}
