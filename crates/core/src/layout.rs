//! The reserved-region layout (paper Figure 5).
//!
//! The nvdc driver reserves the module's DRAM address space via
//! `memmap=nn$ss` and carves it into three areas:
//!
//! 1. the **CP area** — the first 4 KB page, used as the mailbox between
//!    driver and FPGA (§IV-C);
//! 2. a 16 MB **metadata area** holding the DRAM-slot ↔ NAND-page
//!    mappings, which the FPGA's power-fail firmware walks (§V-C);
//! 3. the **cache slots** — 4 KB each, fully associative.

use serde::{Deserialize, Serialize};

/// Bytes in the CP mailbox area (one page).
pub const CP_AREA_BYTES: u64 = 4096;
/// Bytes in the metadata area (paper: 16 MB).
pub const METADATA_BYTES: u64 = 16 << 20;
/// Bytes per cache slot / NAND page.
pub const SLOT_BYTES: u64 = 4096;
/// Bytes per metadata entry: a packed 32-bit NAND page id, matching the
/// paper's 16 MB metadata area covering 15 GB (3.93M slots) of cache.
pub const META_ENTRY_BYTES: u64 = 4;

/// Byte offsets of the reserved-region areas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Base physical address of the reserved region.
    pub base: u64,
    /// Number of cache slots.
    pub slots: u64,
}

impl Layout {
    /// Creates the layout for a reserved region at `base` with `slots`
    /// cache slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or would overflow the metadata area.
    pub fn new(base: u64, slots: u64) -> Self {
        assert!(slots > 0, "need at least one cache slot");
        assert!(
            slots * META_ENTRY_BYTES <= METADATA_BYTES,
            "metadata area holds at most {} slots",
            METADATA_BYTES / META_ENTRY_BYTES
        );
        Layout { base, slots }
    }

    /// Total reserved bytes needed for `slots` slots.
    pub fn required_bytes(slots: u64) -> u64 {
        CP_AREA_BYTES + METADATA_BYTES + slots * SLOT_BYTES
    }

    /// The CP area's base address.
    pub fn cp_area(&self) -> u64 {
        self.base
    }

    /// Address of the CP command word (first cacheline of the CP area).
    pub fn cp_command(&self) -> u64 {
        self.base
    }

    /// Address of the CP acknowledgement word (second cacheline, so the
    /// FPGA's ack write never collides with the driver's command line).
    pub fn cp_ack(&self) -> u64 {
        self.base + 64
    }

    /// The metadata area's base address.
    pub fn metadata(&self) -> u64 {
        self.base + CP_AREA_BYTES
    }

    /// Address of the metadata entry for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn metadata_entry(&self, slot: u64) -> u64 {
        assert!(slot < self.slots, "slot {slot} out of range");
        self.metadata() + slot * META_ENTRY_BYTES
    }

    /// Base address of the slot array.
    pub fn slots_base(&self) -> u64 {
        self.base + CP_AREA_BYTES + METADATA_BYTES
    }

    /// Physical address of cache slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_addr(&self, slot: u64) -> u64 {
        assert!(slot < self.slots, "slot {slot} out of range");
        self.slots_base() + slot * SLOT_BYTES
    }

    /// Exclusive end of the reserved region.
    pub fn end(&self) -> u64 {
        self.base + Self::required_bytes(self.slots)
    }

    /// The slot containing physical address `addr`, if any.
    pub fn slot_of_addr(&self, addr: u64) -> Option<u64> {
        if addr < self.slots_base() || addr >= self.end() {
            return None;
        }
        Some((addr - self.slots_base()) / SLOT_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_are_disjoint_and_ordered() {
        let l = Layout::new(0, 1024);
        assert!(l.cp_area() < l.metadata());
        assert!(l.metadata() < l.slots_base());
        assert_eq!(l.metadata() - l.cp_area(), CP_AREA_BYTES);
        assert_eq!(l.slots_base() - l.metadata(), METADATA_BYTES);
        assert_eq!(l.end() - l.slots_base(), 1024 * SLOT_BYTES);
    }

    #[test]
    fn slot_addr_roundtrip() {
        let l = Layout::new(1 << 30, 100);
        for s in [0u64, 1, 50, 99] {
            assert_eq!(l.slot_of_addr(l.slot_addr(s)), Some(s));
            assert_eq!(l.slot_of_addr(l.slot_addr(s) + 4095), Some(s));
        }
        assert_eq!(l.slot_of_addr(l.base), None);
        assert_eq!(l.slot_of_addr(l.end()), None);
    }

    #[test]
    fn cp_words_on_distinct_cachelines() {
        let l = Layout::new(0, 1);
        assert_eq!(l.cp_command() / 64 + 1, l.cp_ack() / 64);
    }

    #[test]
    fn paper_scale_fits_metadata() {
        // 15 GB of slots = 3.93M packed 4-byte entries = 15.7 MB, inside
        // the paper's 16 MB metadata area.
        let slots = (15u64 << 30) / SLOT_BYTES;
        let l = Layout::new(0, slots);
        assert_eq!(l.slots, slots);
    }

    #[test]
    #[should_panic(expected = "metadata area holds")]
    fn metadata_overflow_rejected() {
        Layout::new(0, METADATA_BYTES / META_ENTRY_BYTES + 1);
    }

    #[test]
    fn metadata_entries_do_not_alias() {
        let l = Layout::new(0, 16);
        let a = l.metadata_entry(0);
        let b = l.metadata_entry(1);
        assert_eq!(b - a, META_ENTRY_BYTES);
        assert!(b + META_ENTRY_BYTES <= l.slots_base());
    }
}
