//! Calibrated software-path constants.
//!
//! The simulator is mechanistic wherever the paper describes mechanism
//! (DDR4 windows, CP protocol, NAND service, coherence operations). The
//! *software* costs — fio/libpmem per-op overhead, the nvdc driver's page
//! mapping management, the PoC's Cortex-A53-driven FSM — are not derivable
//! from first principles, so they are **calibrated once** against the
//! paper's published single-thread numbers (§VII-B2, Figures 8/10/12) and
//! then held fixed across every experiment. Each constant cites the
//! anchor it was fit to.

use nvdimmc_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Calibrated host-software timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfParams {
    /// Fixed per-operation cost of the fio + libpmem + DAX-file path on
    /// the *baseline* (/dev/pmem0) device.
    ///
    /// Anchor: baseline 4 KB random read = 646 KIOPS (1.548 µs/op) with
    /// ~1.08 µs of copy ⇒ ~0.47 µs fixed.
    pub fio_base_op: SimDuration,
    /// Fixed per-operation cost on the nvdc DAX path for sub-page
    /// accesses (pure load/store once mapped — no block-layer work).
    ///
    /// Anchor: NVDC-Cached 128 B random read = 2147 KIOPS (0.466 µs/op),
    /// 1.15× *faster* than baseline (§VII-B4).
    pub nvdc_small_op: SimDuration,
    /// Extra per-4KB-page cost of nvdc mapping management on reads
    /// (page-table upkeep, slot bookkeeping).
    ///
    /// Anchor: NVDC-Cached 4 KB read = 448 KIOPS (2.232 µs/op) vs the
    /// baseline's 1.548 µs ⇒ ~0.65 µs/page.
    pub nvdc_page_extra_read: SimDuration,
    /// Extra per-4KB-page cost on writes (dirty tracking; flushes are
    /// deferred to writeback so writes pay slightly less than reads).
    ///
    /// Anchor: NVDC-Cached 4 KB write = 438 KIOPS (2.283 µs/op) vs
    /// baseline write 1.736 µs.
    pub nvdc_page_extra_write: SimDuration,
    /// Single-thread CPU copy bandwidth for the load/store data movement.
    /// The bus transfer is *paced* at this rate (one line per load-stream
    /// slot), so refresh blocking hits the whole copy window — the
    /// Figure 13 mechanism.
    ///
    /// Anchor: baseline 4 KB read 1.548 µs ≈ fixed 0.47 + paced copy
    /// (4096 B / 5.2 GB/s + refresh/row overheads ≈ 1.05 µs).
    pub copy_bytes_per_s: f64,
    /// Amortisation factor for per-page costs beyond the first page of a
    /// multi-page access (sequential pages share mapping work).
    ///
    /// Anchor: NVDC-Cached 64 KB read reaches 3050 MB/s (§VII-B4).
    pub page_amortization: f64,
    /// Fixed cost of the DAX fault path (kernel fault entry + nvdc
    /// `device_access` + PTE install), excluding any device work.
    ///
    /// Anchor: hypothetical device with tD = 0 runs at 1503 MB/s
    /// (2.72 µs/op, §VII-D1) = mapping path + copy + bus.
    pub fault_base: SimDuration,
    /// Software processing delay of the PoC's Cortex-A53-controlled FSM
    /// between window-consuming protocol steps.
    ///
    /// Anchor: a 4 KB Uncached access takes 8.9 tREFI ≈ 69.8 µs versus
    /// the 6-window (46.8 µs) theoretical minimum (§VII-B2); ~6 µs per
    /// step reproduces the skipped windows.
    pub fsm_step_delay: SimDuration,
    /// Driver poll cadence on the CP acknowledgement word while waiting
    /// for the FPGA.
    pub driver_poll_interval: SimDuration,
    /// Serialized (lock-held) portion of the nvdc mapping management,
    /// bounding multi-thread scaling of the Cached path.
    ///
    /// Anchor: NVDC-Cached read peak 1060 KIOPS at 8 threads (§VII-B3)
    /// ⇒ ~0.94 µs serial demand ≈ bus (~0.45 µs) + lock (~0.5 µs).
    pub mapping_serial: SimDuration,
    /// Additional fixed cost of a write op over a read on the fio path.
    ///
    /// Anchor: baseline 4 KB random write = 576 KIOPS (1.736 µs/op) vs
    /// read 1.548 µs ⇒ ~0.19 µs.
    pub fio_write_extra: SimDuration,
    /// Cost of one `clflush` (issue + writeback slot in the store path);
    /// the driver flushes 64 lines before each writeback command.
    pub clflush_line: SimDuration,
    /// Driver cost to compose and publish one CP command word (store +
    /// clflush + sfence of the command line).
    pub cp_submit: SimDuration,
}

impl PerfParams {
    /// The PoC calibration (all anchors above).
    pub fn poc() -> Self {
        PerfParams {
            fio_base_op: SimDuration::from_ns(470),
            nvdc_small_op: SimDuration::from_ns(400),
            nvdc_page_extra_read: SimDuration::from_ns(650),
            nvdc_page_extra_write: SimDuration::from_ns(550),
            copy_bytes_per_s: 5.2e9,
            page_amortization: 0.5,
            fault_base: SimDuration::from_ns(790),
            fsm_step_delay: SimDuration::from_us(6.0),
            driver_poll_interval: SimDuration::from_ns(500),
            mapping_serial: SimDuration::from_ns(500),
            fio_write_extra: SimDuration::from_ns(190),
            clflush_line: SimDuration::from_ns(20),
            cp_submit: SimDuration::from_ns(200),
        }
    }

    /// An ASIC-class projection (§VII-C): hardware FSM, no CPU in the
    /// data path.
    pub fn asic() -> Self {
        PerfParams {
            fsm_step_delay: SimDuration::from_ns(200),
            ..Self::poc()
        }
    }

    /// CPU copy time for `bytes`.
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.copy_bytes_per_s)
    }

    /// Effective page-management cost for an access touching `pages`
    /// consecutive 4 KB pages.
    pub fn page_cost(&self, per_page: SimDuration, pages: u64) -> SimDuration {
        if pages == 0 {
            return SimDuration::ZERO;
        }
        let extra = (pages - 1) as f64 * self.page_amortization;
        per_page.mul_f64(1.0 + extra)
    }
}

impl Default for PerfParams {
    fn default() -> Self {
        Self::poc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poc_anchor_baseline_4k_read() {
        // fixed + paced copy; the remaining ~0.25us to the paper's 1.548us
        // comes from row activations and refresh stalls in the event model
        // (asserted end-to-end in the fio tests).
        let p = PerfParams::poc();
        let t = p.fio_base_op + p.copy_time(4096);
        let us = t.as_us_f64();
        assert!((1.1..1.45).contains(&us), "baseline 4K floor ≈ {us:.2}us");
    }

    #[test]
    fn poc_anchor_nvdc_4k_read() {
        let p = PerfParams::poc();
        let t = p.fio_base_op + p.nvdc_page_extra_read + p.copy_time(4096);
        let us = t.as_us_f64();
        assert!((1.7..2.1).contains(&us), "cached 4K floor ≈ {us:.2}us");
    }

    #[test]
    fn poc_anchor_nvdc_small_op_beats_baseline() {
        let p = PerfParams::poc();
        assert!(p.nvdc_small_op < p.fio_base_op);
    }

    #[test]
    fn page_cost_amortizes() {
        let p = PerfParams::poc();
        let one = p.page_cost(SimDuration::from_ns(650), 1);
        let sixteen = p.page_cost(SimDuration::from_ns(650), 16);
        assert_eq!(one, SimDuration::from_ns(650));
        assert!(sixteen < one * 16, "multi-page cost must amortize");
        assert!(sixteen > one, "but still grow");
    }

    #[test]
    fn asic_only_changes_fsm() {
        let poc = PerfParams::poc();
        let asic = PerfParams::asic();
        assert!(asic.fsm_step_delay < poc.fsm_step_delay / 10);
        assert_eq!(asic.fio_base_op, poc.fio_base_op);
    }
}
