//! One per-channel NVDIMM-C shard: host + shared bus + FPGA + Z-NAND.
//!
//! [`ChannelShard`] owns every component of one memory channel — bus, iMC,
//! DRAM device, FPGA/NVMC/detector pipeline and DRAM-cache partition, each
//! with its own clock and stats — and plays the roles of the nvdc driver
//! (paper §IV-B/C), the DAX filesystem's `device_access` path, and the
//! experiment clock. All data moves through the simulated DRAM array and
//! NAND media, so end-to-end integrity is checkable; all timing moves
//! through the DDR4/NAND event models plus the calibrated software
//! constants in [`crate::perf::PerfParams`].
//!
//! The paper's artifact is a single DIMM on a single channel, so the
//! one-shard system is the default and [`System`] remains its name: it is
//! a type alias for `ChannelShard`. Multi-channel deployments compose
//! shards behind [`crate::front::MultiChannelSystem`]; because shards
//! share no mutable state they can be served in parallel by the
//! [`crate::exec::ShardExecutor`] worker pool (see [`QueuedDevice`]).

use crate::cache::DramCache;
use crate::config::{Backend, NvdimmCConfig, PAGE_BYTES};
use crate::cp::{CpAck, CpCommand, CpOpcode, ACK_ERR_UNCORRECTABLE};
use crate::error::CoreError;
use crate::faults::{FaultInjector, FaultKind, RecoveryStats};
use crate::fpga::{AckFault, Fpga};
use crate::health::{DegradeReason, HealthState, HealthTransition, RebuildReport};
use crate::layout::Layout;
use crate::proto::{AckOutcome, DriverTxn, RetryOutcome};
use crate::refresh::DetectorPipeline;
use crate::sched::RefreshPlanner;
use nvdimmc_ddr::{DramDevice, Imc, ImcConfig, RefreshMode, SharedBus, TraceEntry};
use nvdimmc_host::{CpuCache, Memory, PageTable, Tlb};
use nvdimmc_nand::Nvmc;
use nvdimmc_sim::{DeterministicRng, Histogram, SimDuration, SimTime};
use std::collections::HashMap;

/// A simulated block device with byte-granular DAX access — the interface
/// the workload generators drive. Implemented by [`ChannelShard`]
/// (NVDIMM-C), [`crate::front::MultiChannelSystem`] and
/// [`crate::baseline::EmulatedPmem`].
pub trait BlockDevice {
    /// Exported capacity in bytes.
    fn capacity_bytes(&self) -> u64;
    /// The device's simulated clock.
    fn now(&self) -> SimTime;
    /// Advances the clock (application think time between I/Os).
    fn advance(&mut self, d: SimDuration);
    /// Reads `buf.len()` bytes at `offset`; returns the operation latency.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range accesses or internal device errors.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration, CoreError>;
    /// Writes `data` at `offset`; returns the operation latency.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range accesses or internal device errors.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration, CoreError>;
}

/// A device that can serve scheduler-queued requests.
///
/// The split that makes request-level concurrency mechanistic: the
/// *device-serial* part of an operation (bus occupancy, mapping updates,
/// CP window waits) runs on the device clock inside
/// [`QueuedDevice::serve_read`]/[`QueuedDevice::serve_write`], while the
/// issuing thread's software cost ([`QueuedDevice::pre_cost`]) and CPU
/// copy ([`QueuedDevice::copy_cost`]) elapse on the thread's own timeline
/// and overlap other threads' device phases. Implemented by
/// [`ChannelShard`] and [`crate::baseline::EmulatedPmem`]; the
/// [`crate::exec::ShardExecutor`] fans batches out over implementations
/// from its worker pool, each shard claimed by exactly one worker.
pub trait QueuedDevice: Send {
    /// Exported capacity in bytes.
    fn capacity_bytes(&self) -> u64;
    /// The device's simulated clock.
    fn clock(&self) -> SimTime;
    /// Software cost the issuing thread pays *before* the device request
    /// (syscall + fs/DAX entry, per-page driver work) — fully parallel
    /// across threads.
    fn pre_cost(&self, len: u64, write: bool) -> SimDuration;
    /// The issuing thread's own CPU copy, which overlaps the
    /// device-serial transfer.
    fn copy_cost(&self, len: u64) -> SimDuration;
    /// Serves a read whose device phase may start no earlier than
    /// `not_before`; returns the completion instant on the device clock.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range accesses or internal device errors.
    fn serve_read(
        &mut self,
        not_before: SimTime,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<SimTime, CoreError>;
    /// Serves a write whose device phase may start no earlier than
    /// `not_before`; returns the completion instant on the device clock.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range accesses or internal device errors.
    fn serve_write(
        &mut self,
        not_before: SimTime,
        offset: u64,
        data: &[u8],
    ) -> Result<SimTime, CoreError>;
    /// Moves the device's captured bus trace out (zero-copy handoff: the
    /// executor takes the buffer right after serving a batch, while the
    /// device is still claimed, so capture never crosses a lock later).
    /// Devices without trace capture return an empty vec — the default.
    fn drain_trace(&mut self) -> Vec<TraceEntry> {
        Vec::new()
    }
    /// Sets the priority class tagged onto DRAM-cache slots filled by
    /// subsequent requests (QoS: a foreground tenant's fills are
    /// protected from background eviction). Devices without a priority-
    /// aware cache ignore it — the default.
    fn set_fill_priority(&mut self, _prio: u8) {}
    /// Informs the device how many requests are queued behind the one
    /// about to be served, so per-bank refresh placement can size NVMC
    /// windows down under load. Devices without a refresh planner ignore
    /// it — the default.
    fn note_queue_depth(&mut self, _depth: usize) {}
}

/// Zero-time backdoor [`Memory`] view of the DRAM array, used for the
/// *functional* data path (the CPU cache model needs a byte-addressable
/// backing store). Timing is accounted separately through the iMC.
struct DramBackdoor<'a>(&'a mut SharedBus);

impl Memory for DramBackdoor<'_> {
    // The layout mapper hands out only in-range addresses; an
    // out-of-range backdoor access is memory corruption and must stop
    // the simulation rather than fabricate data.
    #[allow(clippy::expect_used)]
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.0
            .device()
            .peek(addr, buf)
            .expect("backdoor read in range");
    }
    #[allow(clippy::expect_used)]
    fn write(&mut self, addr: u64, data: &[u8]) {
        self.0
            .device_mut()
            .poke(addr, data)
            .expect("backdoor write in range");
    }
    fn capacity(&self) -> u64 {
        self.0.device().mapping().capacity()
    }
}

/// System-level statistics.
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// DAX faults taken (pages that were not resident).
    pub faults: u64,
    /// Cachefill CP transactions issued.
    pub cachefills: u64,
    /// Faults on never-written blocks served by CPU zero-fill (no CP
    /// round-trip needed).
    pub zero_fills: u64,
    /// Writeback CP transactions issued.
    pub writebacks: u64,
    /// Merged writeback+cachefill CP transactions issued.
    pub merged_ops: u64,
    /// Read-operation latency distribution.
    pub read_latency: Histogram,
    /// Write-operation latency distribution.
    pub write_latency: Histogram,
    /// Fault-service latency distribution (miss path only).
    pub fault_latency: Histogram,
}

impl SystemStats {
    /// Accumulates another shard's statistics into this one: counters add,
    /// latency histograms merge.
    pub fn merge(&mut self, other: &SystemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.faults += other.faults;
        self.cachefills += other.cachefills;
        self.zero_fills += other.zero_fills;
        self.writebacks += other.writebacks;
        self.merged_ops += other.merged_ops;
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.fault_latency.merge(&other.fault_latency);
    }
}

/// Report from a simulated power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PowerFailReport {
    /// Dirty slots the FPGA dumped to Z-NAND.
    pub slots_flushed: u64,
    /// Bytes persisted.
    pub bytes_flushed: u64,
    /// Dirty slots abandoned because the hold-up energy budget
    /// ([`RecoveryParams::dump_slot_budget`]) ran out mid-walk.
    ///
    /// [`RecoveryParams::dump_slot_budget`]: crate::RecoveryParams::dump_slot_budget
    pub slots_dropped: u64,
    /// Whether CPU-cache/WPQ contents were preserved (ADR) or lost (the
    /// weak persistence domain of §V-C).
    pub adr_worked: bool,
}

/// Alias under the paper's own name for the §V-C dump: the report of the
/// battery-backed dirty-slot dump is exactly the power-fail report.
pub type DumpReport = PowerFailReport;

/// Class of a crash boundary — an instant between two indivisible steps
/// of the shard where a power cut can land. The crash-sweep harness
/// enumerates these in a fault-free rehearsal run, then replays the same
/// workload with one boundary armed to cut power exactly there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPointKind {
    /// Between per-page bus transfers of a host read/write/persist.
    BusOp,
    /// Between refresh windows inside a CP mailbox ack wait.
    CpWindow,
    /// After one serviced refresh window's NVMC burst (mid-REFpb in
    /// per-bank mode: each banked event is its own boundary).
    NvmcBurst,
    /// Between background maintenance steps (CRC scrub, FTL
    /// housekeeping, rebuild scrub entries).
    Maintenance,
}

impl CrashPointKind {
    /// Stable name used in crash-corpus schedule files and reports.
    pub fn name(self) -> &'static str {
        match self {
            CrashPointKind::BusOp => "bus-op",
            CrashPointKind::CpWindow => "cp-window",
            CrashPointKind::NvmcBurst => "nvmc-burst",
            CrashPointKind::Maintenance => "maintenance",
        }
    }

    /// Inverse of [`CrashPointKind::name`] (corpus replay).
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "bus-op" => Some(CrashPointKind::BusOp),
            "cp-window" => Some(CrashPointKind::CpWindow),
            "nvmc-burst" => Some(CrashPointKind::NvmcBurst),
            "maintenance" => Some(CrashPointKind::Maintenance),
            _ => None,
        }
    }
}

/// One enumerated crash boundary: its global index within the shard's
/// boundary sequence, its class, and the simulated instant it was
/// crossed during the rehearsal run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Position in the shard's deterministic boundary sequence; arming
    /// this index cuts power at exactly this point on replay.
    pub index: u64,
    /// Boundary class.
    pub kind: CrashPointKind,
    /// Simulated time the rehearsal run crossed the boundary.
    pub at: SimTime,
}

/// Crash-boundary instrumentation mode (None on the fast path).
#[derive(Debug, Clone)]
enum CrashHook {
    /// Rehearsal: record every boundary crossed.
    Enumerate { points: Vec<CrashPoint> },
    /// Torture replay: cut power when boundary `target` is crossed.
    Armed { target: u64 },
}

impl PowerFailReport {
    /// Accumulates another shard's dump into this report. Commutative
    /// and associative: counters sum, `adr_worked` ANDs (one shard's
    /// lost WPQ taints the whole machine's strong-domain claim), so the
    /// merged report is independent of shard order.
    pub fn merge(&mut self, other: &PowerFailReport) {
        self.slots_flushed += other.slots_flushed;
        self.bytes_flushed += other.bytes_flushed;
        self.slots_dropped += other.slots_dropped;
        self.adr_worked = self.adr_worked && other.adr_worked;
    }
}

/// Driver-side recovery counters (CP retransmit machinery, cache scrub,
/// power-fail accounting). Carried across power cycles by
/// [`ChannelShard::into_recovered`].
#[derive(Debug, Clone, Copy, Default)]
struct DriverRecovery {
    cp_attempt_timeouts: u64,
    cp_retransmits: u64,
    cp_recovered: u64,
    cp_transactions_failed: u64,
    slots_corrupted: u64,
    scrub_detected: u64,
    scrub_refills: u64,
    scrub_dropped_clean: u64,
    cache_corruption_surfaced: u64,
    power_fails_fired: u64,
    power_fails_recovered: u64,
    degraded_entries: u64,
    rebuilds_started: u64,
    rebuilds_completed: u64,
    rebuilds_failed: u64,
    rebuild_writebacks: u64,
    rebuild_pages_lost: u64,
}

/// One fully assembled NVDIMM-C channel.
///
/// # Example
///
/// ```
/// use nvdimmc_core::{BlockDevice, NvdimmCConfig, System};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = System::new(NvdimmCConfig::small_for_tests())?;
/// let page = vec![0xA5u8; 4096];
/// sys.write_at(0, &page)?;
/// let mut out = vec![0u8; 4096];
/// sys.read_at(0, &mut out)?;
/// assert_eq!(out, page);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ChannelShard {
    cfg: NvdimmCConfig,
    layout: Layout,
    bus: SharedBus,
    imc: Imc,
    cpu: CpuCache,
    pt: PageTable,
    tlb: Tlb,
    nvmc: Nvmc,
    fpga: Fpga,
    cache: DramCache,
    pipeline: DetectorPipeline,
    /// Per-bank refresh placement (demand steering + deadline backstop);
    /// consulted only in [`RefreshMode::PerBank`].
    planner: RefreshPlanner,
    clock: SimTime,
    phase: u8,
    /// Per-transaction CP sequence number (stable across retransmits).
    seq: u8,
    stats: SystemStats,
    /// Scheduled faults for this shard (campaign mode).
    injector: Option<FaultInjector>,
    /// Health state: `Degraded` once a CP transaction exhausted its
    /// retransmit budget (writes and NAND-backed fills are refused),
    /// `Rebuilding` while [`ChannelShard::repair`] runs.
    health: HealthState,
    /// Every health-state edge with its simulation time, for the
    /// `check::health` audit pass. Reset (like the clock) on a power
    /// cycle: each boot gets its own log.
    health_log: Vec<HealthTransition>,
    /// Conservation ledger of every rebuild attempt, oldest first.
    /// Carried across power cycles.
    rebuild_log: Vec<RebuildReport>,
    /// 1-based repair attempt counter since the shard last left
    /// `Healthy`; resets on re-admission.
    rebuild_attempt: u32,
    /// Index within a multi-channel front-end (0 for the single-channel
    /// system); carried in typed errors so callers know which shard is
    /// out.
    shard_index: u32,
    /// CRC per tracked cache slot — the driver's scrub, enabled with the
    /// injector (campaign mode only; `None` keeps the fast path exact).
    scrub: Option<HashMap<u64, u32>>,
    /// An injected power failure waiting to fire at the next checkpoint.
    power_fail_pending: bool,
    drec: DriverRecovery,
    /// Priority class tagged onto cache slots filled by the current
    /// tenant's requests (0 = default/background; set per coalesced run
    /// by the executor through [`QueuedDevice::set_fill_priority`]).
    fill_prio: u8,
    /// Round-robin position of the background CRC scrub sweep
    /// ([`ChannelShard::scrub_step`]).
    scrub_cursor: u64,
    /// Crash-boundary instrumentation (crash-sweep harness only; `None`
    /// keeps the fast path untouched).
    crash: Option<CrashHook>,
    /// Monotone count of crash boundaries crossed since the hook was
    /// (re-)armed; shared by both hook modes so an enumerated index and
    /// an armed target refer to the same boundary.
    crash_counter: u64,
}

/// The single-channel system — the paper's artifact. One shard *is* the
/// whole machine in the default configuration, so the historical name
/// stays as an alias.
pub type System = ChannelShard;

impl ChannelShard {
    /// Builds a shard from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for inconsistent configurations.
    pub fn new(cfg: NvdimmCConfig) -> Result<Self, CoreError> {
        cfg.validate().map_err(CoreError::Config)?;
        // `RecoveryParams` is the single home for recovery knobs: the
        // FTL-level retry depth is overridden from it at assembly so a
        // config cannot carry two disagreeing ladder depths.
        let mut nvmc_cfg = cfg.nvmc;
        nvmc_cfg.ftl.read_retries = cfg.recovery.nand_read_retries;
        let nvmc = Nvmc::new(nvmc_cfg)?;
        Ok(Self::assemble(cfg, nvmc))
    }

    fn assemble(cfg: NvdimmCConfig, nvmc: Nvmc) -> Self {
        let layout = Layout::new(0, cfg.cache_slots);
        // Round the DRAM capacity up to the device's 16-bank row stripe.
        let stripe = 8 * 1024 * 16;
        let dram_bytes = Layout::required_bytes(cfg.cache_slots)
            .max(cfg.dram_bytes)
            .div_ceil(stripe)
            * stripe;
        let device = DramDevice::new(cfg.timing, dram_bytes);
        let mut bus = SharedBus::new(device);
        bus.set_ca_capture(true);
        bus.set_refresh_mode(cfg.refresh_mode);
        let mut imc = Imc::new(ImcConfig::from_timing(&cfg.timing));
        imc.set_refresh_mode(cfg.refresh_mode);
        let fpga = Fpga::new(cfg.perf.fsm_step_delay, cfg.window_xfer_bytes);
        let cache = DramCache::new(cfg.cache_slots, cfg.eviction);
        let cpu = CpuCache::new(cfg.cpu_cache_bytes, 8);
        let tlb = Tlb::new(cfg.tlb_entries);
        ChannelShard {
            layout,
            bus,
            imc,
            cpu,
            pt: PageTable::new(),
            tlb,
            nvmc,
            fpga,
            cache,
            pipeline: DetectorPipeline::new(),
            planner: RefreshPlanner::new(cfg.timing.trefi),
            clock: SimTime::ZERO,
            phase: 0,
            seq: 0,
            cfg,
            stats: SystemStats::default(),
            injector: None,
            health: HealthState::Healthy,
            health_log: Vec::new(),
            rebuild_log: Vec::new(),
            rebuild_attempt: 0,
            shard_index: 0,
            scrub: None,
            power_fail_pending: false,
            drec: DriverRecovery::default(),
            fill_prio: 0,
            scrub_cursor: 0,
            crash: None,
            crash_counter: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NvdimmCConfig {
        &self.cfg
    }

    /// System statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// DRAM-cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// FPGA statistics.
    pub fn fpga_stats(&self) -> crate::fpga::FpgaStats {
        self.fpga.stats()
    }

    /// Shared-bus statistics.
    pub fn bus_stats(&self) -> nvdimmc_ddr::BusStats {
        self.bus.stats()
    }

    /// Refresh-detector statistics.
    pub fn detector_stats(&self) -> crate::refresh::DetectorStats {
        self.pipeline.detector().stats()
    }

    /// NAND controller statistics.
    pub fn nvmc_stats(&self) -> nvdimmc_nand::NvmcStats {
        self.nvmc.stats()
    }

    /// FTL statistics.
    pub fn ftl_stats(&self) -> nvdimmc_nand::FtlStats {
        self.nvmc.ftl_stats()
    }

    /// Host iMC statistics.
    pub fn imc_stats(&self) -> nvdimmc_ddr::imc::ImcStats {
        self.imc.stats()
    }

    /// Per-bank refresh-placement counters: `(demand_placed,
    /// deadline_forced)`. Both zero in rank-level mode.
    pub fn refresh_planner_counts(&self) -> (u64, u64) {
        self.planner.placement_counts()
    }

    /// The DRAM cache manager (hit rates, residency).
    pub fn cache(&self) -> &DramCache {
        &self.cache
    }

    /// Enables or disables bus-trace capture for `nvdimmc-check`.
    ///
    /// Enabling attaches a fresh [`nvdimmc_ddr::TraceRecorder`] to the
    /// shared bus and returns `None`. Disabling detaches the recorder and
    /// returns everything it captured (`Some`, possibly empty), so
    /// in-flight diagnostics are never silently dropped; it returns `None`
    /// when no recorder was attached.
    pub fn set_trace_capture(&mut self, on: bool) -> Option<Vec<TraceEntry>> {
        if on {
            self.bus.attach_recorder();
            None
        } else {
            self.bus.detach_recorder().map(|mut r| r.take())
        }
    }

    /// Drains the captured bus trace (empty when capture is off).
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        self.bus.take_trace()
    }

    /// Enables or disables the CPU-cache persistence journal for
    /// `nvdimmc-check`'s pmemcheck-style pass. Enabling clears any
    /// previously captured events.
    pub fn set_persist_journal(&mut self, on: bool) {
        self.cpu.set_journal(on);
    }

    /// Drains the captured persistence journal (empty when capture is off).
    pub fn take_persist_journal(&mut self) -> Vec<nvdimmc_host::PersistEvent> {
        self.cpu.take_journal()
    }

    fn next_phase(&mut self) -> u8 {
        // 1..=15, never 0, so an all-zero mailbox never decodes as new.
        self.phase = (self.phase % 15) + 1;
        self.phase
    }

    /// Consumes pending CA captures while the FPGA is idle (refreshes that
    /// elapsed during plain host activity; polls would observe nothing).
    /// Per-bank refreshes still feed the planner's deadline calendar so a
    /// bank refreshed during idle traffic is not immediately re-picked.
    fn drain_detector_idle(&mut self) {
        let log = self.bus.drain_ca_log();
        for ev in self.pipeline.process(&log) {
            if let Some(bank) = ev.bank {
                self.planner.note_refreshed(bank, ev.at);
            }
        }
    }

    /// Advances to (and services) the next refresh window.
    fn advance_one_window(&mut self) -> Result<(), CoreError> {
        let due = self.imc.next_refresh_due();
        let t = self.clock.max(due);
        if self.imc.refresh_mode() == RefreshMode::PerBank {
            // Steer the next REFpb toward the bank the FPGA's FSM needs,
            // stretched per current queue pressure; the planner overrides
            // the demand pick whenever a bank's tREFI deadline has lapsed.
            let wanted = self.fpga.wanted_bank(&self.bus, &self.layout);
            let pick = self.planner.choose(t, wanted);
            self.imc.set_refresh_pref(Some(pick));
        }
        let resumed = self.imc.pump_refresh(&mut self.bus, t)?;
        self.clock = self.clock.max(resumed);
        let log = self.bus.drain_ca_log();
        let events = self.pipeline.process(&log);
        if self.imc.refresh_mode() == RefreshMode::PerBank {
            // Per-bank windows are bank-scoped: each event's window stays
            // usable regardless of traffic to *other* banks, so service
            // every snooped refresh, not just the latest.
            for ev in &events {
                match ev.bank {
                    Some(bank) => {
                        self.planner.note_refreshed(bank, ev.at);
                        self.fpga.on_refresh_banked(
                            ev.at,
                            bank,
                            ev.stretch,
                            &mut self.bus,
                            &mut self.nvmc,
                            &self.layout,
                        )?;
                    }
                    None => {
                        self.fpga
                            .on_refresh(ev.at, &mut self.bus, &mut self.nvmc, &self.layout)?;
                    }
                }
                // Each serviced per-bank window is one NVMC burst edge:
                // a crash between two windows catches the FPGA's FSM
                // mid-transfer with the burst it just moved committed.
                self.crash_tick(CrashPointKind::NvmcBurst)?;
            }
            return Ok(());
        }
        // If a refresh backlog was issued back-to-back (the host clock
        // jumped), earlier windows have already been driven over by later
        // commands — the FPGA can only use the most recent one, exactly
        // as real hardware would simply miss those windows.
        if let Some(ev) = events.last() {
            self.fpga
                .on_refresh(ev.at, &mut self.bus, &mut self.nvmc, &self.layout)?;
            self.crash_tick(CrashPointKind::NvmcBurst)?;
        }
        Ok(())
    }

    /// Runs one CP transaction to completion: publish the command with
    /// explicit coherence, then drive refresh windows until the FPGA acks.
    ///
    /// Recovery contract: every attempt publishes the *same* transaction —
    /// same sequence number — under a fresh phase. When no ack arrives
    /// within the (exponentially backed-off) window budget the driver
    /// retransmits; the FPGA recognises the sequence number of a
    /// transaction it already executed and re-acks without re-running it,
    /// so a lost ack never causes double execution. A delivered *nack* is
    /// a verdict, not a loss: it surfaces typed immediately. Exhausting
    /// the retransmit budget degrades the shard.
    fn cp_transaction(
        &mut self,
        opcode: CpOpcode,
        dram_slot: u64,
        nand_page: u64,
        wb_nand_page: Option<u64>,
    ) -> Result<(), CoreError> {
        // Only `Degraded` refuses the mailbox — the `Rebuilding` repair
        // path drives its scrub traffic through this very function.
        if let HealthState::Degraded { reason, .. } = self.health {
            return Err(CoreError::DegradedShard {
                shard: self.shard_index,
                reason,
            });
        }
        // Catch up any refresh backlog from plain host activity while the
        // FPGA is still idle, so the wait loop below sees at most one new
        // refresh per iteration.
        self.imc.pump_refresh(&mut self.bus, self.clock)?;
        self.drain_detector_idle();
        self.seq = self.seq.wrapping_add(1);
        let seq = self.seq;
        let rp = self.cfg.recovery;
        // The retransmit ladder itself — attempt budget, backoff, ack
        // matching — lives in the pure [`crate::proto::DriverTxn`] shared
        // with the model checker; this loop supplies only what the pure
        // layer cannot own: phases, wall-clock windows, and the bus.
        let mut txn = DriverTxn::new(
            CpCommand {
                phase: self.next_phase(),
                opcode,
                dram_slot,
                nand_page,
                wb_nand_page,
                seq,
            },
            &rp,
        );
        loop {
            let cmd = *txn.command();
            // Publish: store + clflush + sfence (§V-B: the FPGA must read
            // up-to-date data in the next tRFC window).
            let mut line = [0u8; 64];
            line[..16].copy_from_slice(&cmd.encode());
            let cp_addr = self.layout.cp_command();
            self.cpu
                .store(&mut DramBackdoor(&mut self.bus), cp_addr, &line);
            self.cpu.clflush(&mut DramBackdoor(&mut self.bus), cp_addr);
            self.cpu.sfence();
            self.clock += self.cfg.perf.cp_submit;

            // Wait for the acknowledgement, one window at a time.
            loop {
                self.take_power_fail()?;
                // Every poll iteration is a CP mailbox transition edge:
                // the command is published but its ack may or may not have
                // landed — the crash sweep probes both sides.
                self.crash_tick(CrashPointKind::CpWindow)?;
                self.advance_one_window()?;
                self.clock += self.cfg.perf.driver_poll_interval;
                let ack_addr = self.layout.cp_ack();
                // Poll with a fresh load (drop any stale cached line first).
                self.cpu.invalidate(ack_addr);
                let mut ack_bytes = [0u8; 8];
                self.cpu
                    .load(&mut DramBackdoor(&mut self.bus), ack_addr, &mut ack_bytes);
                match txn.on_ack(CpAck::decode(&ack_bytes).as_ref()) {
                    AckOutcome::Ignored => {}
                    AckOutcome::Nacked { code } => {
                        return Err(if code == ACK_ERR_UNCORRECTABLE {
                            CoreError::MediaFailed {
                                page: nand_page,
                                code,
                            }
                        } else {
                            CoreError::Protocol(format!("FPGA nacked {opcode:?} with code {code}"))
                        });
                    }
                    AckOutcome::Accepted { recovered } => {
                        if recovered {
                            self.drec.cp_recovered += 1;
                        }
                        match opcode {
                            CpOpcode::Cachefill => self.stats.cachefills += 1,
                            CpOpcode::Writeback => self.stats.writebacks += 1,
                            CpOpcode::WritebackCachefill => self.stats.merged_ops += 1,
                            // Probes are handshake traffic, not host
                            // operations; the FPGA counts them on its side.
                            CpOpcode::Probe => {}
                        }
                        return Ok(());
                    }
                }
                if txn.on_window() {
                    break;
                }
            }
            self.drec.cp_attempt_timeouts += 1;
            match txn.next_attempt() {
                RetryOutcome::Retransmit => {
                    self.drec.cp_retransmits += 1;
                    let phase = self.next_phase();
                    txn.republish(phase);
                }
                RetryOutcome::Exhausted => break,
            }
        }
        self.drec.cp_transactions_failed += 1;
        self.enter_degraded(DegradeReason::CpExhausted {
            opcode,
            attempts: rp.cp_max_retransmits + 1,
        });
        Err(CoreError::CpTimeout {
            attempts: rp.cp_max_retransmits + 1,
        })
    }

    /// Frees a slot for `fill_page`: takes a free one, or evicts (with a
    /// writeback CP transaction when dirty). Returns `(slot, filled)`;
    /// `filled` is true when the merged writeback+cachefill opcode already
    /// loaded `fill_page` into the slot.
    fn obtain_slot(&mut self, fill_page: u64) -> Result<(u64, bool), CoreError> {
        if let Some(slot) = self.cache.take_free_slot() {
            return Ok((slot, false));
        }
        let (victim, vpage, dirty) = self
            .cache
            .pick_victim()
            .ok_or_else(|| CoreError::Protocol("no slots and nothing to evict".into()))?;
        self.scrub_victim(victim, vpage, dirty)?;
        let addr = self.layout.slot_addr(victim);
        let mut filled = false;
        if dirty {
            // Explicit coherence before the FPGA reads the slot (§V-B).
            self.cpu
                .clflush_range(&mut DramBackdoor(&mut self.bus), addr, PAGE_BYTES);
            self.cpu.sfence();
            self.clock += self.cfg.perf.clflush_line * (PAGE_BYTES / 64);
            if self.cfg.merge_wb_cf && self.nvmc.is_mapped(fill_page) {
                // §VII-C optimisation 4: one merged CP command covers both
                // the writeback and the fill, processed in parallel. (A
                // never-written fill page skips the fill entirely, so the
                // plain writeback is used instead.)
                self.cp_transaction(CpOpcode::WritebackCachefill, victim, fill_page, Some(vpage))?;
                filled = true;
            } else {
                self.cp_transaction(CpOpcode::Writeback, victim, vpage, None)?;
            }
        } else {
            self.cpu.invalidate_range(addr, PAGE_BYTES);
        }
        self.cache.evict(victim);
        self.scrub_forget(victim);
        self.pt.unmap(vpage);
        self.tlb.flush_page(vpage);
        Ok((victim, filled))
    }

    /// Ensures `page` is resident; returns its slot. This is the DAX fault
    /// path: `device_access` → cachefill (plus writeback when evicting a
    /// dirty victim).
    fn ensure_resident(&mut self, page: u64) -> Result<u64, CoreError> {
        if let Some(slot) = self.cache.lookup(page) {
            // A hit by a higher class raises the slot's protection (and a
            // default-class hit is a no-op — promote never demotes).
            self.cache.promote(slot, self.fill_prio);
            return Ok(slot);
        }
        if let HealthState::Degraded { reason, .. } = self.health {
            // Degraded mode still serves what it can without the CP
            // mailbox: a never-written page with a free slot is a pure
            // CPU zero-fill.
            if self.nvmc.is_mapped(page) || self.cache.free_slots() == 0 {
                return Err(CoreError::DegradedShard {
                    shard: self.shard_index,
                    reason,
                });
            }
        }
        let t0 = self.clock;
        self.stats.faults += 1;
        self.clock += self.cfg.perf.fault_base;
        let slot = match self.cfg.backend {
            Backend::Hypothetical { td } => self.hypothetical_fill(page, td)?,
            Backend::Znand => {
                let (slot, filled) = self.obtain_slot(page)?;
                if !filled {
                    if self.nvmc.is_mapped(page) {
                        if let Err(e) = self.cp_transaction(CpOpcode::Cachefill, slot, page, None) {
                            // The slot obtained above is mapped to no page
                            // yet; leaking it would shrink the cache on
                            // every failed fill.
                            self.cache.release(slot);
                            return Err(e);
                        }
                    } else {
                        // Never-written block: nothing to load from NAND.
                        // The driver zero-fills the slot by CPU — this is
                        // what keeps the cached phase of the file copy at
                        // SSD speed (§VII-B1) instead of paying a CP
                        // round-trip per fresh page.
                        let addr = self.layout.slot_addr(slot);
                        // Zero with non-temporal stores: straight to DRAM,
                        // no cache allocation (the post-fill invalidation
                        // below must not drop the zeros).
                        let zeros = vec![0u8; PAGE_BYTES as usize];
                        DramBackdoor(&mut self.bus).write(addr, &zeros);
                        self.clock += self.cfg.perf.copy_time(PAGE_BYTES);
                        self.stats.zero_fills += 1;
                    }
                }
                slot
            }
        };
        // Post-fill coherence: drop any stale CPU-cache lines over the
        // slot the FPGA just rewrote (§V-B).
        self.cpu
            .invalidate_range(self.layout.slot_addr(slot), PAGE_BYTES);
        self.cache.fill(slot, page);
        if self.fill_prio != 0 {
            self.cache.set_priority(slot, self.fill_prio);
        }
        self.pt.map(page, slot);
        self.tlb.insert(page, slot);
        self.scrub_note(slot);
        self.stats.fault_latency.record(self.clock.since(t0));
        Ok(slot)
    }

    /// Hypothetical-device fill (§VII-D1): the NVM access and all FPGA
    /// communication are replaced by programmable-delay window waits.
    fn hypothetical_fill(&mut self, page: u64, td: SimDuration) -> Result<u64, CoreError> {
        // One programmable delay per miss. (The paper's text prescribes
        // three tD waits, but its own Figure 12 data — 1503/914/681/451
        // MB/s at tD = 0/1.85/3.9/7.8 µs — fits ~0.8–1.0 tD per miss;
        // we reproduce the measured behaviour. See EXPERIMENTS.md.)
        self.clock += td;
        // Functional data movement without FPGA involvement.
        let slot = match self.cache.take_free_slot() {
            Some(s) => s,
            None => {
                let (victim, vpage, dirty) = self
                    .cache
                    .pick_victim()
                    .ok_or_else(|| CoreError::Protocol("no slots to evict".into()))?;
                let addr = self.layout.slot_addr(victim);
                self.cpu
                    .clflush_range(&mut DramBackdoor(&mut self.bus), addr, PAGE_BYTES);
                if dirty {
                    let mut data = vec![0u8; PAGE_BYTES as usize];
                    DramBackdoor(&mut self.bus).read(addr, &mut data);
                    self.nvmc.write_page(vpage, &data, self.clock)?;
                }
                self.cache.evict(victim);
                self.pt.unmap(vpage);
                self.tlb.flush_page(vpage);
                victim
            }
        };
        let (data, _) = self.nvmc.read_page(page, self.clock)?;
        DramBackdoor(&mut self.bus).write(self.layout.slot_addr(slot), &data);
        Ok(slot)
    }

    /// Per-op fixed software cost on the nvdc path.
    fn sw_cost(&self, len: u64, pages: u64, write: bool) -> SimDuration {
        let p = &self.cfg.perf;
        if len < 2048 {
            // Sub-page: pure DAX load/store path.
            let mut c = p.nvdc_small_op;
            if write {
                c += p.fio_write_extra;
            }
            c
        } else {
            let extra = if write {
                p.nvdc_page_extra_write
            } else {
                p.nvdc_page_extra_read
            };
            let mut c = p.fio_base_op + p.page_cost(extra, pages);
            if write {
                c += p.fio_write_extra;
            }
            c
        }
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<(), CoreError> {
        let capacity = self.nvmc.export_bytes();
        if offset + len > capacity {
            return Err(CoreError::OutOfRange { offset, capacity });
        }
        Ok(())
    }

    /// The functional+timing core of a read: per-page fault-in, TLB walk
    /// and a real bus transfer issued at `pace` per cacheline (ZERO = the
    /// tCCD-limited pipelined rate). The caller owns software costs and
    /// any CPU-copy overlap.
    fn read_core(
        &mut self,
        offset: u64,
        buf: &mut [u8],
        pace: SimDuration,
    ) -> Result<(), CoreError> {
        let first = offset / PAGE_BYTES;
        let last = (offset + buf.len() as u64 - 1) / PAGE_BYTES;
        let mut pos = 0usize;
        for page in first..=last {
            self.take_power_fail()?;
            self.crash_tick(CrashPointKind::BusOp)?;
            let slot = self.ensure_resident(page)?;
            self.scrub_verify(slot, page)?;
            let _ = self.tlb.translate(&mut self.pt, page, false);
            let in_page = (offset + pos as u64) % PAGE_BYTES;
            let n = ((PAGE_BYTES - in_page) as usize).min(buf.len() - pos);
            let addr = self.layout.slot_addr(slot) + in_page;
            // Timing: a real bus transfer (stalls behind refresh windows).
            let mut scratch = vec![0u8; n];
            let end =
                self.imc
                    .read_bytes_paced(&mut self.bus, self.clock, addr, &mut scratch, pace)?;
            self.clock = end;
            // Function: through the CPU cache (sees dirty lines).
            self.cpu.load(
                &mut DramBackdoor(&mut self.bus),
                addr,
                &mut buf[pos..pos + n],
            );
            pos += n;
        }
        Ok(())
    }

    /// Write counterpart of [`ChannelShard::read_core`].
    fn write_core(&mut self, offset: u64, data: &[u8], pace: SimDuration) -> Result<(), CoreError> {
        let first = offset / PAGE_BYTES;
        let last = (offset + data.len() as u64 - 1) / PAGE_BYTES;
        let mut pos = 0usize;
        for page in first..=last {
            self.take_power_fail()?;
            self.crash_tick(CrashPointKind::BusOp)?;
            let slot = self.ensure_resident(page)?;
            self.scrub_verify(slot, page)?;
            let _ = self.tlb.translate(&mut self.pt, page, true);
            self.cache.mark_dirty(slot);
            let in_page = (offset + pos as u64) % PAGE_BYTES;
            let n = ((PAGE_BYTES - in_page) as usize).min(data.len() - pos);
            let addr = self.layout.slot_addr(slot) + in_page;
            // Timing: bus occupancy of the store stream (read-shaped
            // transfer; tCWL ≈ tCL at this fidelity).
            let mut scratch = vec![0u8; n];
            let end =
                self.imc
                    .read_bytes_paced(&mut self.bus, self.clock, addr, &mut scratch, pace)?;
            self.clock = end;
            // Function: stores land in the CPU cache (write-back!); the
            // DRAM array only sees them at clflush/eviction time — which
            // is exactly the §V-B hazard the driver's coherence handles.
            self.cpu
                .store(&mut DramBackdoor(&mut self.bus), addr, &data[pos..pos + n]);
            self.scrub_note(slot);
            pos += n;
        }
        Ok(())
    }

    /// Flush phase of a persist: `clflush` every resident page overlapping
    /// the range, *without* the fence. Returns the flushed line count and
    /// slot addresses; pair with [`ChannelShard::persist_fence`] and
    /// [`ChannelShard::persist_claim`]. Split out so a multi-channel
    /// front-end can order one global fence after all shards' flushes.
    pub(crate) fn persist_flush(
        &mut self,
        offset: u64,
        len: u64,
    ) -> Result<(u64, Vec<u64>), CoreError> {
        self.check_range(offset, len)?;
        let first = offset / PAGE_BYTES;
        let last = (offset + len - 1) / PAGE_BYTES;
        let mut lines = 0u64;
        let mut flushed = Vec::new();
        for page in first..=last {
            // A crash between the per-page clflushes of a persist is the
            // classic torn-flush window: some lines pushed to the ADR
            // domain, the rest still in the CPU cache.
            self.crash_tick(CrashPointKind::BusOp)?;
            if let Some(slot) = self.cache.peek(page) {
                let addr = self.layout.slot_addr(slot);
                self.cpu
                    .clflush_range(&mut DramBackdoor(&mut self.bus), addr, PAGE_BYTES);
                flushed.push(addr);
                lines += PAGE_BYTES / 64;
            }
        }
        Ok((lines, flushed))
    }

    /// Fence phase of a persist: orders all prior flushes on this shard.
    pub(crate) fn persist_fence(&mut self) {
        self.cpu.sfence();
    }

    /// Claim phase of a persist: declares durability for the flushed
    /// addresses (journal claims) and charges the flush time.
    pub(crate) fn persist_claim(&mut self, flushed: &[u64], lines: u64) {
        for &addr in flushed {
            self.cpu.journal_push(nvdimmc_host::PersistEvent::Claim {
                addr,
                len: PAGE_BYTES,
            });
        }
        self.clock += self.cfg.perf.clflush_line * lines;
    }

    /// Application-level persistence: `clflush` + `sfence` over a byte
    /// range (what libpmem's `pmem_persist` does). After this returns, the
    /// range's data is in the DRAM cache slots and will survive a power
    /// failure via the FPGA's dump.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range offsets.
    pub fn persist(&mut self, offset: u64, len: u64) -> Result<(), CoreError> {
        if len == 0 {
            return Ok(());
        }
        let (lines, flushed) = self.persist_flush(offset, len)?;
        self.persist_fence();
        // Declare durability only now that the flush+fence sequence is
        // complete — the journal checker verifies the claim against the
        // events that precede it.
        self.persist_claim(&flushed, lines);
        Ok(())
    }

    /// Pre-loads `page` into the cache without counting an operation
    /// (experiment setup helper).
    ///
    /// # Errors
    ///
    /// Propagates fault-path errors.
    pub fn prefault(&mut self, page: u64) -> Result<(), CoreError> {
        self.ensure_resident(page)?;
        Ok(())
    }

    // ----- fault injection and recovery ---------------------------------

    /// Attaches a deterministic fault injector (campaign mode) and enables
    /// the DRAM-cache CRC scrub that detects injected slot corruption.
    /// Without an injector none of the recovery machinery perturbs the
    /// fast path.
    pub fn attach_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
        self.enable_scrub();
    }

    /// Enables the per-slot CRC scrub without attaching an injector
    /// (direct-injection tests). Slots already resident start untracked;
    /// they are picked up at their next fill or write.
    pub fn enable_scrub(&mut self) {
        if self.scrub.is_none() {
            self.scrub = Some(HashMap::new());
        }
    }

    /// The attached fault injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// The shard's current health state.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Whether the shard is in degraded (read-mostly) mode.
    pub fn is_degraded(&self) -> bool {
        self.health.is_degraded()
    }

    /// Why and since when the shard is degraded, if it is.
    pub fn degraded_info(&self) -> Option<(DegradeReason, SimTime)> {
        match self.health {
            HealthState::Degraded { reason, since } => Some((reason, since)),
            _ => None,
        }
    }

    /// Every recorded health-state transition of this boot, in order.
    pub fn health_log(&self) -> &[HealthTransition] {
        &self.health_log
    }

    /// The conservation ledger of every rebuild attempt, oldest first
    /// (carried across power cycles).
    pub fn rebuild_reports(&self) -> &[RebuildReport] {
        &self.rebuild_log
    }

    /// Sets the shard's index within a multi-channel front-end, so typed
    /// errors name the shard they came from.
    pub(crate) fn set_shard_index(&mut self, idx: u32) {
        self.shard_index = idx;
    }

    /// Applies one fault immediately (test/bench hook — campaigns schedule
    /// faults through [`ChannelShard::attach_injector`] instead). Returns
    /// `false` when the fault has no current target (slot corruption with
    /// no clean scrub-tracked slot resident).
    pub fn inject_fault(&mut self, kind: FaultKind) -> bool {
        self.enable_scrub();
        let mut inj = self.injector.take();
        let applied = self.apply_fault(kind, inj.as_mut().map(FaultInjector::rng_mut));
        self.injector = inj;
        applied
    }

    /// True when no scheduled or armed fault remains anywhere in the
    /// shard: the campaign drain loop runs until this holds, so every
    /// injected fault is exercised before the final verification pass.
    pub fn faults_quiescent(&self) -> bool {
        let pending = match &self.injector {
            Some(i) => i.pending() > 0,
            None => false,
        };
        !pending
            && self.nvmc.ftl().media().armed_uncorrectable() == 0
            && self.fpga.armed_faults() == 0
            && !self.power_fail_pending
    }

    /// Merged recovery statistics: NAND retry ladder (FTL), media
    /// injection, FPGA mailbox/window counters, and the driver's own
    /// retransmit/scrub/power accounting.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let m = self.nvmc.ftl().media().stats();
        let fl = self.nvmc.ftl_stats();
        let fg = self.fpga.stats();
        let d = &self.drec;
        let (sched, fired) = self.injector.as_ref().map_or(
            (
                [0; crate::faults::FAULT_KINDS],
                [0; crate::faults::FAULT_KINDS],
            ),
            FaultInjector::counts,
        );
        RecoveryStats {
            nand_faults_injected: m.uncorrectable_injected,
            nand_read_retries: fl.read_retries,
            nand_retry_recovered: fl.read_retry_recovered,
            nand_retry_remaps: fl.retry_remaps,
            nand_uncorrectable_surfaced: fl.uncorrectable_surfaced,
            acks_dropped: fg.acks_dropped,
            acks_corrupted: fg.acks_corrupted,
            cmd_decode_failures: fg.cmd_decode_failures,
            nand_errors_nacked: fg.nand_errors_nacked,
            replayed_acks: fg.replayed_acks,
            cp_attempt_timeouts: d.cp_attempt_timeouts,
            cp_retransmits: d.cp_retransmits,
            cp_recovered: d.cp_recovered,
            cp_transactions_failed: d.cp_transactions_failed,
            overrun_stalls: fg.overrun_stalls,
            bursts_split: fg.bursts_split,
            bursts_resumed: fg.bursts_resumed,
            slots_corrupted: d.slots_corrupted,
            scrub_detected: d.scrub_detected,
            scrub_refills: d.scrub_refills,
            scrub_dropped_clean: d.scrub_dropped_clean,
            cache_corruption_surfaced: d.cache_corruption_surfaced,
            power_fails_fired: d.power_fails_fired,
            power_fails_recovered: d.power_fails_recovered,
            degraded_entries: d.degraded_entries,
            rebuilds_started: d.rebuilds_started,
            rebuilds_completed: d.rebuilds_completed,
            rebuilds_failed: d.rebuilds_failed,
            rebuild_writebacks: d.rebuild_writebacks,
            rebuild_pages_lost: d.rebuild_pages_lost,
            faults_scheduled: sched.iter().sum(),
            faults_fired: fired.iter().sum(),
        }
    }

    /// Applies faults scheduled for the next operation (no-op without an
    /// injector). Faults with no current target are deferred to the next
    /// operation.
    fn begin_op(&mut self) {
        let Some(mut inj) = self.injector.take() else {
            return;
        };
        for kind in inj.begin_op() {
            if self.apply_fault(kind, Some(inj.rng_mut())) {
                inj.note_fired(kind);
            } else {
                inj.defer(kind);
            }
        }
        self.injector = Some(inj);
    }

    /// Fires a pending injected power failure, if one is armed.
    fn take_power_fail(&mut self) -> Result<(), CoreError> {
        if self.power_fail_pending {
            self.power_fail_pending = false;
            self.drec.power_fails_fired += 1;
            return Err(CoreError::PowerInterrupted);
        }
        Ok(())
    }

    // ----- crash-boundary instrumentation (crash-sweep harness) ---------

    /// Crosses one crash boundary of class `kind`: a no-op on the fast
    /// path, a recording in rehearsal mode, a power cut
    /// ([`CoreError::PowerInterrupted`]) when this boundary is armed.
    fn crash_tick(&mut self, kind: CrashPointKind) -> Result<(), CoreError> {
        let Some(hook) = &mut self.crash else {
            return Ok(());
        };
        let index = self.crash_counter;
        self.crash_counter += 1;
        match hook {
            CrashHook::Enumerate { points } => {
                points.push(CrashPoint {
                    index,
                    kind,
                    at: self.clock,
                });
                Ok(())
            }
            CrashHook::Armed { target } => {
                if index == *target {
                    // Fire once; the counter keeps advancing so a later
                    // rehearsal over the recovered shard starts fresh.
                    self.crash = None;
                    self.drec.power_fails_fired += 1;
                    Err(CoreError::PowerInterrupted)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Starts a rehearsal: every crash boundary crossed from here on is
    /// recorded (and the boundary counter restarts at zero).
    pub fn crash_enumerate_begin(&mut self) {
        self.crash = Some(CrashHook::Enumerate { points: Vec::new() });
        self.crash_counter = 0;
    }

    /// Ends a rehearsal and returns the boundaries it crossed (empty if
    /// no rehearsal was running).
    pub fn crash_enumerate_take(&mut self) -> Vec<CrashPoint> {
        match self.crash.take() {
            Some(CrashHook::Enumerate { points }) => points,
            _ => Vec::new(),
        }
    }

    /// Arms a power cut at boundary index `target` (counted from zero,
    /// restarting now). Replaying the rehearsal workload then fails with
    /// [`CoreError::PowerInterrupted`] exactly at that boundary.
    pub fn crash_arm(&mut self, target: u64) {
        self.crash = Some(CrashHook::Armed { target });
        self.crash_counter = 0;
    }

    /// Disarms any crash hook without firing it.
    pub fn crash_disarm(&mut self) {
        self.crash = None;
    }

    /// Whether an armed crash point is still waiting to fire.
    pub fn crash_armed(&self) -> bool {
        matches!(self.crash, Some(CrashHook::Armed { .. }))
    }

    /// Crash boundaries crossed since the hook was last (re)armed.
    pub fn crash_boundaries_crossed(&self) -> u64 {
        self.crash_counter
    }

    /// Crosses one [`CrashPointKind::Maintenance`] boundary. The
    /// maintenance scheduler's host drives [`ChannelShard::scrub_step`]
    /// and [`ChannelShard::ftl_housekeeping`] in bounded steps; calling
    /// this between steps lets the crash sweep land a power cut
    /// mid-scrub or mid-GC without changing those entry points.
    ///
    /// # Errors
    ///
    /// [`CoreError::PowerInterrupted`] when this boundary is armed.
    pub fn crash_tick_maintenance(&mut self) -> Result<(), CoreError> {
        self.crash_tick(CrashPointKind::Maintenance)
    }

    /// Records a health-state edge and switches to `to`.
    fn set_health(&mut self, to: HealthState) {
        self.health_log.push(HealthTransition {
            from: self.health,
            to,
            at: self.clock,
        });
        self.health = to;
    }

    /// Enters degraded mode from `Healthy` or `Rebuilding` (idempotent
    /// when already degraded, so `degraded_entries` counts entries, not
    /// bounced requests).
    fn enter_degraded(&mut self, reason: DegradeReason) {
        if !self.health.is_degraded() {
            self.drec.degraded_entries += 1;
            self.set_health(HealthState::Degraded {
                reason,
                since: self.clock,
            });
        }
    }

    fn apply_fault(&mut self, kind: FaultKind, rng: Option<&mut DeterministicRng>) -> bool {
        match kind {
            FaultKind::NandTransient => {
                self.nvmc.ftl_mut().media_mut().arm_uncorrectable(false);
                true
            }
            FaultKind::NandPersistent => {
                self.nvmc.ftl_mut().media_mut().arm_uncorrectable(true);
                true
            }
            FaultKind::AckDrop => {
                self.fpga.inject_ack_fault(AckFault::Drop);
                true
            }
            FaultKind::AckCorrupt => {
                self.fpga.inject_ack_fault(AckFault::Corrupt);
                true
            }
            FaultKind::WindowOverrun => {
                self.fpga.inject_window_stall();
                true
            }
            FaultKind::CmdCorrupt => {
                self.fpga.inject_cmd_fault();
                true
            }
            FaultKind::PowerFail => {
                self.power_fail_pending = true;
                true
            }
            FaultKind::SlotCorruption => self.corrupt_clean_slot(rng),
        }
    }

    /// Flips bytes in a clean, scrub-tracked resident slot through the
    /// DRAM backdoor — a bit-flip in the module DRAM that slipped past
    /// ECC. Returns `false` (fault deferred) when no such slot exists.
    fn corrupt_clean_slot(&mut self, rng: Option<&mut DeterministicRng>) -> bool {
        let Some(scrub) = &self.scrub else {
            return false;
        };
        let candidates: Vec<u64> = self
            .cache
            .resident_entries()
            .filter(|&(slot, _, dirty)| !dirty && scrub.contains_key(&slot))
            .map(|(slot, _, _)| slot)
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let (idx, off) = match rng {
            Some(r) => (
                r.gen_range(0..candidates.len() as u64) as usize,
                r.gen_range(0..PAGE_BYTES - 8),
            ),
            None => ((self.drec.slots_corrupted as usize) % candidates.len(), 128),
        };
        let slot = candidates[idx];
        let addr = self.layout.slot_addr(slot) + off;
        let mut bytes = [0u8; 8];
        DramBackdoor(&mut self.bus).read(addr, &mut bytes);
        for b in &mut bytes {
            *b ^= 0xFF;
        }
        DramBackdoor(&mut self.bus).write(addr, &bytes);
        // Drop any correct CPU-cached copies so loads see the corruption.
        self.cpu
            .invalidate_range(self.layout.slot_addr(slot), PAGE_BYTES);
        self.drec.slots_corrupted += 1;
        true
    }

    /// CRC of the CPU-visible view of a slot's full page.
    fn page_crc(&mut self, slot: u64) -> u32 {
        let addr = self.layout.slot_addr(slot);
        let mut data = vec![0u8; PAGE_BYTES as usize];
        self.cpu
            .load(&mut DramBackdoor(&mut self.bus), addr, &mut data);
        nvdimmc_nand::ecc::crc32(&data)
    }

    fn scrub_note(&mut self, slot: u64) {
        if self.scrub.is_none() {
            return;
        }
        let crc = self.page_crc(slot);
        if let Some(m) = self.scrub.as_mut() {
            m.insert(slot, crc);
        }
    }

    fn scrub_forget(&mut self, slot: u64) {
        if let Some(m) = self.scrub.as_mut() {
            m.remove(&slot);
        }
    }

    /// Read-path scrub: verify the tracked CRC before serving data from a
    /// slot. Corrupt clean copies heal from Z-NAND (or the zero page);
    /// corrupt dirty copies have no intact source anywhere and surface as
    /// [`CoreError::CacheCorruption`].
    fn scrub_verify(&mut self, slot: u64, page: u64) -> Result<(), CoreError> {
        let Some(expect) = self.scrub.as_ref().and_then(|m| m.get(&slot).copied()) else {
            return Ok(());
        };
        if self.page_crc(slot) == expect {
            return Ok(());
        }
        self.drec.scrub_detected += 1;
        if self.cache.is_dirty(slot) {
            self.drec.cache_corruption_surfaced += 1;
            return Err(CoreError::CacheCorruption { page });
        }
        let addr = self.layout.slot_addr(slot);
        if self.nvmc.is_mapped(page) {
            self.cp_transaction(CpOpcode::Cachefill, slot, page, None)?;
        } else {
            let zeros = vec![0u8; PAGE_BYTES as usize];
            DramBackdoor(&mut self.bus).write(addr, &zeros);
        }
        self.cpu.invalidate_range(addr, PAGE_BYTES);
        self.drec.scrub_refills += 1;
        self.scrub_note(slot);
        Ok(())
    }

    /// Scrub gate before a slot is reused: a corrupt dirty victim must
    /// surface (writing it back would poison Z-NAND); a corrupt clean
    /// victim is simply dropped — the backing copy still holds the truth.
    fn scrub_victim(&mut self, victim: u64, vpage: u64, dirty: bool) -> Result<(), CoreError> {
        let Some(expect) = self.scrub.as_ref().and_then(|m| m.get(&victim).copied()) else {
            return Ok(());
        };
        if self.page_crc(victim) == expect {
            return Ok(());
        }
        self.drec.scrub_detected += 1;
        if dirty {
            self.drec.cache_corruption_surfaced += 1;
            return Err(CoreError::CacheCorruption { page: vpage });
        }
        self.drec.scrub_dropped_clean += 1;
        Ok(())
    }

    // ----- background maintenance (idle-window self-management) ---------

    /// One bounded step of the background CRC scrub sweep: verifies up to
    /// `budget` resident slots, resuming round-robin where the previous
    /// step stopped, and returns how many were checked. Corrupt clean
    /// slots heal in place from Z-NAND; a corrupt *dirty* slot is counted
    /// ([`RecoveryStats::cache_corruption_surfaced`]) but left to surface
    /// its typed error on the next foreground access — background
    /// maintenance has no requester to report the loss to. A no-op (0)
    /// until [`ChannelShard::enable_scrub`] arms CRC tracking, so the
    /// non-campaign fast path stays byte-exact.
    pub fn scrub_step(&mut self, budget: u64) -> u64 {
        if self.scrub.is_none() {
            return 0;
        }
        let total = self.cache.slot_count();
        let mut checked = 0;
        let mut visited = 0;
        while checked < budget && visited < total {
            let slot = self.scrub_cursor % total;
            self.scrub_cursor = (self.scrub_cursor + 1) % total;
            visited += 1;
            let Some(page) = self.cache.page_of(slot) else {
                continue;
            };
            // Errors (dirty corruption) are already ledgered inside
            // scrub_verify; the sweep keeps going.
            let _ = self.scrub_verify(slot, page);
            checked += 1;
        }
        checked
    }

    /// One bounded FTL housekeeping step: proactive single-victim garbage
    /// collection when the free-block pool is getting low (see
    /// [`nvdimmc_nand::Ftl::housekeeping`]). Returns pages relocated;
    /// media errors during background relocation are swallowed — the
    /// block stays eligible and the next foreground access surfaces any
    /// persistent fault through the normal typed path.
    pub fn ftl_housekeeping(&mut self) -> u64 {
        let at = self.clock;
        self.nvmc.ftl_mut().housekeeping(at).unwrap_or(0)
    }
}

impl BlockDevice for ChannelShard {
    fn capacity_bytes(&self) -> u64 {
        self.nvmc.export_bytes()
    }

    fn now(&self) -> SimTime {
        self.clock
    }

    fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration, CoreError> {
        let len = buf.len() as u64;
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.check_range(offset, len)?;
        self.begin_op();
        let t0 = self.clock;
        let first = offset / PAGE_BYTES;
        let last = (offset + len - 1) / PAGE_BYTES;
        self.clock += self.sw_cost(len, last - first + 1, false);
        let copy = self.cfg.perf.copy_time(len);
        let transfer_start = self.clock;
        // Paced at the CPU copy rate so the transfer's refresh exposure
        // matches a load-driven copy.
        self.read_core(offset, buf, self.cfg.perf.copy_time(64))?;
        // The CPU-side copy overlaps the bus transfer; the slower wins.
        self.clock = self.clock.max(transfer_start + copy);
        self.drain_detector_idle();
        let lat = self.clock.since(t0);
        self.stats.reads += 1;
        self.stats.read_latency.record(lat);
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration, CoreError> {
        let len = data.len() as u64;
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.check_range(offset, len)?;
        self.begin_op();
        if let HealthState::Degraded { reason, .. } = self.health {
            return Err(CoreError::DegradedShard {
                shard: self.shard_index,
                reason,
            });
        }
        let t0 = self.clock;
        let first = offset / PAGE_BYTES;
        let last = (offset + len - 1) / PAGE_BYTES;
        self.clock += self.sw_cost(len, last - first + 1, true);
        let copy = self.cfg.perf.copy_time(len);
        let transfer_start = self.clock;
        self.write_core(offset, data, self.cfg.perf.copy_time(64))?;
        self.clock = self.clock.max(transfer_start + copy);
        self.drain_detector_idle();
        let lat = self.clock.since(t0);
        self.stats.writes += 1;
        self.stats.write_latency.record(lat);
        Ok(lat)
    }
}

impl QueuedDevice for ChannelShard {
    fn capacity_bytes(&self) -> u64 {
        self.nvmc.export_bytes()
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn pre_cost(&self, len: u64, write: bool) -> SimDuration {
        self.sw_cost(len, len.div_ceil(PAGE_BYTES).max(1), write)
    }

    fn copy_cost(&self, len: u64) -> SimDuration {
        self.cfg.perf.copy_time(len)
    }

    fn serve_read(
        &mut self,
        not_before: SimTime,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<SimTime, CoreError> {
        let len = buf.len() as u64;
        if len == 0 {
            return Ok(self.clock.max(not_before));
        }
        self.check_range(offset, len)?;
        self.begin_op();
        if self.clock <= not_before {
            // Device idle at arrival: the op runs lock-step with the
            // issuing thread's copy, exactly like a direct blocking call.
            self.clock = not_before;
            let t0 = self.clock;
            let copy = self.cfg.perf.copy_time(len);
            let transfer_start = self.clock;
            self.read_core(offset, buf, self.cfg.perf.copy_time(64))?;
            self.clock = self.clock.max(transfer_start + copy);
            self.drain_detector_idle();
            self.stats.reads += 1;
            self.stats.read_latency.record(self.clock.since(t0));
        } else {
            // Contended: the issuing thread's copy overlaps other
            // requests' transfers, so the shard holds only the per-op
            // serialized section — the mapping lock plus the raw
            // (tCCD-pipelined) bus occupancy. This is the serialized
            // demand the paper's Figure 9 knee comes from.
            let t0 = self.clock;
            self.clock += self.cfg.perf.mapping_serial;
            self.read_core(offset, buf, SimDuration::ZERO)?;
            self.drain_detector_idle();
            self.stats.reads += 1;
            self.stats.read_latency.record(self.clock.since(t0));
        }
        Ok(self.clock)
    }

    fn serve_write(
        &mut self,
        not_before: SimTime,
        offset: u64,
        data: &[u8],
    ) -> Result<SimTime, CoreError> {
        let len = data.len() as u64;
        if len == 0 {
            return Ok(self.clock.max(not_before));
        }
        self.check_range(offset, len)?;
        self.begin_op();
        if let HealthState::Degraded { reason, .. } = self.health {
            return Err(CoreError::DegradedShard {
                shard: self.shard_index,
                reason,
            });
        }
        if self.clock <= not_before {
            self.clock = not_before;
            let t0 = self.clock;
            let copy = self.cfg.perf.copy_time(len);
            let transfer_start = self.clock;
            self.write_core(offset, data, self.cfg.perf.copy_time(64))?;
            self.clock = self.clock.max(transfer_start + copy);
            self.drain_detector_idle();
            self.stats.writes += 1;
            self.stats.write_latency.record(self.clock.since(t0));
        } else {
            let t0 = self.clock;
            self.clock += self.cfg.perf.mapping_serial;
            self.write_core(offset, data, SimDuration::ZERO)?;
            self.drain_detector_idle();
            self.stats.writes += 1;
            self.stats.write_latency.record(self.clock.since(t0));
        }
        Ok(self.clock)
    }

    fn drain_trace(&mut self) -> Vec<TraceEntry> {
        self.take_trace()
    }

    fn set_fill_priority(&mut self, prio: u8) {
        self.fill_prio = prio;
    }

    fn note_queue_depth(&mut self, depth: usize) {
        self.planner.note_queue_depth(depth);
    }
}

impl ChannelShard {
    /// Simulates a power failure (§V-C): the battery-backed FPGA walks the
    /// metadata area and dumps every dirty slot to Z-NAND, ignoring the
    /// tRFC serialisation (the host is dead). With `adr_works == false`,
    /// CPU-cache contents that were never flushed are lost first — the
    /// weak persistence domain.
    ///
    /// # Errors
    ///
    /// Propagates NAND errors from the dump.
    pub fn power_fail(&mut self, adr_works: bool) -> Result<PowerFailReport, CoreError> {
        self.cpu
            .journal_push(nvdimmc_host::PersistEvent::PowerFail { adr: adr_works });
        if adr_works {
            self.cpu.flush_all(&mut DramBackdoor(&mut self.bus));
        } else {
            self.cpu.discard_all();
        }
        let entries: Vec<(u64, u64, bool)> = self.cache.resident_entries().collect();
        let mut report = PowerFailReport {
            adr_worked: adr_works,
            ..PowerFailReport::default()
        };
        // The hold-up budget caps how many dirty slots the dump walks;
        // `resident_entries` iterates in slot order, so which slots are
        // abandoned under a starved budget is deterministic.
        let budget = self.cfg.recovery.dump_slot_budget;
        for (slot, page, dirty) in entries {
            if !dirty {
                continue;
            }
            if report.slots_flushed >= budget {
                report.slots_dropped += 1;
                continue;
            }
            let mut data = vec![0u8; PAGE_BYTES as usize];
            let addr = self.layout.slot_addr(slot);
            DramBackdoor(&mut self.bus).read(addr, &mut data);
            self.nvmc.write_page(page, &data, self.clock)?;
            report.slots_flushed += 1;
            report.bytes_flushed += PAGE_BYTES;
        }
        Ok(report)
    }

    /// Repairs a degraded shard online: quiesce (the blocking model is
    /// quiescent by construction), re-handshake the CP mailbox under a
    /// fresh sequence epoch, CRC-scrub every resident cache slot, write
    /// back or invalidate against Z-NAND through the ordinary
    /// cachefill/writeback machinery inside extended-tRFC windows, and
    /// re-admit the shard only if the rebuild ledger audits clean.
    ///
    /// A fault during the rebuild re-degrades the shard
    /// deterministically: a CP exhaustion records its own
    /// [`DegradeReason::CpExhausted`]; any other interruption (an
    /// injected power failure, a NAND error) records
    /// [`DegradeReason::RebuildInterrupted`]. The next repair call
    /// restarts the rebuild from scratch.
    ///
    /// # Errors
    ///
    /// [`CoreError::Protocol`] when the shard is not degraded; otherwise
    /// the interrupting fault is propagated and the shard stays
    /// degraded.
    pub fn repair(&mut self) -> Result<RebuildReport, CoreError> {
        if !self.health.is_degraded() {
            return Err(CoreError::Protocol(
                "repair requires a degraded shard".into(),
            ));
        }
        self.rebuild_attempt += 1;
        let attempt = self.rebuild_attempt;
        self.drec.rebuilds_started += 1;
        self.set_health(HealthState::Rebuilding {
            attempt,
            since: self.clock,
        });
        let mut report = RebuildReport {
            attempt,
            started: self.clock,
            ..RebuildReport::default()
        };
        let run = self.rebuild(&mut report);
        report.finished = self.clock;
        let outcome = match run {
            Ok(()) => match report.audit() {
                Ok(()) => {
                    report.readmitted = true;
                    self.drec.rebuilds_completed += 1;
                    self.rebuild_attempt = 0;
                    self.set_health(HealthState::Healthy);
                    Ok(report.clone())
                }
                Err(_) => {
                    self.drec.rebuilds_failed += 1;
                    self.enter_degraded(DegradeReason::AuditFailed);
                    Err(CoreError::DegradedShard {
                        shard: self.shard_index,
                        reason: DegradeReason::AuditFailed,
                    })
                }
            },
            Err(e) => {
                self.drec.rebuilds_failed += 1;
                // A CP exhaustion inside the rebuild already re-degraded
                // the shard with its own reason; anything else (power
                // failure, NAND error) re-degrades here.
                if !self.health.is_degraded() {
                    self.enter_degraded(DegradeReason::RebuildInterrupted);
                }
                Err(e)
            }
        };
        self.rebuild_log.push(report);
        outcome
    }

    /// The rebuild pass proper. Every resident slot is CRC-verified:
    /// intact clean slots stay; intact dirty slots are written back and
    /// stay, now clean; corrupt clean slots heal from Z-NAND (or the
    /// zero page); corrupt dirty slots have no intact copy anywhere, so
    /// they are invalidated and the loss is surfaced in the report —
    /// never silently.
    fn rebuild(&mut self, report: &mut RebuildReport) -> Result<(), CoreError> {
        // Fresh sequence epoch: rebuild traffic can never alias a
        // retransmit of the transaction that killed the mailbox.
        self.seq = self.seq.wrapping_add(0x10);
        // Re-handshake through the ordinary retransmit machinery — the
        // probe consumes any mailbox faults still armed and proves the
        // FPGA acknowledges again.
        self.cp_transaction(CpOpcode::Probe, 0, 0, None)?;
        report.handshake_ok = true;

        // `resident_entries` iterates the slot array in slot order, so
        // the scrub sequence is deterministic.
        let entries: Vec<(u64, u64, bool)> = self.cache.resident_entries().collect();
        report.resident_at_start = entries.len() as u64;
        report.dirty_at_start = entries.iter().filter(|&&(_, _, dirty)| dirty).count() as u64;
        for (slot, page, dirty) in entries {
            self.take_power_fail()?;
            self.crash_tick(CrashPointKind::Maintenance)?;
            report.slots_scrubbed += 1;
            let intact = match self.scrub.as_ref().and_then(|m| m.get(&slot).copied()) {
                Some(expect) => self.page_crc(slot) == expect,
                // Untracked slot (scrub enabled mid-run): no reference
                // CRC to compare against — trusted, exactly like the
                // read-path scrub.
                None => true,
            };
            let addr = self.layout.slot_addr(slot);
            if intact {
                if dirty {
                    // Write back so DRAM and Z-NAND agree; the slot
                    // stays resident, now clean. Explicit coherence
                    // before the FPGA reads the slot (§V-B).
                    self.cpu
                        .clflush_range(&mut DramBackdoor(&mut self.bus), addr, PAGE_BYTES);
                    self.cpu.sfence();
                    self.clock += self.cfg.perf.clflush_line * (PAGE_BYTES / 64);
                    self.cp_transaction(CpOpcode::Writeback, slot, page, None)?;
                    self.cache.mark_clean(slot);
                    self.drec.rebuild_writebacks += 1;
                    report.dirty_written_back += 1;
                    self.scrub_note(slot);
                }
                continue;
            }
            self.drec.scrub_detected += 1;
            if dirty {
                // No intact copy anywhere: invalidate the slot and
                // surface the loss in the ledger.
                self.drec.cache_corruption_surfaced += 1;
                self.drec.rebuild_pages_lost += 1;
                report.pages_lost.push(page);
                self.cpu.invalidate_range(addr, PAGE_BYTES);
                self.cache.evict(slot);
                self.cache.release(slot);
                self.scrub_forget(slot);
                self.pt.unmap(page);
                self.tlb.flush_page(page);
                continue;
            }
            // Corrupt but clean: the backing copy still holds the truth.
            if self.nvmc.is_mapped(page) {
                self.cp_transaction(CpOpcode::Cachefill, slot, page, None)?;
            } else {
                let zeros = vec![0u8; PAGE_BYTES as usize];
                DramBackdoor(&mut self.bus).write(addr, &zeros);
            }
            self.cpu.invalidate_range(addr, PAGE_BYTES);
            self.drec.scrub_refills += 1;
            report.clean_healed += 1;
            self.scrub_note(slot);
        }
        Ok(())
    }

    /// Rebuilds the shard after a power failure, keeping the persistent
    /// Z-NAND contents. Volatile state (DRAM cache, CPU caches, mappings,
    /// degraded mode) starts empty, as at boot; the fault injector and
    /// the recovery counters survive so a campaign's accounting spans
    /// power cycles.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none expected for a config that
    /// already booted once).
    pub fn into_recovered(self) -> Result<ChannelShard, CoreError> {
        let fpga_prev = self.fpga.stats();
        let mut drec = self.drec;
        drec.power_fails_recovered = drec.power_fails_fired;
        let injector = self.injector;
        let scrub_on = self.scrub.is_some();
        let seq = self.seq;
        // The rebuild ledgers are per-attempt facts and span power
        // cycles; the health log restarts with the clock (fresh boot =
        // fresh `Healthy`).
        let rebuild_log = self.rebuild_log;
        let shard_index = self.shard_index;
        let mut s = Self::assemble(self.cfg, self.nvmc);
        s.fpga.carry_recovery_counters(&fpga_prev);
        s.drec = drec;
        s.injector = injector;
        if scrub_on {
            s.scrub = Some(HashMap::new());
        }
        s.seq = seq;
        s.rebuild_log = rebuild_log;
        s.shard_index = shard_index;
        Ok(s)
    }

    /// Crash-sweep variant of [`ChannelShard::into_recovered`]: reboots
    /// through the persistent-state snapshot APIs so *only* what the
    /// Z-NAND media and the FTL map actually hold survives. The NVMC's
    /// timing-side state (inflight/buffered windows, die busy times)
    /// drops with the power, exactly as on real hardware; the carried
    /// ledgers (FPGA counters, driver recovery stats, fault injector,
    /// sequence number) follow the same rules as `into_recovered`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (none expected for a config that
    /// already booted once).
    pub fn into_crash_recovered(mut self) -> Result<ChannelShard, CoreError> {
        let snap = self.nvmc.snapshot();
        let mut nvmc_cfg = self.cfg.nvmc;
        nvmc_cfg.ftl.read_retries = self.cfg.recovery.nand_read_retries;
        let mut fresh = Nvmc::new(nvmc_cfg)?;
        fresh.restore(&snap);
        self.nvmc = fresh;
        self.into_recovered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvictionPolicyKind;
    use nvdimmc_sim::DeterministicRng;

    fn sys() -> System {
        System::new(NvdimmCConfig::small_for_tests()).unwrap()
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_BYTES as usize]
    }

    /// Fills the cache with dirty pages [slots, 2*slots) after pushing
    /// pages [0, slots) out to Z-NAND, so a subsequent read of region A
    /// takes the full writeback+cachefill path.
    fn dirty_cache_with_nand_backed(s: &mut System, slots: u64) {
        for i in 0..slots {
            s.write_at(i * PAGE_BYTES, &page(0x40 | (i % 32) as u8))
                .unwrap();
        }
        for i in slots..2 * slots {
            s.write_at(i * PAGE_BYTES, &page(0x20)).unwrap();
        }
        assert!(s.stats().writebacks >= slots, "region A reached NAND");
    }

    #[test]
    fn write_read_roundtrip_hit() {
        let mut s = sys();
        s.write_at(0, &page(0xAB)).unwrap();
        let mut out = page(0);
        s.read_at(0, &mut out).unwrap();
        assert_eq!(out, page(0xAB));
    }

    #[test]
    fn byte_granular_dax_access() {
        let mut s = sys();
        s.write_at(4096 + 100, b"hello nvdimm-c").unwrap();
        let mut out = [0u8; 14];
        s.read_at(4096 + 100, &mut out).unwrap();
        assert_eq!(&out, b"hello nvdimm-c");
    }

    #[test]
    fn access_spanning_pages() {
        let mut s = sys();
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        s.write_at(4000, &data).unwrap();
        let mut out = vec![0u8; 8192];
        s.read_at(4000, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn cached_read_latency_matches_paper_anchor() {
        // NVDC-Cached 4KB random read ≈ 2.23us (448 KIOPS, Fig. 8).
        let mut s = sys();
        s.prefault(10).unwrap();
        let mut buf = page(0);
        let mut total = SimDuration::ZERO;
        for _ in 0..50 {
            total += s.read_at(10 * PAGE_BYTES, &mut buf).unwrap();
        }
        let avg = (total / 50).as_us_f64();
        assert!((1.9..2.7).contains(&avg), "cached 4K read = {avg:.2}us");
    }

    #[test]
    fn uncached_read_with_dirty_victims_matches_paper_anchor() {
        // Uncached 4KB (writeback+cachefill) ≈ 69.8us = 8.9 tREFI (§VII-B2).
        let slots = 64;
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = slots;
        let mut s = System::new(cfg).unwrap();
        dirty_cache_with_nand_backed(&mut s, slots);
        // Reading region A now needs a writeback (dirty victim) plus a
        // cachefill (A lives on NAND) per access.
        let mut total = SimDuration::ZERO;
        let n = 20u64;
        let mut buf = page(0);
        for i in 0..n {
            total += s.read_at(i * PAGE_BYTES, &mut buf).unwrap();
            assert_eq!(buf[0], 0x40 | (i % 32) as u8, "data integrity");
        }
        let avg = (total / n).as_us_f64();
        assert!((55.0..90.0).contains(&avg), "uncached WB+CF = {avg:.2}us");
        assert!(s.stats().writebacks >= n);
        assert!(s.stats().cachefills >= n);
    }

    #[test]
    fn cachefill_only_miss_is_faster_than_wb_cf() {
        let slots = 4;
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = slots;
        let mut s = System::new(cfg).unwrap();
        dirty_cache_with_nand_backed(&mut s, slots);
        // Turn the resident set clean: read fresh (zero-filled) pages so
        // every dirty page gets written back once.
        let mut buf = page(0);
        for i in 0..slots {
            s.read_at((100 + i) * PAGE_BYTES, &mut buf).unwrap();
        }
        let wb_before = s.stats().writebacks;
        // Re-reading region A now evicts clean victims: cachefill only.
        let cf_lat = s.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x40, "data came back from NAND");
        assert_eq!(s.stats().writebacks, wb_before, "no writeback needed");
        let cf = cf_lat.as_us_f64();
        assert!((20.0..60.0).contains(&cf), "cachefill-only = {cf:.2}us");
    }

    #[test]
    fn data_survives_eviction_roundtrip() {
        // Write through the cache, force eviction, read back from NAND.
        let slots = 16;
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = slots;
        let mut s = System::new(cfg).unwrap();
        for i in 0..slots {
            s.write_at(i * PAGE_BYTES, &page(0x40 | i as u8)).unwrap();
        }
        // Evict everything by touching fresh pages.
        for i in 0..slots {
            s.write_at((slots + i) * PAGE_BYTES, &page(0x80)).unwrap();
        }
        // Original data must come back from Z-NAND via cachefill.
        for i in 0..slots {
            let mut out = page(0);
            s.read_at(i * PAGE_BYTES, &mut out).unwrap();
            assert_eq!(out, page(0x40 | i as u8), "page {i} corrupted");
        }
    }

    #[test]
    fn no_bus_violations_under_random_traffic() {
        let mut s = sys();
        let mut rng = DeterministicRng::new(7);
        let span = 64 * PAGE_BYTES;
        for _ in 0..300 {
            let off = rng.gen_range(0..span - 4096);
            if rng.gen_bool(0.5) {
                s.write_at(off, &[rng.gen_u64() as u8; 128]).unwrap();
            } else {
                let mut b = [0u8; 128];
                s.read_at(off, &mut b).unwrap();
            }
        }
        // The point of the whole paper: zero rejected violations means the
        // window discipline held under real traffic.
        assert_eq!(s.bus_stats().violations_rejected, 0);
        assert!(s.detector_stats().detections > 0, "detector exercised");
    }

    #[test]
    fn per_bank_mode_no_violations_under_random_traffic() {
        let cfg = NvdimmCConfig::small_for_tests().with_refresh_mode(RefreshMode::PerBank);
        let mut s = System::new(cfg).unwrap();
        let mut rng = DeterministicRng::new(7);
        let span = 64 * PAGE_BYTES;
        for _ in 0..300 {
            let off = rng.gen_range(0..span - 4096);
            if rng.gen_bool(0.5) {
                s.write_at(off, &[rng.gen_u64() as u8; 128]).unwrap();
            } else {
                let mut b = [0u8; 128];
                s.read_at(off, &mut b).unwrap();
            }
        }
        assert_eq!(s.bus_stats().violations_rejected, 0);
        assert!(s.detector_stats().pb_detections > 0, "REFpb pins snooped");
    }

    #[test]
    fn per_bank_mode_serves_the_full_miss_path() {
        // The same dirty-cache workload that exercises writeback+cachefill
        // in rank mode must complete — with identical data — when every
        // NVMC transfer rides short per-bank windows instead.
        let slots = 8;
        let mut rank_cfg = NvdimmCConfig::small_for_tests();
        rank_cfg.cache_slots = slots;
        let pb_cfg = rank_cfg.clone().with_refresh_mode(RefreshMode::PerBank);
        let mut rank = System::new(rank_cfg).unwrap();
        let mut pb = System::new(pb_cfg).unwrap();
        dirty_cache_with_nand_backed(&mut rank, slots);
        dirty_cache_with_nand_backed(&mut pb, slots);
        let mut a = page(0);
        let mut b = page(0);
        for i in 0..slots {
            rank.read_at(i * PAGE_BYTES, &mut a).unwrap();
            pb.read_at(i * PAGE_BYTES, &mut b).unwrap();
            assert_eq!(a, b, "page {i} diverged between refresh modes");
        }
        assert!(pb.stats().cachefills >= slots, "misses served per-bank");
        assert_eq!(pb.bus_stats().violations_rejected, 0);
        let f = pb.fpga_stats();
        assert!(f.windows_used > 0, "per-bank windows carried NVMC data");
        let (demand, forced) = pb.refresh_planner_counts();
        assert!(demand + forced > 0, "planner placed refreshes");
    }

    #[test]
    fn detector_drives_fpga_not_bus_oracle() {
        let slots = 8;
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = slots;
        let mut s = System::new(cfg).unwrap();
        dirty_cache_with_nand_backed(&mut s, slots);
        let d = s.detector_stats();
        let f = s.fpga_stats();
        assert!(d.detections > 0);
        assert!(f.windows_seen > 0);
        assert!(
            f.windows_seen <= d.detections,
            "FPGA windows ({}) cannot exceed detected refreshes ({})",
            f.windows_seen,
            d.detections
        );
        assert_eq!(s.bus_stats().violations_rejected, 0);
    }

    #[test]
    fn power_fail_persists_dirty_data() {
        let mut s = sys();
        s.write_at(0, &page(0xEE)).unwrap();
        s.write_at(PAGE_BYTES, &page(0xDD)).unwrap();
        let report = s.power_fail(true).unwrap();
        assert!(report.slots_flushed >= 2);
        let mut s2 = s.into_recovered().unwrap();
        let mut out = page(0);
        s2.read_at(0, &mut out).unwrap();
        assert_eq!(out, page(0xEE));
        s2.read_at(PAGE_BYTES, &mut out).unwrap();
        assert_eq!(out, page(0xDD));
    }

    #[test]
    fn power_fail_without_adr_loses_unflushed_cpu_lines() {
        // §V-C weak persistence domain: stores still in the CPU cache at
        // power failure are lost without ADR...
        let mut s = sys();
        s.write_at(0, b"fresh-data-here!").unwrap();
        let _ = s.power_fail(false).unwrap();
        let mut s2 = s.into_recovered().unwrap();
        let mut out = [0u8; 16];
        s2.read_at(0, &mut out).unwrap();
        assert_ne!(&out, b"fresh-data-here!", "unflushed store must be lost");
    }

    #[test]
    fn persist_barrier_survives_weak_domain_power_fail() {
        // ...but data the application persisted (clflush+sfence, the
        // libpmem contract) survives via the FPGA dump.
        let mut s = sys();
        s.write_at(0, b"fresh-data-here!").unwrap();
        s.persist(0, 16).unwrap();
        let report = s.power_fail(false).unwrap();
        assert!(report.slots_flushed >= 1);
        let mut s2 = s.into_recovered().unwrap();
        let mut out = [0u8; 16];
        s2.read_at(0, &mut out).unwrap();
        assert_eq!(&out, b"fresh-data-here!");
    }

    /// A small mixed workload exercising every boundary class: writes
    /// and reads (bus ops), evictions (CP windows + NVMC bursts via the
    /// tiny cache), and a persist (torn-flush window).
    fn crash_workload(s: &mut System) -> Result<(), CoreError> {
        for i in 0..6u64 {
            s.write_at(i * PAGE_BYTES, &page(0x50 + i as u8))?;
        }
        s.persist(0, 2 * PAGE_BYTES)?;
        let mut buf = page(0);
        s.read_at(3 * PAGE_BYTES, &mut buf)?;
        Ok(())
    }

    fn tiny_cache_sys() -> System {
        let mut cfg = NvdimmCConfig::small_for_tests();
        cfg.cache_slots = 4;
        System::new(cfg).unwrap()
    }

    #[test]
    fn crash_enumeration_is_deterministic_and_multiclass() {
        let enumerate = || {
            let mut s = tiny_cache_sys();
            s.crash_enumerate_begin();
            crash_workload(&mut s).unwrap();
            s.crash_enumerate_take()
        };
        let a = enumerate();
        let b = enumerate();
        assert_eq!(a, b, "rehearsal must be bit-identical across runs");
        assert!(!a.is_empty());
        // Indices are dense and ordered.
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.index, i as u64);
        }
        // The tiny cache forces evictions, so every non-maintenance
        // boundary class appears.
        for kind in [
            CrashPointKind::BusOp,
            CrashPointKind::CpWindow,
            CrashPointKind::NvmcBurst,
        ] {
            assert!(
                a.iter().any(|p| p.kind == kind),
                "workload must cross a {} boundary",
                kind.name()
            );
        }
    }

    #[test]
    fn armed_crash_fires_at_the_exact_boundary() {
        let mut s = tiny_cache_sys();
        s.crash_enumerate_begin();
        crash_workload(&mut s).unwrap();
        let points = s.crash_enumerate_take();
        let target = points.len() as u64 / 2;
        let mut s = tiny_cache_sys();
        s.crash_arm(target);
        let err = crash_workload(&mut s).unwrap_err();
        assert!(matches!(err, CoreError::PowerInterrupted), "{err}");
        assert_eq!(
            s.crash_boundaries_crossed(),
            target + 1,
            "cut exactly at boundary {target}"
        );
        assert!(!s.crash_armed(), "hook disarms after firing");
    }

    #[test]
    fn unarmed_and_disarmed_runs_complete() {
        let mut s = tiny_cache_sys();
        crash_workload(&mut s).unwrap();
        let mut s = tiny_cache_sys();
        s.crash_arm(9_999_999);
        s.crash_disarm();
        crash_workload(&mut s).unwrap();
        assert_eq!(s.crash_boundaries_crossed(), 0, "disarm clears the hook");
    }

    #[test]
    fn crash_recovery_keeps_persisted_data_and_drops_timing_state() {
        let mut s = tiny_cache_sys();
        // Page 100 is outside the crash workload's footprint, so the
        // record's generation cannot advance after the persist.
        let rec = 100 * PAGE_BYTES;
        s.write_at(rec, b"persisted-record").unwrap();
        s.persist(rec, 16).unwrap();
        // Arm a cut inside a later batch of writes.
        s.crash_arm(3);
        let err = crash_workload(&mut s).unwrap_err();
        assert!(matches!(err, CoreError::PowerInterrupted), "{err}");
        let report = s.power_fail(true).unwrap();
        assert!(report.adr_worked);
        let mut s2 = s.into_crash_recovered().unwrap();
        let mut out = [0u8; 16];
        s2.read_at(rec, &mut out).unwrap();
        assert_eq!(&out, b"persisted-record");
        let rs = s2.recovery_stats();
        assert_eq!(rs.power_fails_fired, 1);
        assert_eq!(rs.power_fails_recovered, 1);
    }

    #[test]
    fn maintenance_tick_is_a_crash_boundary() {
        let mut s = tiny_cache_sys();
        s.crash_arm(0);
        let err = s.crash_tick_maintenance().unwrap_err();
        assert!(matches!(err, CoreError::PowerInterrupted), "{err}");
        // Once fired, further maintenance ticks pass.
        s.crash_tick_maintenance().unwrap();
    }

    #[test]
    fn crash_point_kind_names_roundtrip() {
        for kind in [
            CrashPointKind::BusOp,
            CrashPointKind::CpWindow,
            CrashPointKind::NvmcBurst,
            CrashPointKind::Maintenance,
        ] {
            assert_eq!(CrashPointKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CrashPointKind::from_name("nonsense"), None);
    }

    #[test]
    fn hypothetical_mode_scales_with_td() {
        let run = |td_us: f64| {
            let slots = 32;
            let mut cfg =
                NvdimmCConfig::small_for_tests().with_hypothetical(SimDuration::from_us(td_us));
            cfg.cache_slots = slots;
            let mut s = System::new(cfg).unwrap();
            let mut buf = page(0);
            let mut total = SimDuration::ZERO;
            for i in 0..100u64 {
                total += s.read_at((i % (slots * 4)) * PAGE_BYTES, &mut buf).unwrap();
            }
            (total / 100).as_us_f64()
        };
        let t0 = run(0.0);
        let t39 = run(3.9);
        let t78 = run(7.8);
        assert!(
            t0 < t39 && t39 < t78,
            "tD ordering: {t0:.2} {t39:.2} {t78:.2}"
        );
    }

    #[test]
    fn merged_wb_cf_beats_split_commands() {
        let run = |merged: bool| {
            let slots = 32;
            let mut cfg = NvdimmCConfig::small_for_tests();
            cfg.cache_slots = slots;
            cfg.merge_wb_cf = merged;
            let mut s = System::new(cfg).unwrap();
            dirty_cache_with_nand_backed(&mut s, slots);
            let mut buf = page(0);
            let mut total = SimDuration::ZERO;
            for i in 0..20u64 {
                total += s.read_at(i * PAGE_BYTES, &mut buf).unwrap();
            }
            (total / 20).as_us_f64()
        };
        let split = run(false);
        let merged = run(true);
        assert!(
            merged < split * 0.8,
            "merged {merged:.1}us vs split {split:.1}us"
        );
    }

    #[test]
    fn lrc_vs_lru_hit_rates_on_skewed_traffic() {
        // §VII-B5: LRU markedly improves hit rate over LRC on reuse-heavy
        // workloads.
        let run = |policy: EvictionPolicyKind| {
            let slots = 32;
            let mut cfg = NvdimmCConfig::small_for_tests().with_eviction(policy);
            cfg.cache_slots = slots;
            let mut s = System::new(cfg).unwrap();
            let mut rng = DeterministicRng::new(3);
            let zipf = nvdimmc_sim::Zipf::new(slots * 4, 0.9);
            let mut buf = page(0);
            for _ in 0..600 {
                let p = zipf.sample(&mut rng);
                s.read_at(p * PAGE_BYTES, &mut buf).unwrap();
            }
            s.cache_stats().hit_rate()
        };
        let lrc = run(EvictionPolicyKind::Lrc);
        let lru = run(EvictionPolicyKind::Lru);
        assert!(lru > lrc, "LRU {lru:.3} must beat LRC {lrc:.3}");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = sys();
        let cap = BlockDevice::capacity_bytes(&s);
        assert!(matches!(
            s.read_at(cap - 10, &mut [0u8; 64]),
            Err(CoreError::OutOfRange { .. })
        ));
    }

    #[test]
    fn fresh_page_fault_is_zero_filled_fast() {
        let mut s = sys();
        let mut buf = page(1);
        let lat = s.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, page(0), "fresh blocks read as zeros");
        assert_eq!(s.stats().zero_fills, 1);
        assert_eq!(s.stats().cachefills, 0, "no CP round-trip needed");
        assert!(lat.as_us_f64() < 10.0, "zero-fill fault = {lat:?}");
    }

    #[test]
    fn zero_length_ops_are_free() {
        let mut s = sys();
        assert_eq!(s.read_at(0, &mut []).unwrap(), SimDuration::ZERO);
        assert_eq!(s.write_at(0, &[]).unwrap(), SimDuration::ZERO);
        assert_eq!(s.stats().reads, 0);
    }

    #[test]
    fn sub_page_ops_use_fast_path() {
        let mut s = sys();
        s.prefault(0).unwrap();
        let mut small = [0u8; 128];
        let mut big = page(0);
        let lat_small = s.read_at(64, &mut small).unwrap();
        let lat_big = s.read_at(0, &mut big).unwrap();
        assert!(
            lat_small.as_us_f64() * 2.0 < lat_big.as_us_f64(),
            "128B {:.2}us vs 4K {:.2}us",
            lat_small.as_us_f64(),
            lat_big.as_us_f64()
        );
    }

    #[test]
    fn faster_trefi_slows_cached_path() {
        // Fig. 13 mechanism at system level.
        let run = |trefi_us: f64| {
            let mut s = System::new(
                NvdimmCConfig::small_for_tests().with_trefi(SimDuration::from_us(trefi_us)),
            )
            .unwrap();
            s.prefault(0).unwrap();
            let mut buf = page(0);
            let mut total = SimDuration::ZERO;
            for _ in 0..200 {
                total += s.read_at(0, &mut buf).unwrap();
            }
            (total / 200).as_us_f64()
        };
        let normal = run(7.8);
        let quad = run(1.95);
        assert!(quad > normal, "tREFI4 {quad:.3}us vs tREFI {normal:.3}us");
    }

    #[test]
    fn trace_capture_disable_returns_drained_trace() {
        // The recorder must not be silently dropped on disable.
        let mut s = sys();
        assert_eq!(s.set_trace_capture(true), None);
        s.write_at(0, &page(0x11)).unwrap();
        let trace = s.set_trace_capture(false).expect("recorder was attached");
        assert!(!trace.is_empty(), "in-flight trace must be returned");
        // Disabling again (nothing attached) yields None, not Some(empty).
        assert_eq!(s.set_trace_capture(false), None);
    }

    #[test]
    fn serve_idle_matches_direct_read_latency() {
        // A request arriving at an idle shard takes exactly the blocking
        // path's device timing: serve-completion minus arrival equals
        // read_at's latency minus its software cost.
        let mk = || {
            let mut s = sys();
            s.prefault(0).unwrap();
            // Settle both instances at the same clock phase.
            s.advance(SimDuration::from_us(3.0));
            s
        };
        let mut direct = mk();
        let mut queued = mk();
        let mut buf = page(0);
        direct.read_at(0, &mut buf).unwrap();
        let sw = queued.pre_cost(PAGE_BYTES, false);
        let arrival = queued.now() + sw;
        let done = queued.serve_read(arrival, 0, &mut buf).unwrap();
        // direct finished at its now(); the serve path must land on the
        // same instant given the same start and the same software cost.
        assert_eq!(done, direct.now());
    }

    #[test]
    fn serve_contended_holds_only_serial_section() {
        // When requests queue, the per-op device hold must be far below
        // the full blocking latency (the thread-side copy overlaps), but
        // still positive (mapping lock + bus occupancy).
        let mut s = sys();
        for p in 0..8 {
            s.prefault(p).unwrap();
        }
        let mut buf = page(0);
        // Prime the clock past zero, then issue a batch whose not_before
        // all lie in the past → contended path.
        s.advance(SimDuration::from_us(50.0));
        let t0 = s.now();
        let arrival = t0 - SimDuration::from_us(40.0);
        let mut last = t0;
        for p in 0..8u64 {
            last = s.serve_read(arrival, p * PAGE_BYTES, &mut buf).unwrap();
        }
        let per_op = last.since(t0).as_us_f64() / 8.0;
        assert!(
            (0.4..1.6).contains(&per_op),
            "contended serial hold = {per_op:.2}us/op"
        );
        // Data still correct.
        s.write_at(3 * PAGE_BYTES, &page(0x77)).unwrap();
        let done = s.serve_read(s.now(), 3 * PAGE_BYTES, &mut buf).unwrap();
        assert!(done >= s.now());
        assert_eq!(buf, page(0x77));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SystemStats {
            reads: 3,
            ..SystemStats::default()
        };
        a.read_latency.record(SimDuration::from_us(1.0));
        let mut b = SystemStats {
            reads: 5,
            faults: 2,
            ..SystemStats::default()
        };
        b.read_latency.record(SimDuration::from_us(3.0));
        a.merge(&b);
        assert_eq!(a.reads, 8);
        assert_eq!(a.faults, 2);
        assert_eq!(a.read_latency.count(), 2);
        assert_eq!(a.read_latency.mean(), SimDuration::from_us(2.0));
    }
}
