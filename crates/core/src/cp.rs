//! The communication-protocol (CP) mailbox (paper §IV-C).
//!
//! The first page of the reserved region carries 64-bit command words from
//! the nvdc driver to the FPGA and acknowledgement words back. A command
//! has four bit-fields: **Phase** (is this word new?), **Opcode**
//! (cachefill / writeback), **DRAM_Slot_ID** and **NAND_Page_ID**.

use serde::{Deserialize, Serialize};

/// What the FPGA should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpOpcode {
    /// Load a NAND page into a DRAM cache slot.
    Cachefill,
    /// Store a DRAM cache slot into a NAND page.
    Writeback,
    /// §VII-C optimisation 4: an independent writeback and cachefill
    /// merged into one command, processed in parallel by the device.
    WritebackCachefill,
    /// Mailbox liveness probe: no data movement, immediate ack. The
    /// driver's repair path uses it to re-handshake the mailbox under a
    /// fresh sequence epoch before re-admitting a shard.
    Probe,
}

impl CpOpcode {
    fn to_bits(self) -> u64 {
        match self {
            CpOpcode::Cachefill => 1,
            CpOpcode::Writeback => 2,
            CpOpcode::WritebackCachefill => 3,
            CpOpcode::Probe => 4,
        }
    }

    fn from_bits(bits: u64) -> Option<Self> {
        match bits {
            1 => Some(CpOpcode::Cachefill),
            2 => Some(CpOpcode::Writeback),
            3 => Some(CpOpcode::WritebackCachefill),
            4 => Some(CpOpcode::Probe),
            _ => None,
        }
    }
}

/// A decoded CP command.
///
/// Packed layout (64 bits):
///
/// ```text
/// [63:60] phase   [59:56] opcode   [55:28] dram_slot   [27:0] nand_page
/// ```
///
/// For [`CpOpcode::WritebackCachefill`] the `nand_page` field holds the
/// *fill* page and `wb_nand_page` rides in the adjacent word (the PoC's
/// 64-bit commands cannot carry both; the merged opcode is modelled as a
/// 2-word command).
///
/// The auxiliary word also carries an 8-bit **sequence number** at
/// `[47:40]`: the driver allocates one per transaction and keeps it fixed
/// across retransmits (only the phase changes), so the FPGA can tell a
/// retransmit of a command it already executed from genuinely new work
/// and re-acknowledge instead of re-executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpCommand {
    /// Monotonically advancing 4-bit phase; a value different from the
    /// last one the FPGA saw marks the word as new.
    pub phase: u8,
    /// Per-transaction sequence number, stable across retransmits.
    pub seq: u8,
    /// The operation.
    pub opcode: CpOpcode,
    /// Target/source DRAM cache slot.
    pub dram_slot: u64,
    /// Target/source NAND logical page.
    pub nand_page: u64,
    /// Writeback page for the merged opcode.
    pub wb_nand_page: Option<u64>,
}

/// Maximum encodable slot id (28 bits).
pub const MAX_SLOT: u64 = (1 << 28) - 1;
/// Maximum encodable NAND page id (28 bits).
pub const MAX_NAND_PAGE: u64 = (1 << 28) - 1;

impl CpCommand {
    /// Encodes into the mailbox representation: the primary 64-bit word
    /// plus an auxiliary word (non-zero only for merged commands).
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its bit-field width.
    pub fn encode(&self) -> [u8; 16] {
        assert!(self.dram_slot <= MAX_SLOT, "slot id exceeds 28 bits");
        assert!(self.nand_page <= MAX_NAND_PAGE, "page id exceeds 28 bits");
        let word = (u64::from(self.phase & 0xF) << 60)
            | (self.opcode.to_bits() << 56)
            | (self.dram_slot << 28)
            | self.nand_page;
        let aux = u64::from(self.seq) << 40
            | match self.wb_nand_page {
                Some(p) => {
                    assert!(p <= MAX_NAND_PAGE, "wb page id exceeds 28 bits");
                    p | (1 << 63)
                }
                None => 0,
            };
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&word.to_le_bytes());
        out[8..].copy_from_slice(&aux.to_le_bytes());
        out
    }

    /// Decodes a mailbox word pair. Returns `None` for an empty/garbage
    /// word (opcode 0 or unknown).
    pub fn decode(bytes: &[u8; 16]) -> Option<CpCommand> {
        let mut lo = [0u8; 8];
        let mut hi = [0u8; 8];
        lo.copy_from_slice(&bytes[..8]);
        hi.copy_from_slice(&bytes[8..]);
        let word = u64::from_le_bytes(lo);
        let aux = u64::from_le_bytes(hi);
        let opcode = CpOpcode::from_bits((word >> 56) & 0xF)?;
        Some(CpCommand {
            phase: ((word >> 60) & 0xF) as u8,
            seq: ((aux >> 40) & 0xFF) as u8,
            opcode,
            dram_slot: (word >> 28) & MAX_SLOT,
            nand_page: word & MAX_NAND_PAGE,
            wb_nand_page: (aux >> 63 == 1).then_some(aux & MAX_NAND_PAGE),
        })
    }

    /// The retransmit-identity key: everything except the phase. Two
    /// commands with the same key are the same transaction (a retransmit),
    /// possibly published under different phases.
    pub fn txn_key(&self) -> (u8, CpOpcode, u64, u64, Option<u64>) {
        (
            self.seq,
            self.opcode,
            self.dram_slot,
            self.nand_page,
            self.wb_nand_page,
        )
    }
}

/// Ack status code: success.
pub const ACK_OK: u8 = 0;
/// Ack status code: the NAND backend hit an uncorrectable media error.
pub const ACK_ERR_UNCORRECTABLE: u8 = 1;
/// Ack status code: any other NAND backend failure.
pub const ACK_ERR_NAND: u8 = 2;
/// Ack status code: the command itself was malformed (e.g. a merged
/// opcode without a writeback page).
pub const ACK_ERR_PROTOCOL: u8 = 3;

/// The acknowledgement word the FPGA writes back.
///
/// Layout: `[63:60] phase`, `[55:48] seq echo`, `[15:8] status code`,
/// `[1] ok`, `[0] valid`. On failure (`ok == false`) the status code says
/// why, so the driver can surface a typed error instead of a generic
/// protocol failure.
///
/// The **seq echo** exists because the ack slot is persistent DRAM: the
/// previous transaction's ack stays there until overwritten, and the
/// 4-bit phase wraps every 15 publishes, so with a long enough retransmit
/// ladder a stale ack can alias the phase of the transaction currently
/// waiting. Matching on phase *and* seq (see
/// [`crate::proto::ack_matches`]) makes stale cross-transaction acks
/// unambiguous — the model checker in `nvdimmc-model` found the
/// phase-only variant accepting a never-executed writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpAck {
    /// Echo of the command's phase.
    pub phase: u8,
    /// Echo of the command's per-transaction sequence number.
    pub seq: u8,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Status code ([`ACK_OK`], [`ACK_ERR_UNCORRECTABLE`], ...).
    pub code: u8,
}

impl CpAck {
    /// A success ack for `phase` answering transaction `seq`.
    pub fn ok(phase: u8, seq: u8) -> Self {
        CpAck {
            phase,
            seq,
            ok: true,
            code: ACK_OK,
        }
    }

    /// A failure ack for `phase` answering transaction `seq`, carrying
    /// `code`.
    pub fn failed(phase: u8, seq: u8, code: u8) -> Self {
        CpAck {
            phase,
            seq,
            ok: false,
            code,
        }
    }

    /// Encodes the ack word.
    pub fn encode(&self) -> [u8; 8] {
        let w = (u64::from(self.phase & 0xF) << 60)
            | (u64::from(self.seq) << 48)
            | (u64::from(self.code) << 8)
            | (u64::from(self.ok) << 1)
            | 1;
        w.to_le_bytes()
    }

    /// Decodes an ack word; `None` when the slot has never been written.
    pub fn decode(bytes: &[u8; 8]) -> Option<CpAck> {
        let w = u64::from_le_bytes(*bytes);
        if w & 1 == 0 {
            return None;
        }
        Some(CpAck {
            phase: ((w >> 60) & 0xF) as u8,
            seq: ((w >> 48) & 0xFF) as u8,
            ok: (w >> 1) & 1 == 1,
            code: ((w >> 8) & 0xFF) as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        for opcode in [CpOpcode::Cachefill, CpOpcode::Writeback, CpOpcode::Probe] {
            let cmd = CpCommand {
                phase: 7,
                seq: 0x5A,
                opcode,
                dram_slot: 123_456,
                nand_page: 9_876_543,
                wb_nand_page: None,
            };
            assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
        }
    }

    #[test]
    fn merged_command_roundtrip() {
        let cmd = CpCommand {
            phase: 3,
            seq: 0xFF,
            opcode: CpOpcode::WritebackCachefill,
            dram_slot: 1,
            nand_page: 2,
            wb_nand_page: Some(MAX_NAND_PAGE),
        };
        assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
    }

    #[test]
    fn zero_word_decodes_none() {
        assert_eq!(CpCommand::decode(&[0u8; 16]), None);
    }

    #[test]
    fn phase_wraps_at_four_bits() {
        let cmd = CpCommand {
            phase: 0x1F, // only low 4 bits survive
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 0,
            wb_nand_page: None,
        };
        assert_eq!(CpCommand::decode(&cmd.encode()).unwrap().phase, 0xF);
    }

    #[test]
    fn field_extremes_roundtrip() {
        let cmd = CpCommand {
            phase: 0xF,
            seq: 0xAB,
            opcode: CpOpcode::Writeback,
            dram_slot: MAX_SLOT,
            nand_page: MAX_NAND_PAGE,
            wb_nand_page: None,
        };
        assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
    }

    #[test]
    #[should_panic(expected = "slot id exceeds")]
    fn oversized_slot_panics() {
        CpCommand {
            phase: 0,
            seq: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: MAX_SLOT + 1,
            nand_page: 0,
            wb_nand_page: None,
        }
        .encode();
    }

    #[test]
    fn ack_roundtrip_and_empty() {
        assert_eq!(CpAck::decode(&[0u8; 8]), None);
        for ok in [true, false] {
            let ack = CpAck {
                phase: 9,
                seq: 0x7E,
                ok,
                code: 2,
            };
            assert_eq!(CpAck::decode(&ack.encode()), Some(ack));
        }
    }

    #[test]
    fn distinct_phases_distinct_words() {
        let mk = |phase| {
            CpCommand {
                phase,
                seq: 0,
                opcode: CpOpcode::Cachefill,
                dram_slot: 5,
                nand_page: 6,
                wb_nand_page: None,
            }
            .encode()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn seq_survives_roundtrip_and_differs_from_phase() {
        let cmd = CpCommand {
            phase: 1,
            seq: 0xC3,
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 0,
            wb_nand_page: None,
        };
        let out = CpCommand::decode(&cmd.encode()).unwrap();
        assert_eq!(out.seq, 0xC3);
        // Same transaction republished under a new phase: same key.
        let retx = CpCommand { phase: 2, ..cmd };
        assert_eq!(cmd.txn_key(), retx.txn_key());
        assert_ne!(cmd.encode(), retx.encode());
    }

    #[test]
    fn ack_code_roundtrip() {
        for code in [
            ACK_OK,
            ACK_ERR_UNCORRECTABLE,
            ACK_ERR_NAND,
            ACK_ERR_PROTOCOL,
        ] {
            let ack = CpAck::failed(5, 0x42, code);
            assert_eq!(CpAck::decode(&ack.encode()), Some(ack));
        }
        assert!(CpAck::decode(&CpAck::ok(3, 1).encode()).unwrap().ok);
    }

    #[test]
    fn ack_seq_echo_distinguishes_aliased_phases() {
        // Two transactions, same (wrapped) phase: the seq echo tells the
        // acks apart even though the phases collide.
        let a = CpAck::ok(5, 41);
        let b = CpAck::ok(5, 42);
        assert_ne!(a.encode(), b.encode());
        assert_eq!(CpAck::decode(&a.encode()).unwrap().seq, 41);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_opcode() -> impl Strategy<Value = CpOpcode> {
        prop_oneof![
            Just(CpOpcode::Cachefill),
            Just(CpOpcode::Writeback),
            Just(CpOpcode::WritebackCachefill),
            Just(CpOpcode::Probe),
        ]
    }

    proptest! {
        #[test]
        fn command_roundtrips_for_all_fields(
            phase in 0u8..16,
            seq in any::<u8>(),
            opcode in arb_opcode(),
            dram_slot in 0u64..=MAX_SLOT,
            nand_page in 0u64..=MAX_NAND_PAGE,
            wb in prop::option::of(0u64..=MAX_NAND_PAGE),
        ) {
            let cmd = CpCommand { phase, seq, opcode, dram_slot, nand_page, wb_nand_page: wb };
            prop_assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
        }

        /// Arbitrary mailbox bytes never panic the decoder, and whatever
        /// decodes is in-range and re-encodable.
        #[test]
        fn command_decode_is_total_and_canonical(bytes in prop::collection::vec(any::<u8>(), 16)) {
            let bytes: [u8; 16] = bytes.try_into().expect("fixed-size vec");
            match CpCommand::decode(&bytes) {
                None => {}
                Some(cmd) => {
                    prop_assert!(cmd.phase < 16);
                    prop_assert!(cmd.dram_slot <= MAX_SLOT);
                    prop_assert!(cmd.nand_page <= MAX_NAND_PAGE);
                    if let Some(p) = cmd.wb_nand_page {
                        prop_assert!(p <= MAX_NAND_PAGE);
                    }
                    // Decoded commands re-encode without panicking, and the
                    // re-encoded form decodes back to the same command.
                    prop_assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
                }
            }
        }

        /// A single corrupted byte in an encoded command either kills the
        /// word (decode `None` — droppable) or yields an in-range command;
        /// it can never panic or smuggle out-of-range fields through.
        #[test]
        fn corrupted_command_byte_is_safe(
            phase in 0u8..16,
            seq in any::<u8>(),
            opcode in arb_opcode(),
            dram_slot in 0u64..=MAX_SLOT,
            nand_page in 0u64..=MAX_NAND_PAGE,
            idx in 0usize..16,
            flip in 1u8..=255,
        ) {
            let cmd = CpCommand { phase, seq, opcode, dram_slot, nand_page, wb_nand_page: None };
            let mut bytes = cmd.encode();
            bytes[idx] ^= flip;
            if let Some(out) = CpCommand::decode(&bytes) {
                prop_assert!(out.dram_slot <= MAX_SLOT);
                prop_assert!(out.nand_page <= MAX_NAND_PAGE);
            }
        }

        #[test]
        fn ack_roundtrips_for_all_fields(
            phase in 0u8..16,
            seq in any::<u8>(),
            ok in any::<bool>(),
            code in any::<u8>(),
        ) {
            let ack = CpAck { phase, seq, ok, code };
            prop_assert_eq!(CpAck::decode(&ack.encode()), Some(ack));
        }

        /// Ack decode is total over arbitrary bytes.
        #[test]
        fn ack_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 8)) {
            let bytes: [u8; 8] = bytes.try_into().expect("fixed-size vec");
            if let Some(ack) = CpAck::decode(&bytes) {
                prop_assert!(ack.phase < 16);
                prop_assert_eq!(CpAck::decode(&ack.encode()), Some(ack));
            }
        }
    }
}
