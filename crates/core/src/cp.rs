//! The communication-protocol (CP) mailbox (paper §IV-C).
//!
//! The first page of the reserved region carries 64-bit command words from
//! the nvdc driver to the FPGA and acknowledgement words back. A command
//! has four bit-fields: **Phase** (is this word new?), **Opcode**
//! (cachefill / writeback), **DRAM_Slot_ID** and **NAND_Page_ID**.

use serde::{Deserialize, Serialize};

/// What the FPGA should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpOpcode {
    /// Load a NAND page into a DRAM cache slot.
    Cachefill,
    /// Store a DRAM cache slot into a NAND page.
    Writeback,
    /// §VII-C optimisation 4: an independent writeback and cachefill
    /// merged into one command, processed in parallel by the device.
    WritebackCachefill,
}

impl CpOpcode {
    fn to_bits(self) -> u64 {
        match self {
            CpOpcode::Cachefill => 1,
            CpOpcode::Writeback => 2,
            CpOpcode::WritebackCachefill => 3,
        }
    }

    fn from_bits(bits: u64) -> Option<Self> {
        match bits {
            1 => Some(CpOpcode::Cachefill),
            2 => Some(CpOpcode::Writeback),
            3 => Some(CpOpcode::WritebackCachefill),
            _ => None,
        }
    }
}

/// A decoded CP command.
///
/// Packed layout (64 bits):
///
/// ```text
/// [63:60] phase   [59:56] opcode   [55:28] dram_slot   [27:0] nand_page
/// ```
///
/// For [`CpOpcode::WritebackCachefill`] the `nand_page` field holds the
/// *fill* page and `wb_nand_page` rides in the adjacent word (the PoC's
/// 64-bit commands cannot carry both; the merged opcode is modelled as a
/// 2-word command).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpCommand {
    /// Monotonically advancing 4-bit phase; a value different from the
    /// last one the FPGA saw marks the word as new.
    pub phase: u8,
    /// The operation.
    pub opcode: CpOpcode,
    /// Target/source DRAM cache slot.
    pub dram_slot: u64,
    /// Target/source NAND logical page.
    pub nand_page: u64,
    /// Writeback page for the merged opcode.
    pub wb_nand_page: Option<u64>,
}

/// Maximum encodable slot id (28 bits).
pub const MAX_SLOT: u64 = (1 << 28) - 1;
/// Maximum encodable NAND page id (28 bits).
pub const MAX_NAND_PAGE: u64 = (1 << 28) - 1;

impl CpCommand {
    /// Encodes into the mailbox representation: the primary 64-bit word
    /// plus an auxiliary word (non-zero only for merged commands).
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its bit-field width.
    pub fn encode(&self) -> [u8; 16] {
        assert!(self.dram_slot <= MAX_SLOT, "slot id exceeds 28 bits");
        assert!(self.nand_page <= MAX_NAND_PAGE, "page id exceeds 28 bits");
        let word = (u64::from(self.phase & 0xF) << 60)
            | (self.opcode.to_bits() << 56)
            | (self.dram_slot << 28)
            | self.nand_page;
        let aux = match self.wb_nand_page {
            Some(p) => {
                assert!(p <= MAX_NAND_PAGE, "wb page id exceeds 28 bits");
                p | (1 << 63)
            }
            None => 0,
        };
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&word.to_le_bytes());
        out[8..].copy_from_slice(&aux.to_le_bytes());
        out
    }

    /// Decodes a mailbox word pair. Returns `None` for an empty/garbage
    /// word (opcode 0 or unknown).
    pub fn decode(bytes: &[u8; 16]) -> Option<CpCommand> {
        let word = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let aux = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
        let opcode = CpOpcode::from_bits((word >> 56) & 0xF)?;
        Some(CpCommand {
            phase: ((word >> 60) & 0xF) as u8,
            opcode,
            dram_slot: (word >> 28) & MAX_SLOT,
            nand_page: word & MAX_NAND_PAGE,
            wb_nand_page: (aux >> 63 == 1).then_some(aux & MAX_NAND_PAGE),
        })
    }
}

/// The acknowledgement word the FPGA writes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpAck {
    /// Echo of the command's phase.
    pub phase: u8,
    /// Whether the operation succeeded.
    pub ok: bool,
}

impl CpAck {
    /// Encodes the ack word.
    pub fn encode(&self) -> [u8; 8] {
        let w = (u64::from(self.phase & 0xF) << 60) | (u64::from(self.ok) << 1) | 1;
        w.to_le_bytes()
    }

    /// Decodes an ack word; `None` when the slot has never been written.
    pub fn decode(bytes: &[u8; 8]) -> Option<CpAck> {
        let w = u64::from_le_bytes(*bytes);
        if w & 1 == 0 {
            return None;
        }
        Some(CpAck {
            phase: ((w >> 60) & 0xF) as u8,
            ok: (w >> 1) & 1 == 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        for opcode in [CpOpcode::Cachefill, CpOpcode::Writeback] {
            let cmd = CpCommand {
                phase: 7,
                opcode,
                dram_slot: 123_456,
                nand_page: 9_876_543,
                wb_nand_page: None,
            };
            assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
        }
    }

    #[test]
    fn merged_command_roundtrip() {
        let cmd = CpCommand {
            phase: 3,
            opcode: CpOpcode::WritebackCachefill,
            dram_slot: 1,
            nand_page: 2,
            wb_nand_page: Some(MAX_NAND_PAGE),
        };
        assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
    }

    #[test]
    fn zero_word_decodes_none() {
        assert_eq!(CpCommand::decode(&[0u8; 16]), None);
    }

    #[test]
    fn phase_wraps_at_four_bits() {
        let cmd = CpCommand {
            phase: 0x1F, // only low 4 bits survive
            opcode: CpOpcode::Cachefill,
            dram_slot: 0,
            nand_page: 0,
            wb_nand_page: None,
        };
        assert_eq!(CpCommand::decode(&cmd.encode()).unwrap().phase, 0xF);
    }

    #[test]
    fn field_extremes_roundtrip() {
        let cmd = CpCommand {
            phase: 0xF,
            opcode: CpOpcode::Writeback,
            dram_slot: MAX_SLOT,
            nand_page: MAX_NAND_PAGE,
            wb_nand_page: None,
        };
        assert_eq!(CpCommand::decode(&cmd.encode()), Some(cmd));
    }

    #[test]
    #[should_panic(expected = "slot id exceeds")]
    fn oversized_slot_panics() {
        CpCommand {
            phase: 0,
            opcode: CpOpcode::Cachefill,
            dram_slot: MAX_SLOT + 1,
            nand_page: 0,
            wb_nand_page: None,
        }
        .encode();
    }

    #[test]
    fn ack_roundtrip_and_empty() {
        assert_eq!(CpAck::decode(&[0u8; 8]), None);
        for ok in [true, false] {
            let ack = CpAck { phase: 9, ok };
            assert_eq!(CpAck::decode(&ack.encode()), Some(ack));
        }
    }

    #[test]
    fn distinct_phases_distinct_words() {
        let mk = |phase| {
            CpCommand {
                phase,
                opcode: CpOpcode::Cachefill,
                dram_slot: 5,
                nand_page: 6,
                wb_nand_page: None,
            }
            .encode()
        };
        assert_ne!(mk(1), mk(2));
    }
}
