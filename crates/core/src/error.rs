//! Error type for the NVDIMM-C core.

use nvdimmc_ddr::BusViolation;
use nvdimmc_nand::NandError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the NVDIMM-C device, driver or baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A shared-bus discipline violation leaked through — on hardware this
    /// is a memory error; in the simulator it means a bug in the window
    /// scheduler.
    Bus(BusViolation),
    /// The NAND back end failed.
    Nand(NandError),
    /// An access fell outside the exported block device.
    OutOfRange {
        /// Offending byte offset.
        offset: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The CP mailbox protocol desynchronised (phase mismatch).
    Protocol(String),
    /// Configuration rejected.
    Config(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Bus(v) => write!(f, "bus violation: {v}"),
            CoreError::Nand(e) => write!(f, "nand error: {e}"),
            CoreError::OutOfRange { offset, capacity } => {
                write!(f, "offset {offset:#x} out of range ({capacity:#x})")
            }
            CoreError::Protocol(msg) => write!(f, "CP protocol error: {msg}"),
            CoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Bus(v) => Some(v),
            CoreError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BusViolation> for CoreError {
    fn from(v: BusViolation) -> Self {
        CoreError::Bus(v)
    }
}

impl From<NandError> for CoreError {
    fn from(e: NandError) -> Self {
        CoreError::Nand(e)
    }
}
