//! Error type for the NVDIMM-C core.

use crate::health::DegradeReason;
use crate::qos::TenantId;
use nvdimmc_ddr::BusViolation;
use nvdimmc_nand::NandError;
use nvdimmc_sim::SimDuration;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the NVDIMM-C device, driver or baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A shared-bus discipline violation leaked through — on hardware this
    /// is a memory error; in the simulator it means a bug in the window
    /// scheduler.
    Bus(BusViolation),
    /// The NAND back end failed.
    Nand(NandError),
    /// An access fell outside the exported block device.
    OutOfRange {
        /// Offending byte offset.
        offset: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The CP mailbox protocol desynchronised (phase mismatch).
    Protocol(String),
    /// Configuration rejected.
    Config(String),
    /// A CP transaction exhausted its retransmit budget without an ack;
    /// the shard has entered degraded mode.
    CpTimeout {
        /// Publish attempts made (1 initial + retransmits).
        attempts: u32,
    },
    /// The shard is degraded (a CP transaction previously failed): writes
    /// and NAND-backed fills are refused until a repair runs.
    DegradedShard {
        /// Index of the degraded shard (0 for a single-channel system).
        shard: u32,
        /// Why the shard degraded.
        reason: DegradeReason,
    },
    /// The shard is rebuilding (or repair attempts were exhausted without
    /// re-admission); retry after the hinted delay.
    Rebuilding {
        /// Index of the rebuilding shard.
        shard: u32,
        /// How long the caller should wait before retrying.
        retry_after: SimDuration,
    },
    /// The shard's request queue is full and the failover policy sheds
    /// load instead of blocking; retry after the hinted delay.
    ///
    /// `queued` / `queue_limit` expose the shard's congestion at shed
    /// time so callers can back off *proportionally* (deep queue → long
    /// wait) instead of hot-looping on the fixed hint.
    Overloaded {
        /// Index of the overloaded shard.
        shard: u32,
        /// Base delay the caller should wait before retrying; scale it by
        /// `queued / queue_limit` for fairness under congestion.
        retry_after: SimDuration,
        /// Requests sitting in the shard's queue when the request bounced.
        queued: usize,
        /// The queue's configured bound (`queued == queue_limit` when the
        /// bounce came from a full queue).
        queue_limit: usize,
    },
    /// The tenant exhausted its bytes/s or ops/s quota; retry after the
    /// hinted delay (the earliest instant the token bucket will cover
    /// the request).
    Throttled {
        /// The tenant whose quota ran dry.
        tenant: TenantId,
        /// How long the caller should wait before retrying.
        retry_after: SimDuration,
    },
    /// A simulated power failure interrupted the operation; recover with
    /// the power-fail dump and a rebuild.
    PowerInterrupted,
    /// The DRAM-cache scrub found corruption in a dirty slot — no clean
    /// copy exists anywhere, so the loss must surface.
    CacheCorruption {
        /// The NAND logical page whose cached copy was corrupted.
        page: u64,
    },
    /// The NAND backend reported an uncorrectable media error for a page
    /// during a CP transaction.
    MediaFailed {
        /// The failing NAND logical page.
        page: u64,
        /// The CP ack status code (see [`crate::cp::ACK_ERR_UNCORRECTABLE`]).
        code: u8,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Bus(v) => write!(f, "bus violation: {v}"),
            CoreError::Nand(e) => write!(f, "nand error: {e}"),
            CoreError::OutOfRange { offset, capacity } => {
                write!(f, "offset {offset:#x} out of range ({capacity:#x})")
            }
            CoreError::Protocol(msg) => write!(f, "CP protocol error: {msg}"),
            CoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::CpTimeout { attempts } => {
                write!(f, "CP transaction unacked after {attempts} attempts")
            }
            CoreError::DegradedShard { shard, reason } => {
                write!(f, "shard {shard} is degraded: {reason}")
            }
            CoreError::Rebuilding { shard, retry_after } => {
                write!(f, "shard {shard} is rebuilding; retry after {retry_after}")
            }
            CoreError::Overloaded {
                shard,
                retry_after,
                queued,
                queue_limit,
            } => {
                write!(
                    f,
                    "shard {shard} is overloaded ({queued}/{queue_limit} queued); \
                     retry after {retry_after}"
                )
            }
            CoreError::Throttled {
                tenant,
                retry_after,
            } => {
                write!(
                    f,
                    "tenant {tenant} exceeded its quota; retry after {retry_after}"
                )
            }
            CoreError::PowerInterrupted => write!(f, "power failure interrupted the operation"),
            CoreError::CacheCorruption { page } => {
                write!(f, "dirty cache slot for page {page:#x} is corrupt")
            }
            CoreError::MediaFailed { page, code } => {
                write!(f, "NAND media failed for page {page:#x} (ack code {code})")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Bus(v) => Some(v),
            CoreError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BusViolation> for CoreError {
    fn from(v: BusViolation) -> Self {
        CoreError::Bus(v)
    }
}

impl From<NandError> for CoreError {
    fn from(e: NandError) -> Self {
        CoreError::Nand(e)
    }
}
