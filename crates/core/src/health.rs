//! Per-shard health state machine: `Healthy → Degraded → Rebuilding →
//! Healthy`.
//!
//! PR 4 left a shard that exhausted its CP retransmit budget degraded
//! *forever*. This module adds the vocabulary for online repair: a typed
//! degradation reason, an explicit state machine with a transition log,
//! a per-rebuild conservation ledger ([`RebuildReport`]) that must audit
//! clean before the shard is re-admitted, and the front-end
//! [`FailoverPolicy`] that decides whether degraded shards are repaired
//! automatically and whether full queues shed load with typed errors.
//!
//! The legal transitions are:
//!
//! ```text
//!          CP exhaustion / requested
//! Healthy ──────────────────────────▶ Degraded
//!    ▲                                   │ repair() begins
//!    │ audit clean                       ▼
//!    └────────────────────────────── Rebuilding
//!                                        │ fault / CP failure / audit dirty
//!                                        ▼
//!                                    Degraded  (re-entry, fresh reason)
//! ```
//!
//! Every transition is recorded with its simulation time so the
//! `check::health` pass can independently replay the log and reject any
//! edge not in this diagram.

use crate::cp::CpOpcode;
use nvdimmc_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Why a shard left service (typed, not a `String`, so callers and the
/// soak report can aggregate and explain outages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradeReason {
    /// A CP transaction exhausted its retransmit budget without an ack.
    CpExhausted {
        /// The opcode of the transaction that timed out.
        opcode: CpOpcode,
        /// Publish attempts made (1 initial + retransmits).
        attempts: u32,
    },
    /// A new fault (power interruption or another CP exhaustion) landed
    /// while the shard was rebuilding; the rebuild aborted.
    RebuildInterrupted,
    /// The post-rebuild conservation audit found the ledger unclean, so
    /// the shard was refused re-admission.
    AuditFailed,
    /// An external caller explicitly took the shard out of service.
    Requested,
}

impl core::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DegradeReason::CpExhausted { opcode, attempts } => {
                write!(f, "CP {opcode:?} unacked after {attempts} attempts")
            }
            DegradeReason::RebuildInterrupted => write!(f, "rebuild interrupted by a fault"),
            DegradeReason::AuditFailed => write!(f, "post-rebuild audit failed"),
            DegradeReason::Requested => write!(f, "taken out of service on request"),
        }
    }
}

/// The health of one channel shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HealthState {
    /// In service: all request kinds admitted.
    #[default]
    Healthy,
    /// Out of service: writes and NAND-backed fills are refused until a
    /// repair runs.
    Degraded {
        /// Why the shard degraded.
        reason: DegradeReason,
        /// Simulation time of the transition.
        since: SimTime,
    },
    /// A repair is in progress: the shard is quiesced for host requests
    /// but its own CP mailbox is live for scrub traffic.
    Rebuilding {
        /// 1-based repair attempt counter since the last healthy period.
        attempt: u32,
        /// Simulation time the rebuild started.
        since: SimTime,
    },
}

impl HealthState {
    /// True in the `Healthy` state.
    pub fn is_healthy(&self) -> bool {
        matches!(self, HealthState::Healthy)
    }

    /// True in the `Degraded` state.
    pub fn is_degraded(&self) -> bool {
        matches!(self, HealthState::Degraded { .. })
    }

    /// True in the `Rebuilding` state.
    pub fn is_rebuilding(&self) -> bool {
        matches!(self, HealthState::Rebuilding { .. })
    }

    /// Short state name for reports and latency bucketing.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded { .. } => "degraded",
            HealthState::Rebuilding { .. } => "rebuilding",
        }
    }
}

/// One recorded edge of the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// State before the edge.
    pub from: HealthState,
    /// State after the edge.
    pub to: HealthState,
    /// Simulation time the edge fired.
    pub at: SimTime,
}

/// The conservation ledger of one rebuild attempt.
///
/// Every resident slot at rebuild start must be accounted for exactly
/// once: scrubbed intact, healed from NAND (corrupt but clean), written
/// back (dirty and intact), or invalidated with its page recorded in
/// [`RebuildReport::pages_lost`] (dirty *and* corrupt — no clean copy
/// exists anywhere, so the loss must surface rather than vanish).
/// [`RebuildReport::audit`] checks the arithmetic; the shard is only
/// re-admitted when it passes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RebuildReport {
    /// 1-based attempt number since the shard last left `Healthy`.
    pub attempt: u32,
    /// Rebuild start time.
    pub started: SimTime,
    /// Rebuild end time (success or abort).
    pub finished: SimTime,
    /// Whether the CP mailbox re-handshake (Probe under a fresh sequence
    /// epoch) completed.
    pub handshake_ok: bool,
    /// Cache slots resident when the rebuild began.
    pub resident_at_start: u64,
    /// How many of those were dirty.
    pub dirty_at_start: u64,
    /// Slots CRC-checked during the scrub pass.
    pub slots_scrubbed: u64,
    /// Corrupt-but-clean slots re-filled from Z-NAND (or re-zeroed).
    pub clean_healed: u64,
    /// Dirty intact slots written back to Z-NAND.
    pub dirty_written_back: u64,
    /// Shard-local NAND pages whose only copy was a corrupt dirty slot:
    /// invalidated, and the loss surfaced here.
    pub pages_lost: Vec<u64>,
    /// Whether the shard was re-admitted after this attempt.
    pub readmitted: bool,
}

impl RebuildReport {
    /// Audits the rebuild ledger: handshake done, every starting slot
    /// scrubbed, every dirty slot either written back or surfaced as
    /// lost, and time monotone.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        if !self.handshake_ok {
            return Err("CP mailbox re-handshake did not complete".into());
        }
        if self.slots_scrubbed != self.resident_at_start {
            return Err(format!(
                "scrubbed {} of {} resident slots",
                self.slots_scrubbed, self.resident_at_start
            ));
        }
        let lost = self.pages_lost.len() as u64;
        if self.dirty_written_back + lost != self.dirty_at_start {
            return Err(format!(
                "dirty slots unaccounted: {} written back + {} lost != {} dirty at start",
                self.dirty_written_back, lost, self.dirty_at_start
            ));
        }
        if self.finished < self.started {
            return Err("rebuild finished before it started".into());
        }
        Ok(())
    }
}

/// Front-end failover policy: what [`crate::MultiChannelSystem`] does when
/// a request lands on a shard that is not `Healthy` or whose queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverPolicy {
    /// Repair degraded shards online (quiesce → re-handshake → scrub →
    /// audit → re-admit) instead of bouncing requests forever.
    pub auto_repair: bool,
    /// Bounded retry: how many repair attempts per request before giving
    /// up with [`crate::CoreError::Rebuilding`].
    pub max_repair_attempts: u32,
    /// Retry-after hint carried by [`crate::CoreError::Rebuilding`] and
    /// [`crate::CoreError::Overloaded`].
    pub retry_after: SimDuration,
    /// Shed load with [`crate::CoreError::Overloaded`] when a shard queue
    /// is full instead of blocking the caller.
    pub shed_on_overload: bool,
}

impl Default for FailoverPolicy {
    /// The PR 4 behaviour: no automatic repair, no shedding — degraded
    /// shards bounce requests with `DegradedShard` until someone calls
    /// `repair_shard` explicitly.
    fn default() -> Self {
        FailoverPolicy {
            auto_repair: false,
            max_repair_attempts: 3,
            retry_after: SimDuration::from_us(100.0),
            shed_on_overload: false,
        }
    }
}

impl FailoverPolicy {
    /// Full failover: automatic online repair plus typed load shedding.
    pub fn auto() -> Self {
        FailoverPolicy {
            auto_repair: true,
            shed_on_overload: true,
            ..Self::default()
        }
    }

    /// Failover for a front-end whose repairs run off the request path
    /// (the [`crate::qos::MaintenanceScheduler`]): full queues shed with
    /// typed `Overloaded`, but degraded shards are *not* repaired inline
    /// — they bounce with a retry hint until the next idle maintenance
    /// slot repairs them, so repair work never blocks a foreground
    /// request.
    pub fn maintenance() -> Self {
        FailoverPolicy {
            auto_repair: false,
            shed_on_overload: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_healthy() {
        let h = HealthState::default();
        assert!(h.is_healthy());
        assert_eq!(h.name(), "healthy");
    }

    #[test]
    fn clean_report_audits_ok() {
        let r = RebuildReport {
            attempt: 1,
            handshake_ok: true,
            resident_at_start: 8,
            dirty_at_start: 3,
            slots_scrubbed: 8,
            clean_healed: 1,
            dirty_written_back: 2,
            pages_lost: vec![7],
            readmitted: true,
            ..Default::default()
        };
        r.audit().unwrap();
    }

    #[test]
    fn missing_handshake_fails_audit() {
        let r = RebuildReport {
            handshake_ok: false,
            ..Default::default()
        };
        assert!(r.audit().is_err());
    }

    #[test]
    fn unscrubbed_slot_fails_audit() {
        let r = RebuildReport {
            handshake_ok: true,
            resident_at_start: 4,
            slots_scrubbed: 3,
            ..Default::default()
        };
        assert!(r.audit().unwrap_err().contains("scrubbed"));
    }

    #[test]
    fn unaccounted_dirty_slot_fails_audit() {
        let r = RebuildReport {
            handshake_ok: true,
            resident_at_start: 2,
            slots_scrubbed: 2,
            dirty_at_start: 2,
            dirty_written_back: 1,
            ..Default::default()
        };
        assert!(r.audit().unwrap_err().contains("dirty"));
    }

    #[test]
    fn default_policy_preserves_pr4_behaviour() {
        let p = FailoverPolicy::default();
        assert!(!p.auto_repair);
        assert!(!p.shed_on_overload);
        let a = FailoverPolicy::auto();
        assert!(a.auto_repair && a.shed_on_overload);
    }
}
